//! Table 1 — I/O traffic for all layers per generated token, with and
//! without attention offloading (OPT-30B, motivation workload), alongside
//! the paper's reported figures.

use lm_hardware::GIB;
use lm_models::{presets as models, Workload};
use lm_offload::per_token_traffic;
use lm_sim::{AttentionPlacement, Policy};
use serde::{Deserialize, Serialize};

/// One traffic cell: ours vs the paper's.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficRow {
    pub scenario: String,
    pub direction: String,
    pub tensor: String,
    pub ours_gib: f64,
    /// The paper's reported value in its "GB" (GiB), where given.
    pub paper_gib: Option<f64>,
}

fn gib(b: u64) -> f64 {
    b as f64 / GIB as f64
}

/// Run the experiment. The weight-residency shares follow the policies
/// the paper's measurements imply (~70% resident with attention
/// offloading, ~30% without — see `lm_offload::traffic` tests).
pub fn run() -> Vec<TrafficRow> {
    let model = models::opt_30b();
    let w = Workload::motivation();

    let with_offload = Policy {
        wg: 0.70,
        ..Policy::flexgen_default()
    };
    let without_offload = Policy {
        wg: 0.30,
        attention: AttentionPlacement::Gpu,
        ..Policy::flexgen_default()
    };

    let mut rows = Vec::new();
    for (scenario, policy, paper) in [
        (
            "with attention offloading",
            with_offload,
            // Paper Table 1: weights 16.32, kv 0, act 0.38 up; kv 0, act 0.38 down.
            [Some(16.32), Some(0.0), Some(0.38), Some(0.0), Some(0.38)],
        ),
        (
            "without attention offloading",
            without_offload,
            // Paper: weights 38.88, kv(old) 78.72, act 0.38 up; kv(new) 0.8, act 0.38 down.
            [Some(38.88), Some(78.72), Some(0.38), Some(0.80), Some(0.38)],
        ),
    ] {
        let t = per_token_traffic(&model, &w, &policy);
        let cells = [
            ("CPU->GPU", "weights", t.h2d_weights),
            ("CPU->GPU", "kv_cache", t.h2d_kv_cache),
            ("CPU->GPU", "activation", t.h2d_activation),
            ("GPU->CPU", "kv_cache", t.d2h_kv_cache),
            ("GPU->CPU", "activation", t.d2h_activation),
        ];
        for ((direction, tensor, bytes), paper_gib) in cells.into_iter().zip(paper) {
            rows.push(TrafficRow {
                scenario: scenario.to_string(),
                direction: direction.to_string(),
                tensor: tensor.to_string(),
                ours_gib: gib(bytes),
                paper_gib,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_and_activation_match_paper_closely() {
        for r in run() {
            if let Some(paper) = r.paper_gib {
                if r.tensor == "weights" || r.tensor == "activation" {
                    let tol = (paper * 0.15).max(0.1);
                    assert!(
                        (r.ours_gib - paper).abs() <= tol,
                        "{} {} {}: ours {:.2} vs paper {paper}",
                        r.scenario,
                        r.direction,
                        r.tensor,
                        r.ours_gib
                    );
                }
            }
        }
    }

    #[test]
    fn kv_traffic_shape() {
        let rows = run();
        let find = |scen: &str, dir: &str, tensor: &str| {
            rows.iter()
                .find(|r| r.scenario.contains(scen) && r.direction == dir && r.tensor == tensor)
                .unwrap()
                .ours_gib
        };
        // With offloading KV traffic is exactly zero.
        assert_eq!(find("with attention", "CPU->GPU", "kv_cache"), 0.0);
        // Without offloading the old-KV stream is tens of GiB up and the
        // new KV under a GiB down (the 78.72 vs 0.8 structure).
        let up = find("without", "CPU->GPU", "kv_cache");
        let down = find("without", "GPU->CPU", "kv_cache");
        assert!(up > 60.0, "{up}");
        assert!(down < 1.2 && down > 0.4, "{down}");
        assert!(up / down > 80.0);
    }
}
