//! Property battery for the paged KV allocator (DESIGN.md §14): random
//! interleavings of admit / append / drop — with prompt families chosen
//! to collide on prefixes so the sharing index and COW fork paths are
//! exercised constantly — must preserve every allocator invariant after
//! every single operation:
//!
//! - the free list matches the backing `MemPool`'s byte accounting
//!   exactly (`in_use · page_bytes == mem.used()`, the `LMA283` gauge);
//! - the per-page refcount sum equals the number of live page-table
//!   mappings (`LMA281`);
//! - no in-place write ever lands on a page another sequence has
//!   materialized content on (`LMA282`'s double-mapped-writable hazard);
//! - every live sequence reads back exactly its own logical tokens,
//!   regardless of what sharing or forking happened around it;
//! - when the last sequence drops, every refcount and every byte
//!   returns to zero.

#![allow(clippy::unwrap_used)]

use std::sync::Arc;

use lm_engine::MemPool;
use lm_kvpool::{PageConfig, PagedKvPool};
use proptest::prelude::*;

const PAGE_TOKENS: usize = 4;
const POOL_PAGES: usize = 24;

fn small_pool() -> Arc<PagedKvPool> {
    let cfg = PageConfig {
        page_tokens: PAGE_TOKENS,
        bytes_per_token: 8,
    };
    let mem = MemPool::new("prop.kv", POOL_PAGES * cfg.page_bytes());
    PagedKvPool::new(mem, cfg)
}

/// A live sequence plus the token mirror the pool must reproduce and
/// the append budget it was admitted with.
struct Live {
    seq: lm_kvpool::SeqKv,
    expected: Vec<u32>,
    appends_left: usize,
}

/// Every invariant that must hold between operations, checked in one
/// place so each script step audits the full set (panic-based, like the
/// vendored `prop_assert!`).
fn assert_invariants(pool: &Arc<PagedKvPool>, live: &[Live]) {
    assert!(
        pool.accounting_balanced(),
        "page free list out of sync with MemPool bytes: {:?}",
        pool.counters()
    );
    let c = pool.counters();
    assert!(c.pages_in_use <= c.pages_total);
    assert!(c.pages_peak >= c.pages_in_use);
    let mapped: u64 = live.iter().map(|l| l.seq.mapped_pages() as u64).sum();
    assert_eq!(
        c.refcount_sum, mapped,
        "refcount sum must equal live page-table mappings (LMA281)"
    );
    assert_eq!(
        pool.stats().shared_write_violations,
        0,
        "a write landed on a double-mapped page (LMA282)"
    );
    for (i, l) in live.iter().enumerate() {
        assert_eq!(l.seq.len(), l.expected.len());
        assert_eq!(
            l.seq.tokens(),
            l.expected,
            "sequence {i} read back foreign or clobbered tokens"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The main script property: an arbitrary interleaving of admits
    /// (from three colliding prompt families), appends, and drops keeps
    /// every allocator invariant at every step, and tearing everything
    /// down at the end returns the pool to exactly zero.
    #[test]
    fn any_admit_append_drop_interleaving_preserves_all_invariants(
        ops in proptest::collection::vec(any::<u32>(), 1..48),
    ) {
        let pool = small_pool();
        let mut live: Vec<Live> = Vec::new();
        let mut fresh_token: u32 = 7_000_000;

        for op in ops {
            let [sel, a, b, c] = op.to_le_bytes();
            match sel % 3 {
                0 => {
                    // Admit: prompts within a family are prefixes of one
                    // token stream, so admissions constantly hit the
                    // full-page and partial-tail sharing paths.
                    let family = u32::from(a % 3);
                    let plen = (b % 21) as usize;
                    let gen_len = (c % 9) as usize;
                    let prompt: Vec<u32> =
                        (0..plen as u32).map(|i| family * 1000 + i).collect();
                    let before = pool.counters();
                    match pool.admit(&prompt, gen_len) {
                        Ok(seq) => {
                            prop_assert_eq!(seq.tokens(), prompt.clone());
                            live.push(Live { seq, expected: prompt, appends_left: gen_len });
                        }
                        Err(_) => {
                            // Exhaustion must be atomic: a failed admit
                            // maps and leaks nothing.
                            let after = pool.counters();
                            prop_assert_eq!(before.pages_in_use, after.pages_in_use);
                            prop_assert_eq!(before.refcount_sum, after.refcount_sum);
                        }
                    }
                }
                1 => {
                    if !live.is_empty() {
                        let idx = (a as usize) % live.len();
                        let l = &mut live[idx];
                        if l.appends_left > 0 {
                            fresh_token += 1;
                            l.seq.append(fresh_token).unwrap();
                            l.expected.push(fresh_token);
                            l.appends_left -= 1;
                        }
                    }
                }
                _ => {
                    if !live.is_empty() {
                        let idx = (a as usize) % live.len();
                        live.swap_remove(idx);
                    }
                }
            }
            assert_invariants(&pool, &live);
        }

        live.clear();
        let end = pool.counters();
        prop_assert_eq!(end.pages_in_use, 0, "pages leaked after final drop");
        prop_assert_eq!(end.refcount_sum, 0, "refcounts must balance to zero on drop");
        let stats = pool.stats();
        prop_assert_eq!(stats.pages_allocated, stats.pages_freed);
        prop_assert!(pool.accounting_balanced(), "bytes leaked after final drop");
    }

    /// Directed sharing property: a second admission of the same prompt
    /// maps every full prefix page from the index instead of allocating,
    /// so two sequences cost strictly less than twice one sequence.
    #[test]
    fn identical_prompts_share_every_full_page(
        plen in PAGE_TOKENS..(3 * PAGE_TOKENS + 2),
        gen_len in 1usize..6,
    ) {
        let pool = small_pool();
        let prompt: Vec<u32> = (0..plen as u32).collect();
        let a = pool.admit(&prompt, gen_len).unwrap();
        let solo = pool.pages_in_use();
        let b = pool.admit(&prompt, gen_len).unwrap();
        let full_pages = plen / PAGE_TOKENS;
        prop_assert_eq!(
            pool.stats().shared_tokens as usize,
            full_pages * PAGE_TOKENS + plen % PAGE_TOKENS,
            "the whole known prefix must be served by the index"
        );
        prop_assert!(
            pool.pages_in_use() < 2 * solo,
            "sharing saved nothing: solo {} both {}",
            solo,
            pool.pages_in_use()
        );
        drop(a);
        drop(b);
        prop_assert_eq!(pool.counters().refcount_sum, 0);
        prop_assert!(pool.accounting_balanced());
    }

    /// Directed COW property: two sequences sharing a prompt then
    /// appending divergent tokens stay logically isolated — each reads
    /// back its own continuation and the divergence is what the fork
    /// counter records.
    #[test]
    fn divergent_continuations_stay_isolated(
        plen in 1usize..(4 * PAGE_TOKENS),
        steps in 1usize..6,
    ) {
        let pool = small_pool();
        let prompt: Vec<u32> = (0..plen as u32).collect();
        let mut a = pool.admit(&prompt, steps).unwrap();
        let mut b = pool.admit(&prompt, steps).unwrap();
        let mut ea = prompt.clone();
        let mut eb = prompt.clone();
        for i in 0..steps as u32 {
            a.append(100_000 + i).unwrap();
            ea.push(100_000 + i);
            b.append(200_000 + i).unwrap();
            eb.push(200_000 + i);
        }
        prop_assert_eq!(a.tokens(), ea);
        prop_assert_eq!(b.tokens(), eb);
        prop_assert_eq!(pool.stats().shared_write_violations, 0);
        drop(a);
        drop(b);
        let end = pool.counters();
        prop_assert_eq!(end.pages_in_use, 0);
        prop_assert_eq!(end.refcount_sum, 0);
    }
}
