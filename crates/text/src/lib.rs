//! # lm-text
//!
//! The text front-end of the offloading inference engine: a byte-level
//! BPE tokenizer ([`bpe::Bpe`]) with deterministic training, lossless
//! round-tripping over arbitrary bytes, and JSON (de)serialisation — so
//! the quickstart can go text → tokens → `lm-engine` → tokens → text.
//!
//! ```
//! use lm_text::Bpe;
//! let bpe = Bpe::train(b"the theory of the theatre", 280);
//! let ids = bpe.encode_str("the theatre");
//! assert_eq!(bpe.decode(&ids).unwrap(), b"the theatre");
//! assert!(ids.len() < "the theatre".len()); // merges compress
//! ```

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod bpe;

pub use bpe::Bpe;
