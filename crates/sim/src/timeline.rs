//! Task timelines: per-task spans from the event-driven simulator, plus
//! an ASCII Gantt renderer — the observability that makes the overlap
//! structure of Algorithm 1 visible (which task hides behind which).
//!
//! The span types moved to `lm-trace` so the real engine and the
//! simulator share one span format (and one Perfetto exporter); this
//! module re-exports them unchanged for existing callers.

pub use lm_trace::{render_gantt, resource_overlaps, Span};
