//! Numeric kernels: matmul, elementwise/normalisation, attention, linear
//! layers.

pub mod attention;
pub mod elementwise;
pub mod linear;
pub mod matmul;
pub mod rope;
