//! Chrome / Perfetto trace export.
//!
//! Emits the Trace Event JSON format (`{"traceEvents": [...]}`) that
//! both `chrome://tracing` and <https://ui.perfetto.dev> load directly:
//! `ph:"X"` complete events with `ts`/`dur` in microseconds, `ph:"i"`
//! instants, and `ph:"M"` metadata naming the process and threads.
//!
//! Layout conventions:
//! - task spans land on one thread row **per hardware resource**
//!   (H2D / D2H / CPU / GPU), so the resource-exclusivity invariant is
//!   visible as "no stacked blocks on one row";
//! - scopes land on a row per originating thread (`scope:<track>`);
//! - instants (fault injections, retries) land on their thread's row.

use crate::span::Span;
use crate::tracer::{InstantEvent, ScopeEvent, TraceReport};
use serde::{Map, Value};

const PID: u64 = 1;
/// Thread ids 1..=4 are the resource rows; scope/instant rows follow.
const RESOURCES: [&str; 4] = ["H2D", "D2H", "CPU", "GPU"];
const SCOPE_TID_BASE: u64 = 10;

fn resource_tid(resource: &str) -> u64 {
    RESOURCES
        .iter()
        .position(|r| *r == resource)
        .map(|i| i as u64 + 1)
        .unwrap_or(9)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    let mut m = Map::new();
    for (k, v) in fields {
        m.insert(k.to_string(), v);
    }
    Value::Object(m)
}

fn us(seconds: f64) -> Value {
    Value::Float(seconds * 1e6)
}

/// Builder for a Trace Event JSON document.
#[derive(Debug, Clone, Default)]
pub struct PerfettoTrace {
    events: Vec<Value>,
}

impl PerfettoTrace {
    pub fn new(process_name: &str) -> Self {
        let mut t = PerfettoTrace { events: Vec::new() };
        t.metadata("process_name", PID, None, process_name);
        for r in RESOURCES {
            t.metadata("thread_name", PID, Some(resource_tid(r)), r);
        }
        t
    }

    fn metadata(&mut self, kind: &str, pid: u64, tid: Option<u64>, name: &str) {
        let mut fields = vec![
            ("name", Value::String(kind.to_string())),
            ("ph", Value::String("M".to_string())),
            ("pid", Value::PosInt(pid)),
            (
                "args",
                obj(vec![("name", Value::String(name.to_string()))]),
            ),
        ];
        if let Some(tid) = tid {
            fields.push(("tid", Value::PosInt(tid)));
        }
        self.events.push(obj(fields));
    }

    /// Add task spans as complete (`ph:"X"`) events, one row per
    /// hardware resource.
    pub fn add_task_spans(&mut self, spans: &[Span]) {
        for s in spans {
            let mut args = vec![
                ("step", Value::PosInt(s.step)),
                ("layer", Value::PosInt(s.layer as u64)),
                ("task", Value::String(s.kind.name().to_string())),
            ];
            if let Some(b) = s.batch {
                args.push(("batch", Value::PosInt(b as u64)));
            }
            self.events.push(obj(vec![
                ("name", Value::String(s.kind.name().to_string())),
                ("cat", Value::String("task".to_string())),
                ("ph", Value::String("X".to_string())),
                ("pid", Value::PosInt(PID)),
                ("tid", Value::PosInt(resource_tid(s.resource()))),
                ("ts", us(s.start)),
                ("dur", us(s.duration())),
                ("args", obj(args)),
            ]));
        }
    }

    /// Add scopes as complete events, one row per originating thread.
    /// Perfetto stacks same-row events by containment, so nesting depth
    /// renders without explicit depth markers.
    pub fn add_scopes(&mut self, scopes: &[ScopeEvent]) {
        let mut named_tracks = std::collections::BTreeSet::new();
        for sc in scopes {
            let tid = SCOPE_TID_BASE + sc.track as u64;
            if named_tracks.insert(sc.track) {
                self.metadata("thread_name", PID, Some(tid), &format!("scope:{}", sc.track));
            }
            self.events.push(obj(vec![
                ("name", Value::String(sc.name.clone())),
                ("cat", Value::String("scope".to_string())),
                ("ph", Value::String("X".to_string())),
                ("pid", Value::PosInt(PID)),
                ("tid", Value::PosInt(tid)),
                ("ts", us(sc.start)),
                ("dur", us(sc.end - sc.start)),
                (
                    "args",
                    obj(vec![("depth", Value::PosInt(sc.depth as u64))]),
                ),
            ]));
        }
    }

    /// Add point events (`ph:"i"`) on their thread's scope row.
    pub fn add_instants(&mut self, instants: &[InstantEvent]) {
        for ev in instants {
            self.add_instant_at(&ev.name, &ev.category, ev.t, ev.track);
        }
    }

    /// Add a single instant at `t` seconds on scope row `track` — used
    /// for event sources outside the tracer (e.g. fault-injector logs)
    /// that share the tracer's clock.
    pub fn add_instant_at(&mut self, name: &str, category: &str, t: f64, track: u32) {
        self.events.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("cat", Value::String(category.to_string())),
            ("ph", Value::String("i".to_string())),
            // Thread-scoped instant (renders as a marker, not a line).
            ("s", Value::String("t".to_string())),
            ("pid", Value::PosInt(PID)),
            ("tid", Value::PosInt(SCOPE_TID_BASE + track as u64)),
            ("ts", us(t)),
        ]));
    }

    /// Name an arbitrary thread row — used by callers laying out their
    /// own tracks (e.g. the serve timeline's one-row-per-slot layout).
    /// Emit once per tid; Perfetto keeps the last name it sees.
    pub fn add_named_track(&mut self, tid: u64, name: &str) {
        self.metadata("thread_name", PID, Some(tid), name);
    }

    /// Add one complete (`ph:"X"`) slice on an explicit track, with
    /// start/duration in **seconds** and caller-supplied args.
    pub fn add_slice(
        &mut self,
        name: &str,
        category: &str,
        tid: u64,
        start_s: f64,
        dur_s: f64,
        args: Vec<(&str, Value)>,
    ) {
        self.events.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("cat", Value::String(category.to_string())),
            ("ph", Value::String("X".to_string())),
            ("pid", Value::PosInt(PID)),
            ("tid", Value::PosInt(tid)),
            ("ts", us(start_s)),
            ("dur", us(dur_s)),
            ("args", obj(args)),
        ]));
    }

    /// Add a counter (`ph:"C"`) sample — Perfetto renders the series
    /// named `name` as a stepped area chart (queue depth, occupancy).
    pub fn add_counter(&mut self, name: &str, t_s: f64, value: f64) {
        self.events.push(obj(vec![
            ("name", Value::String(name.to_string())),
            ("ph", Value::String("C".to_string())),
            ("pid", Value::PosInt(PID)),
            ("ts", us(t_s)),
            ("args", obj(vec![("value", Value::Float(value))])),
        ]));
    }

    /// Convenience: one call ingesting a whole [`TraceReport`].
    pub fn add_report(&mut self, report: &TraceReport) {
        self.add_task_spans(&report.spans);
        self.add_scopes(&report.scopes);
        self.add_instants(&report.instants);
    }

    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// The `{"traceEvents": [...]}` document as a [`Value`].
    pub fn to_value(&self) -> Value {
        obj(vec![
            ("traceEvents", Value::Array(self.events.clone())),
            ("displayTimeUnit", Value::String("ms".to_string())),
        ])
    }

    /// Serialise to the JSON text Perfetto loads.
    pub fn to_json_string(&self) -> String {
        // The vendored writer is infallible (always returns `Ok`).
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use crate::tracer::Tracer;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span {
            kind,
            step: 2,
            layer: 5,
            batch: Some(1),
            start,
            end,
        }
    }

    #[test]
    fn emits_metadata_and_complete_events() {
        let mut t = PerfettoTrace::new("lm-offload");
        t.add_task_spans(&[span(TaskKind::LoadWeight, 0.001, 0.002)]);
        let v = t.to_value();
        let events = v["traceEvents"].as_array().unwrap();
        // 1 process_name + 4 thread_name + 1 span.
        assert_eq!(events.len(), 6);
        let x = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .unwrap();
        assert_eq!(x["name"].as_str(), Some("load_weight"));
        assert_eq!(x["ts"].as_f64(), Some(1000.0));
        assert_eq!(x["dur"].as_f64(), Some(1000.0));
        assert_eq!(x["args"]["step"].as_u64(), Some(2));
        assert_eq!(x["args"]["layer"].as_u64(), Some(5));
        assert_eq!(x["args"]["batch"].as_u64(), Some(1));
    }

    #[test]
    fn spans_on_same_resource_share_a_tid() {
        let mut t = PerfettoTrace::new("p");
        t.add_task_spans(&[
            span(TaskKind::LoadWeight, 0.0, 1.0),
            span(TaskKind::LoadCache, 1.0, 2.0),
            span(TaskKind::ComputeGpu, 0.0, 1.0),
        ]);
        let v = t.to_value();
        let tids: Vec<u64> = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .map(|e| e["tid"].as_u64().unwrap())
            .collect();
        assert_eq!(tids[0], tids[1], "both H2D loads share a row");
        assert_ne!(tids[0], tids[2], "GPU compute gets its own row");
    }

    #[test]
    fn round_trips_through_serde_json() {
        let tracer = Tracer::new();
        {
            let _p = tracer.scope("decode");
            let _s = tracer.task_span(TaskKind::ComputeGpu, 0, 0, None);
        }
        tracer.instant("fault", "injected");
        let mut t = PerfettoTrace::new("lm-offload");
        t.add_report(&tracer.snapshot());
        let text = t.to_json_string();
        let back: Value = serde_json::from_str(&text).unwrap();
        let events = back["traceEvents"].as_array().unwrap();
        assert!(!events.is_empty());
        // Every event has the mandatory ph + pid fields.
        for e in events {
            assert!(e["ph"].as_str().is_some(), "{e:?}");
            assert!(e["pid"].as_u64().is_some());
        }
        // One instant, phase "i".
        assert_eq!(
            events
                .iter()
                .filter(|e| e["ph"].as_str() == Some("i"))
                .count(),
            1
        );
        // Scope rows got a thread_name metadata entry.
        assert!(events.iter().any(|e| {
            e["ph"].as_str() == Some("M")
                && e["args"]["name"].as_str().map(|n| n.starts_with("scope:")) == Some(true)
        }));
    }

    #[test]
    fn custom_tracks_slices_and_counters() {
        let mut t = PerfettoTrace::new("lm-serve");
        t.add_named_track(101, "slot 0");
        t.add_slice(
            "req 7",
            "serve",
            101,
            0.5,
            0.25,
            vec![("request", Value::PosInt(7))],
        );
        t.add_counter("queue_depth", 0.5, 3.0);
        let v = t.to_value();
        let events = v["traceEvents"].as_array().unwrap();
        let named = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("M") && e["tid"].as_u64() == Some(101))
            .unwrap();
        assert_eq!(named["args"]["name"].as_str(), Some("slot 0"));
        let x = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("X"))
            .unwrap();
        assert_eq!(x["tid"].as_u64(), Some(101));
        assert_eq!(x["ts"].as_f64(), Some(0.5e6));
        assert_eq!(x["dur"].as_f64(), Some(0.25e6));
        assert_eq!(x["args"]["request"].as_u64(), Some(7));
        let c = events
            .iter()
            .find(|e| e["ph"].as_str() == Some("C"))
            .unwrap();
        assert_eq!(c["name"].as_str(), Some("queue_depth"));
        assert_eq!(c["args"]["value"].as_f64(), Some(3.0));
    }

    #[test]
    fn instant_at_lands_on_requested_track() {
        let mut t = PerfettoTrace::new("p");
        t.add_instant_at("retry", "fault", 0.5, 3);
        let v = t.to_value();
        let i = v["traceEvents"]
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e["ph"].as_str() == Some("i"))
            .cloned()
            .unwrap();
        assert_eq!(i["tid"].as_u64(), Some(SCOPE_TID_BASE + 3));
        assert_eq!(i["ts"].as_f64(), Some(0.5e6));
    }
}
