//! Diagnostic primitives: stable lint codes, severities, and the report
//! container tooling consumes (JSON for `repro analyze`, programmatic
//! access for strict engine construction).
//!
//! Code ranges are stable API:
//!
//! - `LMA0xx` — operator-graph structure lints;
//! - `LMA1xx` — parallelism-plan and policy lints;
//! - `LMA20x` — cost-model (Eq. 1-24) consistency lints;
//! - `LMA25x` — serving-configuration lints (`lm-serve` slot plans);
//! - `LMA26x` — SLO / overload-policy lints (objective feasibility and
//!   actuator sanity);
//! - `LMA27x` — observability lints (an enforced SLO needs a TTFT
//!   histogram; an armed flight recorder needs capacity);
//! - `LMA28x` — paged-KV lints (page geometry must tile the KV block;
//!   page refcounts must balance the live page tables; no page may be
//!   writable while mapped by more than one sequence);
//! - `LMA29x` — verification lints over `lm-verify` runs (a sweep whose
//!   lattice collapsed to a point proves nothing; a lint-unsoundness
//!   witness means a lint passed where executable ground truth failed;
//!   a declared protocol transition the exploration never exercised is
//!   unverified);
//! - `LMA30x` — async-runtime lints (`ServeSession::run_async`
//!   configurations: a zero-capacity streaming channel can never carry a
//!   token; a wall-clock SLO below the cost model's physical TTFT floor
//!   is unmeetable; a non-positive or non-finite time scale breaks the
//!   wall→virtual clock mapping).
//!
//! A code, once shipped, keeps its meaning; retired codes are never
//! reused.

use serde::{Deserialize, Serialize};

/// Stable identifiers of every lint the analyzer can emit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LintCode {
    /// Graph has a dependency cycle.
    Lma001CyclicGraph,
    /// Node unreachable from any source and feeding no sink (isolated).
    Lma002OrphanNode,
    /// The same edge is recorded more than once.
    Lma003DuplicateEdge,
    /// Compute node carries zero FLOPs *and* zero bytes.
    Lma004ZeroCostNode,
    /// An edge endpoint is not a node of the graph.
    Lma005EdgeOutOfBounds,
    /// A node depends on itself.
    Lma006SelfEdge,
    /// A `Transfer` node shares a wavefront with compute operators.
    Lma007TransferOffBoundary,
    /// Plan's inter-op parallelism exceeds the graph's Kahn width.
    Lma101InterOpExceedsWidth,
    /// Compute + transfer threads exceed the hardware thread budget.
    Lma102ThreadBudgetExceeded,
    /// Transfer-thread vector does not cover the five load/store tasks.
    Lma103WrongTransferVector,
    /// A transfer task was granted zero threads.
    Lma104ZeroTransferThreads,
    /// Thread grants invert the transfer-volume ordering.
    Lma105DisproportionalTransfer,
    /// `inter_op_total` ≠ compute inter-op + five transfer tasks.
    Lma106InterOpTotalMismatch,
    /// Step-time estimate is below the compute-time estimate.
    Lma107StepBelowCompute,
    /// Offloading policy fails validation (fractions, placement).
    Lma108InvalidPolicy,
    /// Memory plan exceeds a device or host pool capacity.
    Lma109CapacityExceeded,
    /// A bundled operator's working set exceeds the LLC capacity.
    Lma110BundleExceedsCache,
    /// A sampled task time disagrees with bytes / bandwidth dimensional
    /// bounds.
    Lma201DimensionalMismatch,
    /// `T_gen` is not the max of the six task aggregates (Eq. 2).
    Lma202TgenNotMax,
    /// Quantized footprint exceeds the fp16 footprint.
    Lma203QuantizedLargerThanF16,
    /// A sampled quantity is negative, NaN or infinite.
    Lma204NonFiniteQuantity,
    /// Serve plan leases more KV bytes than its pool holds.
    Lma250SlotsExceedPool,
    /// Serve block size exceeds the Kahn width bound of its block graph.
    Lma251BlockExceedsWidth,
    /// Serve plan leaves most of the KV pool idle (underutilization).
    Lma252SlotsUnderutilizePool,
    /// SLO target below the physical floor (one prefill + one step):
    /// unmeetable by any policy.
    Lma260SloBelowFloor,
    /// SLO enforcement enabled with every actuator disabled.
    Lma261SloNoActuator,
    /// Preemption armed on a single-slot plan (evicting the only slot
    /// thrashes without adding service capacity).
    Lma262PreemptSingleSlot,
    /// SLO enforcement enabled without a TTFT histogram registered:
    /// breaches can neither be observed nor post-mortemed.
    Lma270SloWithoutTtftHistogram,
    /// Flight recorder armed with zero capacity while chaos faults are
    /// active: the post-mortem dump would always be empty.
    Lma271FlightRecorderZeroCapacity,
    /// Page geometry broken: zero-size pages, `page_bytes` not equal to
    /// `page_tokens · bytes_per_token`, a page size that does not divide
    /// the plan's KV block, or a pool too small for one page.
    Lma280PageGeometryInvalid,
    /// Sum of page refcounts disagrees with the live page tables, or
    /// more pages are in use than the pool holds.
    Lma281PageRefcountImbalance,
    /// A page was written in place while mapped by more than one
    /// sequence — the copy-on-write discipline was bypassed.
    Lma282DoubleMappedWritablePage,
    /// The verification sweep's config lattice is degenerate: an axis
    /// holds fewer than two distinct values or the total point count is
    /// below the coverage floor, so "zero witnesses" is vacuous.
    Lma290SweepDomainDegenerate,
    /// A deployment config passed its planner lints but an executable
    /// ground-truth invariant failed on the same config — the lint is
    /// unsound at that point and must be tightened.
    Lma291LintUnsoundnessWitness,
    /// A protocol transition declared in the state-machine's transition
    /// table was never exercised by the bounded exploration — its
    /// invariants are unverified.
    Lma292UncheckedProtocolTransition,
    /// An async serving session configured a zero-capacity per-request
    /// token channel: the bounded mpsc cannot hold a single token, so
    /// every delivery would stall into the backpressure path and every
    /// stream would resolve as a spurious disconnect.
    Lma300AsyncZeroChannelCapacity,
    /// A wall-clock SLO on an async session sits at or below the cost
    /// model's physical TTFT floor (one worst-case group prefill plus
    /// one full-occupancy decode step): no scheduling decision can meet
    /// it, and wall jitter only pushes further past it.
    Lma301AsyncSloBelowFloor,
    /// The async session's virtual-per-wall time scale is non-finite or
    /// non-positive, so wall time can never map onto the modelled clock.
    Lma302AsyncBadTimeScale,
}

impl LintCode {
    /// The stable textual code, e.g. `"LMA001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            LintCode::Lma001CyclicGraph => "LMA001",
            LintCode::Lma002OrphanNode => "LMA002",
            LintCode::Lma003DuplicateEdge => "LMA003",
            LintCode::Lma004ZeroCostNode => "LMA004",
            LintCode::Lma005EdgeOutOfBounds => "LMA005",
            LintCode::Lma006SelfEdge => "LMA006",
            LintCode::Lma007TransferOffBoundary => "LMA007",
            LintCode::Lma101InterOpExceedsWidth => "LMA101",
            LintCode::Lma102ThreadBudgetExceeded => "LMA102",
            LintCode::Lma103WrongTransferVector => "LMA103",
            LintCode::Lma104ZeroTransferThreads => "LMA104",
            LintCode::Lma105DisproportionalTransfer => "LMA105",
            LintCode::Lma106InterOpTotalMismatch => "LMA106",
            LintCode::Lma107StepBelowCompute => "LMA107",
            LintCode::Lma108InvalidPolicy => "LMA108",
            LintCode::Lma109CapacityExceeded => "LMA109",
            LintCode::Lma110BundleExceedsCache => "LMA110",
            LintCode::Lma201DimensionalMismatch => "LMA201",
            LintCode::Lma202TgenNotMax => "LMA202",
            LintCode::Lma203QuantizedLargerThanF16 => "LMA203",
            LintCode::Lma204NonFiniteQuantity => "LMA204",
            LintCode::Lma250SlotsExceedPool => "LMA250",
            LintCode::Lma251BlockExceedsWidth => "LMA251",
            LintCode::Lma252SlotsUnderutilizePool => "LMA252",
            LintCode::Lma260SloBelowFloor => "LMA260",
            LintCode::Lma261SloNoActuator => "LMA261",
            LintCode::Lma262PreemptSingleSlot => "LMA262",
            LintCode::Lma270SloWithoutTtftHistogram => "LMA270",
            LintCode::Lma271FlightRecorderZeroCapacity => "LMA271",
            LintCode::Lma280PageGeometryInvalid => "LMA280",
            LintCode::Lma281PageRefcountImbalance => "LMA281",
            LintCode::Lma282DoubleMappedWritablePage => "LMA282",
            LintCode::Lma290SweepDomainDegenerate => "LMA290",
            LintCode::Lma291LintUnsoundnessWitness => "LMA291",
            LintCode::Lma292UncheckedProtocolTransition => "LMA292",
            LintCode::Lma300AsyncZeroChannelCapacity => "LMA300",
            LintCode::Lma301AsyncSloBelowFloor => "LMA301",
            LintCode::Lma302AsyncBadTimeScale => "LMA302",
        }
    }

    /// All codes, for enumeration in docs and coverage tests.
    pub const ALL: [LintCode; 38] = [
        LintCode::Lma001CyclicGraph,
        LintCode::Lma002OrphanNode,
        LintCode::Lma003DuplicateEdge,
        LintCode::Lma004ZeroCostNode,
        LintCode::Lma005EdgeOutOfBounds,
        LintCode::Lma006SelfEdge,
        LintCode::Lma007TransferOffBoundary,
        LintCode::Lma101InterOpExceedsWidth,
        LintCode::Lma102ThreadBudgetExceeded,
        LintCode::Lma103WrongTransferVector,
        LintCode::Lma104ZeroTransferThreads,
        LintCode::Lma105DisproportionalTransfer,
        LintCode::Lma106InterOpTotalMismatch,
        LintCode::Lma107StepBelowCompute,
        LintCode::Lma108InvalidPolicy,
        LintCode::Lma109CapacityExceeded,
        LintCode::Lma110BundleExceedsCache,
        LintCode::Lma201DimensionalMismatch,
        LintCode::Lma202TgenNotMax,
        LintCode::Lma203QuantizedLargerThanF16,
        LintCode::Lma204NonFiniteQuantity,
        LintCode::Lma250SlotsExceedPool,
        LintCode::Lma251BlockExceedsWidth,
        LintCode::Lma252SlotsUnderutilizePool,
        LintCode::Lma260SloBelowFloor,
        LintCode::Lma261SloNoActuator,
        LintCode::Lma262PreemptSingleSlot,
        LintCode::Lma270SloWithoutTtftHistogram,
        LintCode::Lma271FlightRecorderZeroCapacity,
        LintCode::Lma280PageGeometryInvalid,
        LintCode::Lma281PageRefcountImbalance,
        LintCode::Lma282DoubleMappedWritablePage,
        LintCode::Lma290SweepDomainDegenerate,
        LintCode::Lma291LintUnsoundnessWitness,
        LintCode::Lma292UncheckedProtocolTransition,
        LintCode::Lma300AsyncZeroChannelCapacity,
        LintCode::Lma301AsyncSloBelowFloor,
        LintCode::Lma302AsyncBadTimeScale,
    ];
}

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Suspicious but possibly intentional; does not block execution.
    Warn,
    /// A defect: running this configuration would hang, crash or produce
    /// wrong estimates.
    Error,
}

/// One finding.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Diagnostic {
    pub code: LintCode,
    pub severity: Severity,
    /// What was inspected, e.g. `node 7 (softmax[2])` or `plan`.
    pub subject: String,
    /// Human-readable explanation with the offending values inline.
    pub message: String,
}

impl Diagnostic {
    pub fn error(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            subject: subject.into(),
            message: message.into(),
        }
    }

    pub fn warn(code: LintCode, subject: impl Into<String>, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warn,
            subject: subject.into(),
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warn => "warning",
        };
        write!(
            f,
            "{sev}[{}] {}: {}",
            self.code.as_str(),
            self.subject,
            self.message
        )
    }
}

/// The outcome of an analysis pass.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Report {
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    pub fn new(diagnostics: Vec<Diagnostic>) -> Self {
        Report { diagnostics }
    }

    /// Merge another report's findings into this one.
    pub fn extend(&mut self, other: Report) {
        self.diagnostics.extend(other.diagnostics);
    }

    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
    }

    pub fn error_count(&self) -> usize {
        self.errors().count()
    }

    pub fn warning_count(&self) -> usize {
        self.warnings().count()
    }

    /// No `Error`-level findings (warnings are allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Whether any finding carries `code`.
    pub fn has(&self, code: LintCode) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Pretty JSON for `results/analyze.json`.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".into())
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s)",
            self.error_count(),
            self.warning_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut seen = std::collections::HashSet::new();
        for code in LintCode::ALL {
            let s = code.as_str();
            assert!(s.starts_with("LMA") && s.len() == 6, "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
        }
        assert_eq!(seen.len(), LintCode::ALL.len());
    }

    /// Golden registry: the full shipped code list, in order. A code
    /// that disappears, changes its textual form, or collides with a
    /// retired one breaks downstream JSON consumers — this test turns
    /// any such drift into a deliberate diff of the golden list.
    #[test]
    fn code_registry_is_stable_against_golden_list() {
        const GOLDEN: &[&str] = &[
            "LMA001", "LMA002", "LMA003", "LMA004", "LMA005", "LMA006", "LMA007", "LMA101",
            "LMA102", "LMA103", "LMA104", "LMA105", "LMA106", "LMA107", "LMA108", "LMA109",
            "LMA110", "LMA201", "LMA202", "LMA203", "LMA204", "LMA250", "LMA251", "LMA252",
            "LMA260", "LMA261", "LMA262", "LMA270", "LMA271", "LMA280", "LMA281", "LMA282",
            "LMA290", "LMA291", "LMA292", "LMA300", "LMA301", "LMA302",
        ];
        let shipped: Vec<&str> = LintCode::ALL.iter().map(|c| c.as_str()).collect();
        assert_eq!(shipped, GOLDEN, "LMA registry drifted from the golden list");
    }

    /// Codes are never reused across families: every code's numeric part
    /// must sit inside exactly the family range its variant name claims,
    /// and the registry must be strictly ascending (a new code can only
    /// be appended to its family, never inserted over a retired number).
    #[test]
    fn codes_stay_in_their_family_ranges() {
        let family_of = |n: u32| match n {
            1..=99 => "graph",
            100..=199 => "plan",
            200..=249 => "model",
            250..=259 => "serve",
            260..=269 => "slo",
            270..=279 => "obs",
            280..=289 => "paging",
            290..=299 => "verify",
            300..=309 => "async",
            _ => "unassigned",
        };
        let mut prev = 0u32;
        for code in LintCode::ALL {
            let s = code.as_str();
            let n: u32 = s[3..].parse().unwrap_or_else(|_| panic!("bad code {s}"));
            assert!(n > prev, "{s}: registry not strictly ascending (codes reused)");
            prev = n;
            assert_ne!(family_of(n), "unassigned", "{s} falls outside every family range");
            let name = format!("{code:?}");
            let claimed = match &name {
                _ if name.starts_with("Lma0") => "graph",
                _ if name.starts_with("Lma1") => "plan",
                _ if name.starts_with("Lma20") => "model",
                _ if name.starts_with("Lma25") => "serve",
                _ if name.starts_with("Lma26") => "slo",
                _ if name.starts_with("Lma27") => "obs",
                _ if name.starts_with("Lma28") => "paging",
                _ if name.starts_with("Lma29") => "verify",
                _ if name.starts_with("Lma30") => "async",
                _ => "unknown",
            };
            assert_eq!(claimed, family_of(n), "{s} ({name}) strays from its family");
        }
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::default();
        assert!(r.is_clean());
        r.diagnostics
            .push(Diagnostic::warn(LintCode::Lma002OrphanNode, "node 3", "isolated"));
        assert!(r.is_clean());
        assert!(r.has(LintCode::Lma002OrphanNode));
        r.diagnostics.push(Diagnostic::error(
            LintCode::Lma001CyclicGraph,
            "graph",
            "cycle 1 -> 2 -> 1",
        ));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        let text = r.to_string();
        assert!(text.contains("error[LMA001]") && text.contains("warning[LMA002]"), "{text}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = Report::new(vec![Diagnostic::error(
            LintCode::Lma102ThreadBudgetExceeded,
            "plan",
            "7*16+9 > 112",
        )]);
        let json = r.to_json();
        assert!(json.contains("Lma102ThreadBudgetExceeded"), "{json}");
        let back: Report = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.diagnostics.len(), 1);
        assert_eq!(back.diagnostics[0].code, LintCode::Lma102ThreadBudgetExceeded);
        assert_eq!(back.diagnostics[0].severity, Severity::Error);
    }

    #[test]
    fn severity_orders_error_above_warn() {
        assert!(Severity::Error > Severity::Warn);
    }
}
