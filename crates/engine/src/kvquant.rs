//! At-rest KV-cache compression — the real counterpart of FlexGen's
//! `compress_cache` and the paper's Eq. 5-7 path: new KV entries are
//! group-quantized as they are produced, and the whole cache is
//! dequantized for each attention step that consumes it (the
//! continuously-growing dequantization cost of §3.1, Observation 2).

use lm_tensor::{dequantize, quantize, KvCache, QuantConfig, QuantizedTensor, Tensor};

/// KV storage for one layer: full-precision, or group-quantized chunks.
pub enum CacheStore {
    Full(KvCache),
    Quantized(QuantizedKv),
}

/// A KV cache held as a sequence of quantized `[batch, t, hidden]` chunks.
pub struct QuantizedKv {
    batch: usize,
    hidden: usize,
    capacity: usize,
    len: usize,
    config: QuantConfig,
    k_chunks: Vec<QuantizedTensor>,
    v_chunks: Vec<QuantizedTensor>,
}

impl QuantizedKv {
    pub fn new(batch: usize, hidden: usize, capacity: usize, config: QuantConfig) -> Self {
        QuantizedKv {
            batch,
            hidden,
            capacity,
            len: 0,
            config,
            k_chunks: Vec::new(),
            v_chunks: Vec::new(),
        }
    }

    /// Cached token positions.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// At-rest bytes (packed codes + per-group metadata).
    pub fn bytes(&self) -> usize {
        self.k_chunks
            .iter()
            .chain(&self.v_chunks)
            .map(QuantizedTensor::bytes)
            .sum()
    }

    /// Dequantize the whole cache into a working [`KvCache`] — the
    /// `dequan_old_cache` step, paid on every consumption.
    pub fn materialize(&self) -> KvCache {
        let mut full = KvCache::new(self.batch, self.hidden, self.capacity);
        for (kq, vq) in self.k_chunks.iter().zip(&self.v_chunks) {
            full.append(&dequantize(kq), &dequantize(vq));
        }
        debug_assert_eq!(full.len(), self.len);
        full
    }

    /// Quantize and append `t` new positions (`quan_new_cache`):
    /// `k`/`v` are `[batch, t, hidden]` (or `[batch, hidden]` for t=1).
    pub fn append(&mut self, k: &Tensor, v: &Tensor) {
        let t = if k.rank() == 2 { 1 } else { k.dim(1) };
        assert!(
            self.len + t <= self.capacity,
            "quantized KV overflow: {} + {t} > {}",
            self.len,
            self.capacity
        );
        self.k_chunks.push(quantize(k, self.config));
        self.v_chunks.push(quantize(v, self.config));
        self.len += t;
    }
}

impl CacheStore {
    /// A full-precision store.
    pub fn new_full(batch: usize, hidden: usize, capacity: usize) -> Self {
        CacheStore::Full(KvCache::new(batch, hidden, capacity))
    }

    /// A quantized-at-rest store.
    pub fn new_quantized(
        batch: usize,
        hidden: usize,
        capacity: usize,
        config: QuantConfig,
    ) -> Self {
        CacheStore::Quantized(QuantizedKv::new(batch, hidden, capacity, config))
    }

    pub fn len(&self) -> usize {
        match self {
            CacheStore::Full(c) => c.len(),
            CacheStore::Quantized(q) => q.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// At-rest bytes of the cached entries.
    pub fn bytes(&self) -> usize {
        match self {
            CacheStore::Full(c) => 2 * c.batch() * c.len() * c.hidden() * 4,
            CacheStore::Quantized(q) => q.bytes(),
        }
    }

    /// Run `f` against a full-precision view of the cache. For the
    /// quantized store this dequantizes the old entries first and
    /// re-quantizes whatever `f` appended afterwards — exactly the
    /// per-step (de)quantization cycle of Eq. 6/7.
    pub fn with_full<R>(&mut self, f: impl FnOnce(&mut KvCache) -> R) -> R {
        match self {
            CacheStore::Full(c) => f(c),
            CacheStore::Quantized(q) => {
                let mut full = q.materialize();
                let before = full.len();
                let r = f(&mut full);
                let appended = full.len() - before;
                if appended > 0 {
                    let (k_new, v_new) = extract_tail(&full, before, appended);
                    q.append(&k_new, &v_new);
                }
                r
            }
        }
    }
}

/// Copy positions `[start, start+t)` of a cache into `[batch, t, hidden]`
/// tensors.
fn extract_tail(cache: &KvCache, start: usize, t: usize) -> (Tensor, Tensor) {
    let (b, h) = (cache.batch(), cache.hidden());
    let mut k = Vec::with_capacity(b * t * h);
    let mut v = Vec::with_capacity(b * t * h);
    for bi in 0..b {
        k.extend_from_slice(&cache.keys(bi)[start * h..(start + t) * h]);
        v.extend_from_slice(&cache.values(bi)[start * h..(start + t) * h]);
    }
    (
        Tensor::from_vec([b, t, h], k),
        Tensor::from_vec([b, t, h], v),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(store: &mut CacheStore, hidden: usize, steps: usize, seed: u64) {
        for i in 0..steps {
            store.with_full(|c| {
                let k = Tensor::randn([2, hidden], 1.0, seed + i as u64);
                let v = Tensor::randn([2, hidden], 1.0, seed + 100 + i as u64);
                c.append(&k, &v);
            });
        }
    }

    #[test]
    fn quantized_store_tracks_length() {
        let mut s = CacheStore::new_quantized(2, 8, 16, QuantConfig::int8());
        assert!(s.is_empty());
        fill(&mut s, 8, 5, 1);
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn quantized_at_rest_is_smaller_than_full() {
        // Hidden large enough that the group padding of tiny chunks is
        // amortised (a [2, 32] chunk is exactly one 64-element group).
        let mut full = CacheStore::new_full(2, 32, 64);
        let mut quant = CacheStore::new_quantized(2, 32, 64, QuantConfig::int8());
        fill(&mut full, 32, 32, 7);
        fill(&mut quant, 32, 32, 7);
        assert!(
            quant.bytes() * 2 < full.bytes(),
            "quant {} vs full {}",
            quant.bytes(),
            full.bytes()
        );
    }

    #[test]
    fn materialized_values_within_error_bound() {
        // int8 round trip: each materialized value is within the group
        // quantization bound of what was appended.
        let mut quant = CacheStore::new_quantized(1, 8, 8, QuantConfig::int8());
        let k = Tensor::randn([1, 8], 1.0, 11);
        let v = Tensor::randn([1, 8], 1.0, 12);
        quant.with_full(|c| c.append(&k, &v));
        quant.with_full(|c| {
            for (a, b) in c.keys(0).iter().zip(k.data()) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
            for (a, b) in c.values(0).iter().zip(v.data()) {
                assert!((a - b).abs() < 0.05, "{a} vs {b}");
            }
        });
    }

    #[test]
    fn requantization_is_chunk_local() {
        // Appending later chunks must not change earlier chunks (no
        // cumulative requantization error: each chunk is quantized once).
        let mut quant = CacheStore::new_quantized(1, 8, 8, QuantConfig::int4());
        let k0 = Tensor::randn([1, 8], 1.0, 21);
        quant.with_full(|c| c.append(&k0, &k0));
        let first: Vec<f32> = quant.with_full(|c| c.keys(0)[..8].to_vec());
        for i in 0..3 {
            let k = Tensor::randn([1, 8], 1.0, 30 + i);
            quant.with_full(|c| c.append(&k, &k));
        }
        let first_again: Vec<f32> = quant.with_full(|c| c.keys(0)[..8].to_vec());
        assert_eq!(first, first_again);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn quantized_capacity_enforced() {
        // The third append exceeds capacity 2; the materialised working
        // cache rejects it before the store is touched.
        let mut s = CacheStore::new_quantized(2, 4, 2, QuantConfig::int8());
        fill(&mut s, 4, 3, 5);
    }
}
