//! Cross-validation between the *real* engine and the analytic world:
//! the byte volumes the engine actually moves must equal what the shape
//! math in `lm-models` predicts — the bridge that justifies simulating
//! the large models from shapes alone (DESIGN.md §2).

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_models::{footprint, presets, DType, Workload};
use lm_tensor::QuantConfig;

fn prompts(n: usize, len: usize) -> Vec<Vec<u32>> {
    (0..n).map(|i| (0..len as u32).map(|t| t + i as u32).collect()).collect()
}

#[test]
fn streamed_weight_bytes_match_shape_math() {
    // The engine streams every layer once per sweep; with f32 at rest the
    // per-sweep volume must equal lm-models' weights_bytes at F32 (plus
    // the small bias/norm vectors the paper's num_weights omits).
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 9, EngineOptions::default()).unwrap();
    let gen_len = 4usize;
    let g = engine.run(&GenerateRequest::new(prompts(2, 3), gen_len)).unwrap();
    let sweeps = 1 + gen_len as u64;
    let per_sweep = g.weight_bytes_streamed / sweeps;
    let predicted = footprint::weights_bytes(&cfg, DType::F32);
    let slack = predicted / 10; // biases + norm vectors
    assert!(
        per_sweep >= predicted && per_sweep <= predicted + slack,
        "engine {per_sweep} vs model {predicted}"
    );
}

#[test]
fn int4_weights_stream_a_quarter_of_the_bytes() {
    let cfg = presets::tiny_test();
    let gen_len = 3usize;
    let f32_engine = Engine::new(&cfg, 9, EngineOptions::default()).unwrap();
    let q_engine = Engine::new(
        &cfg,
        9,
        EngineOptions {
            quantize_at_rest: Some(QuantConfig::int4()),
            ..Default::default()
        },
    )
    .unwrap();
    let a = f32_engine.run(&GenerateRequest::new(prompts(2, 3), gen_len)).unwrap();
    let b = q_engine.run(&GenerateRequest::new(prompts(2, 3), gen_len)).unwrap();
    let ratio = a.weight_bytes_streamed as f64 / b.weight_bytes_streamed as f64;
    // 4-bit codes are 8x smaller than f32 minus group metadata: expect
    // ~5.5-8x (the same compression the DType math predicts for codes,
    // plus metadata).
    assert!(
        (4.0..=8.0).contains(&ratio),
        "compression ratio {ratio}"
    );
}

#[test]
fn kv_at_rest_bytes_match_footprint_math() {
    // Full-precision KV at rest: 2·(s+n)·h·b·4 bytes per layer.
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 9, EngineOptions::default()).unwrap();
    let (b, s, n) = (2usize, 3usize, 4usize);
    let g = engine.run(&GenerateRequest::new(prompts(b, s), n)).unwrap();
    let per_layer =
        2 * (s + n) * cfg.hidden as usize * b * std::mem::size_of::<f32>();
    let expected = per_layer * cfg.num_layers as usize;
    assert_eq!(g.kv_bytes_at_rest, expected);
    // And the footprint crate's f32 equivalent agrees (its workload is
    // block-granular; compare per-element counts).
    let w = Workload::new(s as u64, n as u64, b as u64, 1);
    let elems = footprint::kv_cache_elems_full(&cfg, w.final_seq_len(), w.block_size())
        * cfg.num_layers as u64;
    assert_eq!(g.kv_bytes_at_rest as u64, elems * 4);
}

#[test]
fn engine_quantized_paths_compose() {
    // Weights int4 + KV int8 at rest simultaneously: the most compressed
    // configuration still generates, with both savings visible.
    let cfg = presets::tiny_test();
    let engine = Engine::new(
        &cfg,
        13,
        EngineOptions {
            quantize_at_rest: Some(QuantConfig::int4()),
            kv_quantize_at_rest: Some(QuantConfig::int8()),
            ..Default::default()
        },
    )
    .unwrap();
    let g = engine.run(&GenerateRequest::new(prompts(2, 4), 5)).unwrap();
    assert_eq!(g.tokens[0].len(), 5);
    let full = Engine::new(&cfg, 13, EngineOptions::default()).unwrap();
    let gf = full.run(&GenerateRequest::new(prompts(2, 4), 5)).unwrap();
    assert!(g.weight_bytes_streamed < gf.weight_bytes_streamed / 4);
    assert!(g.kv_bytes_at_rest < gf.kv_bytes_at_rest / 2);
}
