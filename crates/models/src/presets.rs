//! The OPT and LLaMA configurations evaluated in the paper, plus small
//! members of each family for real execution and tests.
//!
//! Sizes follow the published architecture tables (OPT: Zhang et al. 2022;
//! LLaMA: Touvron et al. 2023).

use crate::config::{Family, ModelConfig};

fn opt(name: &str, l: u32, h: u64, heads: u32) -> ModelConfig {
    ModelConfig {
        name: name.to_string(),
        family: Family::Opt,
        num_layers: l,
        hidden: h,
        ffn_hidden: 4 * h,
        num_heads: heads,
        vocab_size: 50_272,
        max_seq_len: 2048,
    }
}

fn llama(name: &str, l: u32, h: u64, ffn: u64, heads: u32) -> ModelConfig {
    ModelConfig {
        name: name.to_string(),
        family: Family::Llama,
        num_layers: l,
        hidden: h,
        ffn_hidden: ffn,
        num_heads: heads,
        vocab_size: 32_000,
        max_seq_len: 2048,
    }
}

/// OPT-125M — small enough to run for real in `lm-engine` tests.
pub fn opt_125m() -> ModelConfig {
    opt("OPT-125M", 12, 768, 12)
}

/// OPT-1.3B.
pub fn opt_1p3b() -> ModelConfig {
    opt("OPT-1.3B", 24, 2048, 32)
}

/// OPT-6.7B.
pub fn opt_6p7b() -> ModelConfig {
    opt("OPT-6.7B", 32, 4096, 32)
}

/// OPT-13B — used in the multi-GPU evaluation (Fig. 9).
pub fn opt_13b() -> ModelConfig {
    opt("OPT-13B", 40, 5120, 40)
}

/// OPT-30B — the motivation-study model (Figs. 3-5, Tables 1 and 5).
pub fn opt_30b() -> ModelConfig {
    opt("OPT-30B", 48, 7168, 56)
}

/// OPT-66B — the largest OPT evaluated (Table 3).
pub fn opt_66b() -> ModelConfig {
    opt("OPT-66B", 64, 9216, 72)
}

/// LLaMA-7B.
pub fn llama_7b() -> ModelConfig {
    llama("LLaMA-7B", 32, 4096, 11_008, 32)
}

/// LLaMA-13B — used in the multi-GPU evaluation (Fig. 9).
pub fn llama_13b() -> ModelConfig {
    llama("LLaMA-13B", 40, 5120, 13_824, 40)
}

/// LLaMA-30B (33B) — Table 3.
pub fn llama_30b() -> ModelConfig {
    llama("LLaMA-30B", 60, 6656, 17_920, 52)
}

/// LLaMA-65B — Table 3.
pub fn llama_65b() -> ModelConfig {
    llama("LLaMA-65B", 80, 8192, 22_016, 64)
}

/// A tiny model for real end-to-end generation in tests: 4 layers,
/// hidden 64. Completes a full prefill+decode in milliseconds.
pub fn tiny_test() -> ModelConfig {
    ModelConfig {
        name: "tiny-test".to_string(),
        family: Family::Custom,
        num_layers: 4,
        hidden: 64,
        ffn_hidden: 256,
        num_heads: 4,
        vocab_size: 512,
        max_seq_len: 512,
    }
}

/// Every preset, for exhaustive validation tests.
pub fn all_presets() -> Vec<ModelConfig> {
    vec![
        opt_125m(),
        opt_1p3b(),
        opt_6p7b(),
        opt_13b(),
        opt_30b(),
        opt_66b(),
        llama_7b(),
        llama_13b(),
        llama_30b(),
        llama_65b(),
        tiny_test(),
    ]
}

/// Look a preset up by (case-insensitive) name, for CLI frontends.
pub fn by_name(name: &str) -> Option<ModelConfig> {
    let lower = name.to_ascii_lowercase();
    all_presets()
        .into_iter()
        .find(|m| m.name.to_ascii_lowercase() == lower)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_counts_land_near_nominal_sizes() {
        // (model, nominal billions, tolerance in billions)
        let cases = [
            (opt_13b(), 13.0, 1.0),
            (opt_30b(), 30.0, 1.0),
            (opt_66b(), 66.0, 2.5),
            (llama_13b(), 13.0, 1.0),
            (llama_30b(), 32.5, 2.0),
            (llama_65b(), 65.0, 2.5),
        ];
        for (m, nominal, tol) in cases {
            let b = m.total_params() as f64 / 1e9;
            assert!(
                (b - nominal).abs() <= tol,
                "{}: {:.1}B params, expected ~{nominal}B",
                m.name,
                b
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("opt-30b").unwrap().hidden, 7168);
        assert_eq!(by_name("LLAMA-65B").unwrap().num_layers, 80);
        assert!(by_name("gpt-5").is_none());
    }

    #[test]
    fn opt_mlp_ratio_is_four() {
        for m in [opt_125m(), opt_13b(), opt_30b(), opt_66b()] {
            assert_eq!(m.ffn_hidden, 4 * m.hidden);
        }
    }
}
