//! Memory-footprint calculators: the tensor sizes of §3.2 (Eq. 17-19) and
//! the aggregate footprints quoted in the motivation study (§3.1).
//!
//! All `_elems` functions count *elements per transformer layer*; multiply
//! by a [`DType`]'s width via [`DType::bytes_for`] to get bytes, and by
//! `num_layers` for whole-model figures. The leading factor 2 in the KV
//! formulas accounts for keys and values.

use crate::config::{DType, ModelConfig};
use crate::workload::Workload;

/// Eq. 17 — KV cache elements produced by the prefill phase in one layer:
/// `2·(s+1)·h1·bls`.
pub fn pf_kv_cache_elems(cfg: &ModelConfig, w: &Workload) -> u64 {
    2 * (w.prompt_len + 1) * cfg.hidden * w.block_size()
}

/// Eq. 18 — aggregate "old KV cache" elements consumed over the whole decode
/// phase in one layer, using the paper's average-size simplification:
/// `(2·(s+n/2)·h1·bls)·n`.
pub fn old_kv_cache_elems_total(cfg: &ModelConfig, w: &Workload) -> u64 {
    2 * (w.prompt_len + w.gen_len / 2) * cfg.hidden * w.block_size() * w.gen_len
}

/// Exact old-KV-cache elements at decode step `i` (0-based) in one layer:
/// the cache then holds `s + i + 1` token positions... the paper's Eq. 18
/// uses `s + n/2` as the average, which this function reproduces when
/// averaged over `i = 0..n`.
pub fn old_kv_cache_elems_at(cfg: &ModelConfig, w: &Workload, step: u64) -> u64 {
    assert!(step < w.gen_len, "decode step out of range");
    2 * (w.prompt_len + step) * cfg.hidden * w.block_size()
}

/// Eq. 19 (per token) — newly generated KV elements in one layer per decode
/// step: `2·h1·bls`.
pub fn new_kv_cache_elems_per_token(cfg: &ModelConfig, w: &Workload) -> u64 {
    2 * cfg.hidden * w.block_size()
}

/// Eq. 19 (aggregate) — newly generated KV elements in one layer over the
/// whole decode phase: `2·h1·bls·n`.
pub fn new_kv_cache_elems_total(cfg: &ModelConfig, w: &Workload) -> u64 {
    new_kv_cache_elems_per_token(cfg, w) * w.gen_len
}

/// Full KV-cache elements in one layer once `seq_len` positions are cached.
pub fn kv_cache_elems_full(cfg: &ModelConfig, seq_len: u64, block_size: u64) -> u64 {
    2 * seq_len * cfg.hidden * block_size
}

/// Activation elements crossing one layer boundary (the hidden states for a
/// single decode step of the whole block): `h1·bls`.
pub fn activation_elems(cfg: &ModelConfig, w: &Workload) -> u64 {
    cfg.hidden * w.block_size()
}

/// Whole-model weight bytes at a given precision (transformer layers only —
/// what must stream through the interconnect each token).
pub fn weights_bytes(cfg: &ModelConfig, dtype: DType) -> u64 {
    dtype.bytes_for(cfg.layer_params())
}

/// Whole-model peak KV-cache bytes at the end of generation.
pub fn kv_cache_bytes_peak(cfg: &ModelConfig, w: &Workload, dtype: DType) -> u64 {
    dtype.bytes_for(kv_cache_elems_full(cfg, w.final_seq_len(), w.block_size()))
        * cfg.num_layers as u64
}

/// Whole-model activation working-set bytes (double-buffered: previous and
/// next batch in flight simultaneously, per Algorithm 1).
pub fn activation_bytes(cfg: &ModelConfig, w: &Workload, dtype: DType) -> u64 {
    2 * dtype.bytes_for(activation_elems(cfg, w))
}

/// Aggregate inference footprint, the "total memory consumption" columns of
/// §3.1 and Table 3.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Footprint {
    pub weights: u64,
    pub kv_cache: u64,
    pub activations: u64,
}

impl Footprint {
    /// Compute the footprint for a model/workload at given at-rest
    /// precisions for weights and KV cache.
    pub fn compute(cfg: &ModelConfig, w: &Workload, wgt: DType, kv: DType) -> Self {
        Footprint {
            weights: weights_bytes(cfg, wgt),
            kv_cache: kv_cache_bytes_peak(cfg, w, kv),
            activations: activation_bytes(cfg, w, DType::F16),
        }
    }

    pub fn total(&self) -> u64 {
        self.weights + self.kv_cache + self.activations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use lm_hardware_units::GIB;

    // Minimal local mirror of the GIB constant to avoid a dependency cycle;
    // kept equal to lm_hardware::GIB by the integration tests.
    mod lm_hardware_units {
        pub const GIB: u64 = 1 << 30;
    }

    #[test]
    fn opt30b_motivation_footprint_matches_paper() {
        // §3.1: "the total memory consumption is 214GB, among which the
        // parameters take 55GB and the KV cache takes up to 157GB."
        let cfg = presets::opt_30b();
        let w = Workload::motivation();
        let fp = Footprint::compute(&cfg, &w, DType::F16, DType::F16);
        let gib = |b: u64| b as f64 / GIB as f64;
        assert!(
            (gib(fp.weights) - 55.0).abs() < 1.5,
            "weights {:.1} GiB",
            gib(fp.weights)
        );
        assert!(
            (gib(fp.kv_cache) - 157.0).abs() < 1.5,
            "kv {:.1} GiB",
            gib(fp.kv_cache)
        );
        assert!(
            (gib(fp.total()) - 214.0).abs() < 2.5,
            "total {:.1} GiB",
            gib(fp.total())
        );
    }

    #[test]
    fn eq17_to_19_consistency() {
        let cfg = presets::opt_30b();
        let w = Workload::motivation();
        // Eq 17 with s=64, bls=640: 2·65·7168·640.
        assert_eq!(pf_kv_cache_elems(&cfg, &w), 2 * 65 * 7168 * 640);
        // Per-token new KV: 2·7168·640.
        assert_eq!(new_kv_cache_elems_per_token(&cfg, &w), 2 * 7168 * 640);
        // Aggregate new KV = per-token × n.
        assert_eq!(
            new_kv_cache_elems_total(&cfg, &w),
            new_kv_cache_elems_per_token(&cfg, &w) * w.gen_len
        );
        // Eq 18's average equals the mean of the exact per-step sizes.
        let exact_sum: u64 = (0..w.gen_len)
            .map(|i| old_kv_cache_elems_at(&cfg, &w, i))
            .sum();
        let avg_model = old_kv_cache_elems_total(&cfg, &w);
        let rel = (exact_sum as f64 - avg_model as f64).abs() / avg_model as f64;
        assert!(rel < 0.01, "Eq 18 average off by {rel:.3}");
    }

    #[test]
    fn activation_is_tiny_relative_to_kv() {
        // §3.2: activation load/store "takes less than 1% of inference
        // time" and is "much smaller than the KV cache (99.5% less)".
        let cfg = presets::opt_30b();
        let w = Workload::motivation();
        let act = activation_elems(&cfg, &w);
        let kv = old_kv_cache_elems_at(&cfg, &w, w.gen_len - 1);
        assert!((act as f64) < 0.005 * kv as f64);
    }

    #[test]
    fn quantized_weights_are_quarter_size() {
        let cfg = presets::opt_13b();
        let f16 = weights_bytes(&cfg, DType::F16);
        let i4 = weights_bytes(&cfg, DType::Int4);
        assert_eq!(f16, 4 * i4);
    }

    #[test]
    #[should_panic(expected = "decode step out of range")]
    fn old_kv_step_bounds() {
        let cfg = presets::tiny_test();
        let w = Workload::new(4, 4, 2, 1);
        old_kv_cache_elems_at(&cfg, &w, 4);
    }
}
