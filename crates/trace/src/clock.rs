//! The run-origin clock. Every span, instant and fault event in one run
//! is stamped relative to the same origin, so the Perfetto view lines
//! them up without post-hoc shifting.

use std::time::Instant;

/// A monotonic clock anchored at a run origin. Cheap to copy; hand the
/// same clock to the tracer and the fault injector and their timestamps
/// share a time base.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    origin: Instant,
}

impl TraceClock {
    /// Start a clock at "now".
    pub fn start() -> Self {
        TraceClock {
            origin: Instant::now(),
        }
    }

    /// Seconds since the origin.
    #[inline]
    pub fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }

    /// Microseconds since the origin (the Perfetto time unit).
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = TraceClock::start();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a);
        assert!(a >= 0.0);
    }

    #[test]
    fn copies_share_the_origin() {
        let c = TraceClock::start();
        let d = c;
        std::thread::sleep(std::time::Duration::from_millis(2));
        // Both copies measure from the same origin, so both see the sleep.
        assert!(c.now_us() >= 2_000);
        assert!((c.now_s() - d.now_s()).abs() < 0.5);
    }
}
