//! The unified serve API (DESIGN.md §16): one builder —
//! [`ServeSession`] — subsumes the four free functions the serving layer
//! used to export (`serve_sequential`, `serve_static`,
//! `serve_continuous`, `serve_continuous_with`) behind a single
//! configuration surface, and adds the real-time front end
//! ([`ServeSession::run_async`]) over the identical scheduler core.
//!
//! The three entry points share one state machine:
//!
//! - [`ServeSession::run`] / [`ServeSession::run_streaming`] — the
//!   virtual-clock paths. Outcomes are a pure function of `(requests,
//!   backend, config)`, byte-identical to the pre-redesign free
//!   functions (a golden-file test holds `results/serve.json` to that).
//! - [`ServeSession::run_async`] — the scheduler runs on its own thread
//!   behind an `AsyncDriver`: wall time (scaled by
//!   [`AsyncConfig::time_scale`]) paces the modelled clock, each request
//!   streams through its own bounded tokio mpsc channel, a dropped
//!   receiver is a client disconnect, and a channel full past the
//!   backpressure grace is shed the same way. Token *values* are
//!   untouched — the `repro async` experiment property-tests streamed
//!   completions against solo `Engine::run` — only timing and delivery
//!   move to wall clocks.

use crate::admission::{derive_plan, KvMode, ServeConfig, ServeError, ServePlan};
use crate::backend::ServeBackend;
use crate::driver::{Delivery, NullDriver, ServeDriver, VirtualDriver};
use crate::request::Request;
use crate::scheduler::{run_continuous, run_sequential, run_static, ServeOutcome, TokenEvent};
use crate::slo::{DegradeLadder, SloPolicy};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tokio::sync::mpsc;
use tokio::sync::mpsc::error::TrySendError;

/// Which scheduler a session runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeMode {
    /// The continuous-batching scheduler (the paper's serving mode):
    /// admission-planned slots, SLO actuation, paged KV, streaming.
    #[default]
    Continuous,
    /// Baseline 1: one call per request in arrival order.
    Sequential,
    /// Baseline 2: naive static batching in fixed groups of `batch`.
    Static { batch: usize },
}

/// What [`ServeSession::run`] returns: the admission plan (for the
/// continuous scheduler; the baselines don't plan) and the outcome.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// The `LMA25x`-linted admission plan; `None` for the baselines,
    /// which admit without planning.
    pub plan: Option<ServePlan>,
    pub outcome: ServeOutcome,
}

impl ServeRun {
    /// Split into `(plan, outcome)`.
    pub fn into_parts(self) -> (Option<ServePlan>, ServeOutcome) {
        (self.plan, self.outcome)
    }

    /// Split a continuous run into its admission plan and outcome.
    ///
    /// # Panics
    ///
    /// If the run came from a baseline mode ([`ServeMode::Sequential`] /
    /// [`ServeMode::Static`]), which admit per-request instead of
    /// deriving a slot plan.
    pub fn into_continuous(self) -> (ServePlan, ServeOutcome) {
        match self.plan {
            Some(plan) => (plan, self.outcome),
            None => panic!("into_continuous on a baseline run that carries no admission plan"),
        }
    }
}

/// Knobs for the real-time front end, judged by `lm-analyze`'s `LMA30x`
/// family before the session starts.
#[derive(Debug, Clone)]
pub struct AsyncConfig {
    /// Capacity of each request's bounded token channel (`LMA300`
    /// rejects 0). Sends past this block the scheduler into the
    /// backpressure grace, then shed the stream.
    pub channel_capacity: usize,
    /// Virtual microseconds per wall microsecond (`LMA302` rejects
    /// non-finite or ≤ 0). `1.0` is real time; large values compress a
    /// long modelled run into a short wall run while keeping relative
    /// timing.
    pub time_scale: f64,
    /// Wall-clock grace a full channel gets before the token is declared
    /// undeliverable and the stream is shed as a disconnect.
    pub backpressure_grace: Duration,
}

impl Default for AsyncConfig {
    fn default() -> Self {
        AsyncConfig {
            channel_capacity: 32,
            time_scale: 1.0,
            backpressure_grace: Duration::from_millis(50),
        }
    }
}

/// The per-request token streams handed to [`ServeSession::run_async`]'s
/// client closure: one bounded receiver per submitted request, keyed by
/// request id. Dropping a receiver (or the whole collection) is how a
/// client disconnects — the scheduler observes the closed channel and
/// cancels the stream, reclaiming its KV.
pub struct TokenStreams {
    rx: BTreeMap<u64, mpsc::Receiver<TokenEvent>>,
}

impl TokenStreams {
    /// Take ownership of one request's stream; `None` if the id is
    /// unknown or already taken.
    pub fn take(&mut self, request_id: u64) -> Option<mpsc::Receiver<TokenEvent>> {
        self.rx.remove(&request_id)
    }

    /// Request ids whose streams have not been taken yet, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.rx.keys().copied().collect()
    }

    /// Drain every remaining `(request_id, receiver)` pair, ascending.
    pub fn drain(&mut self) -> Vec<(u64, mpsc::Receiver<TokenEvent>)> {
        std::mem::take(&mut self.rx).into_iter().collect()
    }
}

/// Builder over a backend + [`ServeConfig`] + [`ServeMode`]: the one
/// serving entry point. Construction is infallible; feasibility is
/// judged at `run*` time (`LMA25x`/`LMA26x` on the plan, `LMA30x` on the
/// async front end), exactly as the free functions did.
pub struct ServeSession<'b> {
    backend: &'b dyn ServeBackend,
    cfg: ServeConfig,
    mode: ServeMode,
}

impl<'b> ServeSession<'b> {
    /// A continuous-batching session with the default [`ServeConfig`].
    pub fn new(backend: &'b dyn ServeBackend) -> Self {
        ServeSession {
            backend,
            cfg: ServeConfig::default(),
            mode: ServeMode::Continuous,
        }
    }

    /// Select the scheduler ([`ServeMode::Continuous`] is the default).
    pub fn mode(mut self, mode: ServeMode) -> Self {
        self.mode = mode;
        self
    }

    /// Replace the whole [`ServeConfig`] (the escape hatch; the focused
    /// setters below cover the common knobs).
    pub fn config(mut self, cfg: ServeConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// KV backing for slots (paged is the default).
    pub fn kv_mode(mut self, kv_mode: KvMode) -> Self {
        self.cfg.kv_mode = kv_mode;
        self
    }

    /// Concurrency ceiling (worst-case-slab budget; see
    /// [`ServeConfig::max_slots`]).
    pub fn max_slots(mut self, max_slots: usize) -> Self {
        self.cfg.max_slots = max_slots;
        self
    }

    /// Attach a TTFT objective (`None` by default: no prediction, no
    /// actuation).
    pub fn slo(mut self, slo: SloPolicy) -> Self {
        self.cfg.slo = Some(slo);
        self
    }

    /// Attach a degrade ladder for the SLO monitor's fallback actuator.
    pub fn ladder(mut self, ladder: Arc<dyn DegradeLadder>) -> Self {
        self.cfg.ladder = Some(ladder);
        self
    }

    /// Attach a fault plan (chaos storms, injected disconnects/crashes,
    /// pool pressure).
    pub fn fault(mut self, fault: lm_fault::FaultInjector) -> Self {
        self.cfg.fault = fault;
        self
    }

    /// Attach a span/metrics recorder.
    pub fn tracer(mut self, tracer: lm_trace::Tracer) -> Self {
        self.cfg.tracer = tracer;
        self
    }

    /// Attach a flight recorder (frozen on the first SLO breach).
    pub fn flight(mut self, flight: lm_trace::FlightRecorder) -> Self {
        self.cfg.flight = flight;
        self
    }

    /// The session's effective configuration (for tests and probes).
    pub fn effective_config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Run on the virtual clock, discarding the token stream.
    /// Byte-identical to the pre-redesign `serve_continuous` /
    /// `serve_sequential` / `serve_static`.
    pub fn run(&self, requests: Vec<Request>) -> Result<ServeRun, ServeError> {
        match self.mode {
            ServeMode::Continuous => {
                run_continuous(self.backend, &self.cfg, requests, &mut NullDriver).map(
                    |(plan, outcome)| ServeRun {
                        plan: Some(plan),
                        outcome,
                    },
                )
            }
            ServeMode::Sequential => {
                run_sequential(self.backend, &self.cfg, requests).map(|outcome| ServeRun {
                    plan: None,
                    outcome,
                })
            }
            ServeMode::Static { batch } => {
                run_static(self.backend, &self.cfg, batch, requests).map(|outcome| ServeRun {
                    plan: None,
                    outcome,
                })
            }
        }
    }

    /// Run on the virtual clock with synchronous per-token delivery
    /// (byte-identical to the pre-redesign `serve_continuous_with`).
    /// Only the continuous scheduler streams; the baselines deliver no
    /// token events (they release whole responses, which is the point of
    /// the comparison) and behave exactly like [`ServeSession::run`].
    pub fn run_streaming(
        &self,
        requests: Vec<Request>,
        on_token: &mut dyn FnMut(TokenEvent),
    ) -> Result<ServeRun, ServeError> {
        match self.mode {
            ServeMode::Continuous => run_continuous(
                self.backend,
                &self.cfg,
                requests,
                &mut VirtualDriver::new(on_token),
            )
            .map(|(plan, outcome)| ServeRun {
                plan: Some(plan),
                outcome,
            }),
            _ => self.run(requests),
        }
    }

    /// Run the continuous scheduler in real time: the scheduler paces
    /// its modelled clock against the wall (scaled by
    /// [`AsyncConfig::time_scale`]) on a dedicated thread while `client`
    /// consumes per-request token streams on the calling thread. Returns
    /// when both sides finish.
    ///
    /// Always drives the continuous scheduler regardless of the
    /// session's [`ServeMode`]: the baselines are virtual-clock
    /// measurement instruments and have no streaming front end.
    ///
    /// Semantics carried over from the virtual path unchanged: token
    /// values (transparency against solo `Engine::run`), admission
    /// order, the SLO actuators, and KV reclamation. What wall time
    /// adds: `pace` may return late (jitter flows into TTFT and the
    /// deadline machinery), a dropped receiver resolves the stream as a
    /// [`CancelReason::ClientDisconnect`](crate::CancelReason)
    /// cancellation at the next boundary, and a channel full past
    /// [`AsyncConfig::backpressure_grace`] is shed the same way.
    pub fn run_async<R, F>(
        &self,
        requests: Vec<Request>,
        acfg: &AsyncConfig,
        client: F,
    ) -> Result<(ServeRun, R), ServeError>
    where
        R: Send,
        F: FnOnce(TokenStreams) -> R + Send,
    {
        // LMA30x pre-flight: reject configurations that cannot work at
        // runtime before any thread spawns, mirroring the LMA25x plan
        // gate. The plan floor comes from the same arithmetic LMA260
        // judges the virtual path by.
        let (plan, _) = derive_plan(self.backend, &self.cfg);
        let probe = lm_analyze::AsyncProbe {
            channel_capacity: acfg.channel_capacity as u64,
            time_scale: acfg.time_scale,
            ttft_p99_slo_s: self.cfg.slo.as_ref().map(|s| s.ttft_p99_s),
            floor_ttft_s: self.backend.prefill_seconds(plan.slot_context, plan.slots)
                + plan.est_step_seconds,
        };
        let report = lm_analyze::lint_async(&probe);
        if !report.is_clean() {
            return Err(ServeError::Plan(report));
        }

        let mut senders = BTreeMap::new();
        let mut receivers = BTreeMap::new();
        for r in &requests {
            let (tx, rx) = mpsc::channel(acfg.channel_capacity);
            senders.insert(r.id, tx);
            receivers.insert(r.id, rx);
        }
        let streams = TokenStreams { rx: receivers };

        let backend = self.backend;
        let cfg = &self.cfg;
        let (sched, client_out) = std::thread::scope(|s| {
            let sched = s.spawn(move || {
                let mut driver = AsyncDriver {
                    senders,
                    start: Instant::now(),
                    scale: acfg.time_scale,
                    backpressure_grace: acfg.backpressure_grace,
                };
                run_continuous(backend, cfg, requests, &mut driver)
            });
            // The client consumes on the calling thread; when it drops
            // receivers the scheduler sees closed channels and cancels.
            let client_out = client(streams);
            (sched.join(), client_out)
        });
        match sched {
            Ok(Ok((plan, outcome))) => Ok((
                ServeRun {
                    plan: Some(plan),
                    outcome,
                },
                client_out,
            )),
            Ok(Err(e)) => Err(e),
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

/// The wall-clock driver behind [`ServeSession::run_async`] (see
/// [`crate::driver`] for the contract).
struct AsyncDriver {
    senders: BTreeMap<u64, mpsc::Sender<TokenEvent>>,
    start: Instant,
    /// Virtual microseconds per wall microsecond.
    scale: f64,
    backpressure_grace: Duration,
}

impl AsyncDriver {
    fn wall_virtual_us(&self) -> u64 {
        (self.start.elapsed().as_secs_f64() * self.scale * 1e6) as u64
    }
}

impl ServeDriver for AsyncDriver {
    fn pace(&mut self, clock_us: u64) -> u64 {
        loop {
            let now = self.wall_virtual_us();
            if now >= clock_us {
                // Wall time overran the model: the run proceeds at the
                // later clock, so jitter reaches deadlines and TTFT.
                return now;
            }
            let gap = Duration::from_secs_f64((clock_us - now) as f64 / (self.scale * 1e6));
            if gap > Duration::from_micros(500) {
                // Undershoot the sleep and re-check: OS sleep overshoot
                // multiplied by a large time_scale would otherwise leap
                // the virtual clock far past the boundary.
                std::thread::sleep(gap.mul_f64(0.5));
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn deliver(&mut self, event: TokenEvent) -> Delivery {
        let Some(tx) = self.senders.get(&event.request_id) else {
            // Already retired (or never registered): nothing to carry.
            return Delivery::Delivered;
        };
        let mut ev = event;
        let deadline = Instant::now() + self.backpressure_grace;
        loop {
            match tx.try_send(ev) {
                Ok(()) => return Delivery::Delivered,
                Err(TrySendError::Closed(_)) => return Delivery::Disconnected,
                Err(TrySendError::Full(back)) => {
                    if Instant::now() >= deadline {
                        return Delivery::Backpressured;
                    }
                    ev = back;
                    std::thread::yield_now();
                }
            }
        }
    }

    fn retire(&mut self, request_id: u64) {
        // Dropping the sender closes the channel once any buffered
        // tokens drain: the consumer's `recv` returns `None` as
        // end-of-stream.
        self.senders.remove(&request_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::request::synth_traffic;
    use lm_analyze::LintCode;

    fn traffic(n: usize) -> (AnalyticBackend, Vec<Request>) {
        let b = AnalyticBackend::opt_30b();
        let reqs = synth_traffic(7, 4.0, n, b.model());
        (b, reqs)
    }

    #[test]
    fn session_run_matches_the_deprecated_free_functions() {
        #![allow(deprecated)]
        let (b, reqs) = traffic(12);
        let cfg = ServeConfig::default();
        let session = ServeSession::new(&b).config(cfg.clone());
        let new = session.run(reqs.clone()).unwrap();
        let (old_plan, old_out) =
            crate::scheduler::serve_continuous(&b, &cfg, reqs.clone()).unwrap();
        assert_eq!(new.plan.as_ref(), Some(&old_plan));
        assert_eq!(
            serde_json::to_string(&new.outcome).unwrap(),
            serde_json::to_string(&old_out).unwrap(),
            "ServeSession::run must byte-reproduce serve_continuous"
        );

        let seq_new = ServeSession::new(&b)
            .mode(ServeMode::Sequential)
            .run(reqs.clone())
            .unwrap();
        assert!(seq_new.plan.is_none(), "baselines do not plan");
        let seq_old = crate::scheduler::serve_sequential(&b, &cfg, reqs.clone()).unwrap();
        assert_eq!(
            serde_json::to_string(&seq_new.outcome).unwrap(),
            serde_json::to_string(&seq_old).unwrap()
        );

        let st_new = ServeSession::new(&b)
            .mode(ServeMode::Static { batch: 4 })
            .run(reqs.clone())
            .unwrap();
        let st_old = crate::scheduler::serve_static(&b, &cfg, 4, reqs).unwrap();
        assert_eq!(
            serde_json::to_string(&st_new.outcome).unwrap(),
            serde_json::to_string(&st_old).unwrap()
        );
    }

    #[test]
    fn streaming_matches_non_streaming_and_orders_tokens() {
        let (b, reqs) = traffic(10);
        let session = ServeSession::new(&b);
        let quiet = session.run(reqs.clone()).unwrap();
        let mut events: Vec<TokenEvent> = Vec::new();
        let streamed = session
            .run_streaming(reqs, &mut |e| events.push(e))
            .unwrap();
        assert_eq!(
            serde_json::to_string(&quiet.outcome).unwrap(),
            serde_json::to_string(&streamed.outcome).unwrap(),
            "the stream is an observer, not a participant"
        );
        // Every completed response's tokens appear in the stream, in
        // order.
        for r in &streamed.outcome.responses {
            let got: Vec<u32> = events
                .iter()
                .filter(|e| e.request_id == r.id)
                .map(|e| e.token)
                .collect();
            assert_eq!(got, r.tokens, "request {}", r.id);
        }
    }

    #[test]
    fn async_preflight_rejects_zero_capacity_and_bad_scale() {
        let (b, reqs) = traffic(2);
        let session = ServeSession::new(&b);
        let zero = AsyncConfig {
            channel_capacity: 0,
            ..AsyncConfig::default()
        };
        match session.run_async(reqs.clone(), &zero, |_| ()) {
            Err(ServeError::Plan(report)) => {
                assert!(report.has(LintCode::Lma300AsyncZeroChannelCapacity), "{report}")
            }
            other => panic!("expected LMA300 rejection, got ok={}", other.is_ok()),
        }
        let bad_scale = AsyncConfig {
            time_scale: 0.0,
            ..AsyncConfig::default()
        };
        match session.run_async(reqs, &bad_scale, |_| ()) {
            Err(ServeError::Plan(report)) => {
                assert!(report.has(LintCode::Lma302AsyncBadTimeScale), "{report}")
            }
            other => panic!("expected LMA302 rejection, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn async_run_streams_transparently_and_reclaims_kv() {
        let (b, reqs) = traffic(6);
        let session = ServeSession::new(&b);
        // Compress the modelled run (hundreds of virtual seconds) into
        // well under a second of wall time.
        let acfg = AsyncConfig {
            time_scale: 5e5,
            ..AsyncConfig::default()
        };
        let n = reqs.len();
        let (run, collected) = session
            .run_async(reqs, &acfg, |mut streams| {
                let mut got: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
                for (id, mut rx) in streams.drain() {
                    let mut tokens = Vec::new();
                    while let Some(ev) = rx.blocking_recv() {
                        tokens.push(ev.token);
                    }
                    got.insert(id, tokens);
                }
                got
            })
            .unwrap();
        assert_eq!(run.outcome.terminal_count(), n, "every request resolves");
        assert!(run.outcome.stats.admissions_balanced());
        assert_eq!(run.outcome.kv_leaked_bytes, 0);
        assert_eq!(run.outcome.kv_pages_leaked, 0);
        // Transparency: completed responses streamed exactly their
        // tokens (wall jitter may shed *other* requests via deadlines,
        // never corrupt a stream).
        for r in &run.outcome.responses {
            assert_eq!(collected.get(&r.id), Some(&r.tokens), "request {}", r.id);
        }
    }

    #[test]
    fn async_dropped_receiver_cancels_stream_without_leaks() {
        let (b, reqs) = traffic(8);
        let session = ServeSession::new(&b);
        let acfg = AsyncConfig {
            time_scale: 5e5,
            ..AsyncConfig::default()
        };
        let n = reqs.len();
        let victim = reqs[0].id;
        let (run, _) = session
            .run_async(reqs, &acfg, |mut streams| {
                // Never consume the victim: drop its receiver on the
                // floor immediately (client disconnect), drain the rest.
                drop(streams.take(victim));
                for (_, mut rx) in streams.drain() {
                    while rx.blocking_recv().is_some() {}
                }
            })
            .unwrap();
        assert_eq!(run.outcome.terminal_count(), n);
        assert_eq!(run.outcome.kv_leaked_bytes, 0, "disconnect reclaims KV");
        assert_eq!(run.outcome.kv_pages_leaked, 0);
        // The victim must not have completed: its channel was closed
        // from the first delivery.
        assert!(
            !run.outcome.responses.iter().any(|r| r.id == victim),
            "victim stream should resolve as disconnect/rejection, not a response"
        );
    }
}
