//! Cross-crate integration: the paper's headline comparative claims,
//! checked through the full search→simulate pipeline.

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::presets as models;
use lm_offload::{run_framework, run_pipeline, EngineConfig, Framework};

#[test]
fn lm_offload_dominates_flexgen_across_models_and_lengths() {
    // Table 3's strongest shape: LM-Offload >= FlexGen everywhere.
    let platform = hw::single_gpu_a100();
    for model in [models::opt_30b(), models::opt_66b(), models::llama_30b()] {
        for len in [8u64, 32] {
            let cfg = EngineConfig::new(&platform, &model, 64, len);
            let lm = run_framework(Framework::LmOffload, &cfg).expect("LM run");
            let fg = run_framework(Framework::FlexGen, &cfg).expect("FG run");
            assert!(
                lm.throughput() >= fg.throughput(),
                "{} len={len}: LM {:.1} < FG {:.1}",
                model.name,
                lm.throughput(),
                fg.throughput()
            );
        }
    }
}

#[test]
fn speedup_band_matches_paper_scale() {
    // §5.2: up to 2.95x vs FlexGen. Require the OPT-30B long-generation
    // cell (where quantization-aware policy helps most) to land in a
    // 1.5x-6x band — right order of magnitude without overfitting.
    let platform = hw::single_gpu_a100();
    let cfg = EngineConfig::new(&platform, &models::opt_30b(), 64, 64);
    let lm = run_framework(Framework::LmOffload, &cfg).unwrap();
    let fg = run_framework(Framework::FlexGen, &cfg).unwrap();
    let speedup = lm.throughput() / fg.throughput();
    assert!(
        (1.3..=6.0).contains(&speedup),
        "speedup {speedup:.2} outside plausible band"
    );
}

#[test]
fn zero_inference_competitive_only_at_small_models() {
    // §5.2: ZeRO is closest on OPT-30B (it even wins one cell in the
    // paper); it collapses on 66B where 4-bit weights crowd the GPU and
    // batches shrink.
    let platform = hw::single_gpu_a100();
    let ratio = |model: &lm_models::ModelConfig, len: u64| {
        let cfg = EngineConfig::new(&platform, model, 64, len);
        let lm = run_framework(Framework::LmOffload, &cfg).unwrap();
        let z = run_framework(Framework::ZeroInference, &cfg).unwrap();
        lm.throughput() / z.throughput()
    };
    let small = ratio(&models::opt_30b(), 64);
    let large = ratio(&models::opt_66b(), 64);
    assert!(small > 0.8, "ZeRO should be within reach on 30B: {small:.2}");
    assert!(
        large > small,
        "LM-Offload's edge must grow with model size: {small:.2} -> {large:.2}"
    );
}

#[test]
fn parallelism_control_contributes_on_top_of_modeling() {
    // Fig. 7 vs Table 3: modeling alone wins; control adds more.
    let platform = hw::single_gpu_a100();
    let mut cfg = EngineConfig::new(&platform, &models::llama_30b(), 64, 32);
    let fg = run_framework(Framework::FlexGen, &cfg).unwrap();
    cfg.parallelism_control = false;
    let lm_model_only = run_framework(Framework::LmOffload, &cfg).unwrap();
    cfg.parallelism_control = true;
    let lm_full = run_framework(Framework::LmOffload, &cfg).unwrap();
    assert!(lm_model_only.throughput() > fg.throughput());
    assert!(lm_full.throughput() >= lm_model_only.throughput());
}

#[test]
fn multi_gpu_gap_grows_like_fig9() {
    let ratios: Vec<f64> = [1u32, 4]
        .iter()
        .map(|&g| {
            let platform = hw::multi_gpu_v100(g);
            let cfg = EngineConfig::new(&platform, &models::llama_13b(), 256, 64);
            let lm = run_pipeline(Framework::LmOffload, &cfg, g).unwrap();
            let fg = run_pipeline(Framework::FlexGen, &cfg, g).unwrap();
            lm.throughput / fg.throughput
        })
        .collect();
    assert!(ratios[0] >= 1.0);
    assert!(
        ratios[1] > ratios[0],
        "gap must widen 1->4 GPUs: {ratios:?}"
    );
}

#[test]
fn deployments_respect_platform_memory() {
    let platform = hw::single_gpu_a100();
    for model in [models::opt_66b(), models::llama_65b()] {
        let cfg = EngineConfig::new(&platform, &model, 64, 16);
        for fw in Framework::ALL {
            if let Some(run) = run_framework(fw, &cfg) {
                assert!(
                    lm_sim::fits(&model, &run.deployment.workload, &platform, &run.deployment.policy),
                    "{} deployed an infeasible policy on {}",
                    fw.name(),
                    model.name
                );
            }
        }
    }
}
