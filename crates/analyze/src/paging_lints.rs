//! Paged-KV lints (`LMA28x`).
//!
//! The paged allocator (`lm-kvpool`) replaces worst-case contiguous KV
//! slabs with fixed-size pages shared copy-on-write across requests with
//! a common prompt prefix. Its failure modes are silent: a page size
//! that does not divide the plan's KV block quietly reintroduces
//! padding, a refcount drift leaks pages only under churn, and a missed
//! COW fork corrupts a *different* request's context. These lints judge
//! a sampled [`PagingProbe`] the same way `serve_lints` judges a
//! [`ServeProbe`](crate::ServeProbe):
//!
//! - the page geometry must be internally consistent and must tile the
//!   plan's per-slot KV block exactly (`LMA280`: a remainder page is
//!   per-request padding the paged design exists to eliminate);
//! - refcounts must balance: the sum of page refcounts equals the
//!   number of page-table entries across live sequences, and pages in
//!   use never exceed the pool (`LMA281`: drift here is a page leak or
//!   a double free waiting for churn to expose it);
//! - no page may be written in place while mapped by more than one
//!   sequence (`LMA282`: a bypassed copy-on-write fork corrupts another
//!   request's KV history — the worst silent failure the pool has).
//!
//! The probe is a plain value: `lm-serve` samples it from a live paged
//! pool at block boundaries, mutation tests corrupt fields directly,
//! and `repro analyze` checks the default paged plan — all without this
//! crate depending on the pool crate.

use crate::diag::{Diagnostic, LintCode, Report};
use serde::{Deserialize, Serialize};

/// Observations sampled from one paged KV pool + plan pairing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PagingProbe {
    /// Tokens one page holds.
    pub page_tokens: u64,
    /// Bytes one page leases from the backing `MemPool`.
    pub page_bytes: u64,
    /// KV bytes one token occupies across all layers.
    pub bytes_per_token: u64,
    /// Tokens in the plan's per-slot KV block (`slot_context`); pages
    /// must tile it exactly.
    pub kv_block_tokens: u64,
    /// Pages the backing pool can hold in total.
    pub pages_total: u64,
    /// Pages currently mapped by at least one sequence.
    pub pages_in_use: u64,
    /// Sum of refcounts over all live pages.
    pub page_refcount_sum: u64,
    /// Page-table entries summed over all live sequences (each entry is
    /// one mapping, shared or private).
    pub seq_mapped_pages: u64,
    /// In-place writes observed on a page whose refcount was > 1. Any
    /// nonzero value means the COW discipline was bypassed.
    pub shared_write_violations: u64,
}

/// Run every paged-KV lint over a sampled probe.
pub fn lint_paging(probe: &PagingProbe) -> Report {
    let mut out = Vec::new();

    // LMA280: geometry. Every downstream invariant assumes pages are
    // nonzero, byte-consistent, and tile the KV block exactly; check
    // them together so a broken derivation surfaces as one finding with
    // all the offending values inline.
    let bytes_consistent = probe.page_bytes == probe.page_tokens.saturating_mul(probe.bytes_per_token);
    let tiles_block =
        probe.page_tokens > 0 && probe.kv_block_tokens.is_multiple_of(probe.page_tokens);
    if probe.page_tokens == 0
        || probe.page_bytes == 0
        || !bytes_consistent
        || !tiles_block
        || probe.pages_total == 0
    {
        out.push(Diagnostic::error(
            LintCode::Lma280PageGeometryInvalid,
            "paging.geometry".to_string(),
            format!(
                "page of {} tokens / {} B (expected {} B at {} B/token) \
                 against a {}-token KV block and a {}-page pool",
                probe.page_tokens,
                probe.page_bytes,
                probe.page_tokens.saturating_mul(probe.bytes_per_token),
                probe.bytes_per_token,
                probe.kv_block_tokens,
                probe.pages_total
            ),
        ));
    }

    // LMA281: refcount conservation. Every page-table entry holds
    // exactly one reference, so the two sums must agree; and a pool
    // cannot have more pages mapped than it owns.
    if probe.page_refcount_sum != probe.seq_mapped_pages || probe.pages_in_use > probe.pages_total {
        out.push(Diagnostic::error(
            LintCode::Lma281PageRefcountImbalance,
            "paging.refcounts".to_string(),
            format!(
                "refcount sum {} vs {} mapped page-table entries; {} of \
                 {} pages in use",
                probe.page_refcount_sum,
                probe.seq_mapped_pages,
                probe.pages_in_use,
                probe.pages_total
            ),
        ));
    }

    // LMA282: copy-on-write bypass. The pool counts every in-place
    // write that landed on a page with refcount > 1; a single one means
    // some other sequence's KV history was silently overwritten.
    if probe.shared_write_violations > 0 {
        out.push(Diagnostic::error(
            LintCode::Lma282DoubleMappedWritablePage,
            "paging.cow".to_string(),
            format!(
                "{} in-place write(s) hit a page mapped by more than one \
                 sequence — copy-on-write fork was bypassed",
                probe.shared_write_violations
            ),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound() -> PagingProbe {
        PagingProbe {
            page_tokens: 16,
            page_bytes: 16 * 1024,
            bytes_per_token: 1024,
            kv_block_tokens: 512,
            pages_total: 256,
            pages_in_use: 40,
            page_refcount_sum: 48,
            seq_mapped_pages: 48,
            shared_write_violations: 0,
        }
    }

    #[test]
    fn sound_probe_is_clean() {
        let r = lint_paging(&sound());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn zero_page_tokens_caught() {
        let mut p = sound();
        p.page_tokens = 0;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma280PageGeometryInvalid), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn inconsistent_page_bytes_caught() {
        let mut p = sound();
        p.page_bytes += 1;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma280PageGeometryInvalid), "{r}");
    }

    #[test]
    fn page_not_dividing_block_caught() {
        let mut p = sound();
        p.kv_block_tokens = 500; // 500 % 16 != 0
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma280PageGeometryInvalid), "{r}");
    }

    #[test]
    fn empty_pool_caught() {
        let mut p = sound();
        p.pages_total = 0;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma280PageGeometryInvalid), "{r}");
    }

    #[test]
    fn refcount_drift_caught() {
        let mut p = sound();
        p.page_refcount_sum += 1;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma281PageRefcountImbalance), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn overcommitted_pages_caught() {
        let mut p = sound();
        p.pages_in_use = p.pages_total + 1;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma281PageRefcountImbalance), "{r}");
    }

    #[test]
    fn shared_write_violation_caught() {
        let mut p = sound();
        p.shared_write_violations = 1;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma282DoubleMappedWritablePage), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn saturating_geometry_math_does_not_wrap() {
        let mut p = sound();
        p.page_tokens = u64::MAX;
        p.bytes_per_token = u64::MAX;
        let r = lint_paging(&p);
        assert!(r.has(LintCode::Lma280PageGeometryInvalid), "{r}");
    }

    #[test]
    fn probe_serializes() {
        let json = serde_json::to_string(&sound()).expect("serialize");
        assert!(json.contains("shared_write_violations"), "{json}");
    }
}
