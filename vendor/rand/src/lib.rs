//! Offline subset of the `rand` crate API (see `vendor/README.md`).
//!
//! Deterministic, seedable generators only — exactly what the workspace
//! uses (`SmallRng::seed_from_u64`, `Rng::gen`, `Uniform`). The stream
//! is NOT bit-compatible with upstream rand; every in-repo consumer
//! only relies on determinism, not on specific values.

/// Core generator interface: a source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high-entropy bits -> uniform [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Convenience sampling methods, as in upstream rand.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_uniform(range.start, range.end, self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, as in upstream rand.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Avoid the all-zero fixed point and decorrelate tiny seeds.
            SmallRng {
                state: seed ^ 0x9E37_79B9_7F4A_7C15,
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types `gen_range` / `Uniform` can sample.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty sample range");
        let u: f32 = Standard::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        assert!(lo < hi, "empty sample range");
        let u: f64 = Standard::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

pub mod distributions {
    use super::{RngCore, SampleUniform};

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: SampleUniform> Uniform<T> {
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform requires low < high");
            Uniform { low, high }
        }
    }

    impl<T: SampleUniform> Distribution<T> for Uniform<T> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_uniform(self.low, self.high, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let u = Uniform::new(f32::EPSILON, 1.0f32);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!(x >= f32::EPSILON && x < 1.0);
        }
        let mut hits = [false; 10];
        for _ in 0..1000 {
            hits[rng.gen_range(0usize..10)] = true;
        }
        assert!(hits.iter().all(|&h| h), "all buckets reachable");
    }
}
