//! The evaluation platforms of Table 4, plus a small synthetic platform for
//! fast unit tests.

use crate::spec::{CpuSpec, Efficiency, GpuSpec, LinkSpec, Platform};
use crate::units::{gb_per_s, ghz, gib, tflops};

/// Dual Intel Xeon Gold 6330 (Ice Lake SP): 2 × 28 cores, SMT2, 2.0 GHz.
/// Peak fp32 = 56 cores × 2.0 GHz × 64 FLOP/cycle (2×FMA-512) ≈ 7.2 TFLOPS.
/// 8 DDR4-2933 channels/socket ≈ 2 × 188 GB/s. LLC = 42 MiB/socket, 12-way.
pub fn xeon_6330_dual() -> CpuSpec {
    CpuSpec {
        name: "2x Intel Xeon Gold 6330".to_string(),
        sockets: 2,
        cores_per_socket: 28,
        threads_per_core: 2,
        freq_hz: ghz(2.0),
        flops: tflops(7.2),
        mem_bw: gb_per_s(376.0),
        mem_capacity: gib(240.0),
        llc_bytes: 42 * (1 << 20),
        llc_ways: 12,
        line_size: 64,
    }
}

/// Dual IBM POWER9 (Table 4 multi-GPU host): 2 × 22 cores, SMT4, 3.8 GHz.
pub fn power9_dual() -> CpuSpec {
    CpuSpec {
        name: "2x IBM POWER9".to_string(),
        sockets: 2,
        cores_per_socket: 22,
        threads_per_core: 4,
        freq_hz: ghz(3.8),
        flops: tflops(2.7),
        mem_bw: gb_per_s(340.0),
        mem_capacity: gib(280.0),
        llc_bytes: 110 * (1 << 20),
        llc_ways: 20,
        line_size: 128,
    }
}

/// NVIDIA A100-40GB: 312 TFLOPS fp16 tensor core, 19.5 TFLOPS fp32 vector,
/// 1555 GB/s HBM2e, 1.41 GHz boost.
pub fn a100_40gb() -> GpuSpec {
    GpuSpec {
        name: "NVIDIA A100 40GB".to_string(),
        freq_hz: ghz(1.41),
        flops: tflops(312.0),
        elementwise_flops: tflops(19.5),
        mem_bw: gb_per_s(1555.0),
        mem_capacity: gib(40.0),
    }
}

/// NVIDIA V100-16GB: 125 TFLOPS fp16 tensor core, 15.7 TFLOPS fp32 vector,
/// 900 GB/s HBM2, 1.53 GHz boost.
pub fn v100_16gb() -> GpuSpec {
    GpuSpec {
        name: "NVIDIA V100 16GB".to_string(),
        freq_hz: ghz(1.53),
        flops: tflops(125.0),
        elementwise_flops: tflops(15.7),
        mem_bw: gb_per_s(900.0),
        mem_capacity: gib(16.0),
    }
}

/// PCIe 4.0 x16: 32 GB/s per direction (the paper quotes 64 GB/s total
/// bidirectional), ~10 µs per-transfer latency.
pub fn pcie4_x16() -> LinkSpec {
    LinkSpec {
        name: "PCIe 4.0 x16".to_string(),
        h2d_bw: gb_per_s(32.0),
        d2h_bw: gb_per_s(32.0),
        latency: 10e-6,
    }
}

/// NVLink 2.0: 150 GB/s per direction (300 GB/s total bidirectional).
pub fn nvlink2() -> LinkSpec {
    LinkSpec {
        name: "NVIDIA NVLink 2.0".to_string(),
        h2d_bw: gb_per_s(150.0),
        d2h_bw: gb_per_s(150.0),
        latency: 5e-6,
    }
}

/// The paper's single-GPU evaluation platform (Table 4, top half):
/// 1× A100-40GB + dual Xeon 6330 + 240 GB host RAM over PCIe 4.0 x16.
pub fn single_gpu_a100() -> Platform {
    Platform {
        name: "single-GPU (A100 + 2x Xeon 6330)".to_string(),
        cpu: xeon_6330_dual(),
        gpu: a100_40gb(),
        num_gpus: 1,
        link: pcie4_x16(),
        gpu_link: None,
        eff: Efficiency::default(),
    }
}

/// The paper's multi-GPU evaluation platform (Table 4, bottom half):
/// `n`× V100-16GB + dual POWER9 + 280 GB host RAM over NVLink 2.0.
/// On this machine the CPU↔GPU path is also NVLink (POWER9's distinctive
/// feature), which the paper relies on for offloading at scale.
pub fn multi_gpu_v100(n: u32) -> Platform {
    assert!((1..=4).contains(&n), "the paper evaluates 1-4 V100s");
    Platform {
        name: format!("multi-GPU ({n}x V100 + 2x POWER9)"),
        cpu: power9_dual(),
        gpu: v100_16gb(),
        num_gpus: n,
        link: nvlink2(),
        gpu_link: Some(nvlink2()),
        eff: Efficiency::default(),
    }
}

/// A deliberately small platform for unit tests and the real `lm-engine`
/// runs on commodity hardware: 8-core CPU, 8 GiB "device" with a modest
/// link, so offloading effects appear at tiny model scales.
pub fn test_platform() -> Platform {
    Platform {
        name: "test (8-core host + toy device)".to_string(),
        cpu: CpuSpec {
            name: "test CPU".to_string(),
            sockets: 1,
            cores_per_socket: 8,
            threads_per_core: 2,
            freq_hz: ghz(3.0),
            flops: tflops(0.5),
            mem_bw: gb_per_s(50.0),
            mem_capacity: gib(32.0),
            llc_bytes: 16 * (1 << 20),
            llc_ways: 16,
            line_size: 64,
        },
        gpu: GpuSpec {
            name: "toy device".to_string(),
            freq_hz: ghz(1.0),
            flops: tflops(10.0),
            elementwise_flops: tflops(1.0),
            mem_bw: gb_per_s(400.0),
            mem_capacity: gib(8.0),
        },
        num_gpus: 1,
        link: LinkSpec {
            name: "toy link".to_string(),
            h2d_bw: gb_per_s(8.0),
            d2h_bw: gb_per_s(8.0),
            latency: 5e-6,
        },
        gpu_link: None,
        eff: Efficiency::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::GIB;

    #[test]
    fn table4_single_gpu_matches_paper() {
        let p = single_gpu_a100();
        assert_eq!(p.cpu.total_cores(), 56);
        assert_eq!(p.cpu.mem_capacity, 240 * GIB);
        assert_eq!(p.gpu.mem_capacity, 40 * GIB);
        // 64 GB/s total bidirectional PCIe 4.0 x16.
        assert_eq!(p.link.h2d_bw + p.link.d2h_bw, 64e9);
        assert_eq!(p.num_gpus, 1);
    }

    #[test]
    fn table4_multi_gpu_matches_paper() {
        let p = multi_gpu_v100(4);
        assert_eq!(p.cpu.total_cores(), 44);
        assert_eq!(p.cpu.mem_capacity, 280 * GIB);
        assert_eq!(p.gpu.mem_capacity, 16 * GIB);
        assert_eq!(p.num_gpus, 4);
        let l = p.gpu_link.as_ref().unwrap();
        assert_eq!(l.h2d_bw + l.d2h_bw, 300e9);
    }

    #[test]
    #[should_panic(expected = "1-4 V100s")]
    fn multi_gpu_bounds_checked() {
        multi_gpu_v100(5);
    }
}
