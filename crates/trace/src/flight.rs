//! The flight recorder (DESIGN.md §13): a bounded ring buffer of recent
//! spans, fault events, and scheduler decisions that survives a crash of
//! the *run* (not the process — everything is in memory) as a post-mortem
//! JSON dump, so a chaos-invariant violation, SLO breach, or
//! `EngineError` is diagnosable from the black box instead of a rerun.
//!
//! Shape follows the crate's null-object convention ([`crate::Tracer`],
//! `lm-fault`'s injector): a disabled recorder is a `None` check per
//! probe and clones are cheap handle copies sharing one ring. The ring
//! keeps the newest `capacity` events and counts what it had to drop;
//! [`FlightRecorder::trigger`] freezes the first failure (first trigger
//! wins — later failures are usually the first one's wreckage) together
//! with a metrics snapshot into a serialisable [`FlightDump`].
//!
//! Timestamps are supplied by the caller (the serve scheduler's virtual
//! clock or [`crate::TraceClock`]), so dumps are deterministic under the
//! seeded chaos harness.

use crate::metrics::MetricsSnapshot;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::Arc;

/// One black-box entry: something the system just did or decided.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone sequence number over the recorder's lifetime (survives
    /// ring eviction, so gaps reveal dropped history).
    pub seq: u64,
    /// Microseconds on the caller's clock (virtual or wall).
    pub t_us: u64,
    /// Event family: `"span"`, `"fault"`, `"sched"`, `"slo"`, `"engine"`.
    pub category: String,
    /// Human-readable description with the values inline.
    pub label: String,
}

/// The frozen post-mortem: why, when, what the black box held, and the
/// metrics at the moment of failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightDump {
    /// What tripped the recorder (invariant name, SLO breach, error).
    pub reason: String,
    /// Trigger time in caller-clock microseconds.
    pub t_us: u64,
    /// Ring capacity the recorder ran with.
    pub capacity: usize,
    /// Total events ever recorded (`events.len() + dropped`).
    pub recorded: u64,
    /// Events evicted by the ring before the trigger.
    pub dropped: u64,
    /// The ring's contents, oldest first.
    pub events: Vec<FlightEvent>,
    /// Metrics registry snapshot at trigger time.
    pub metrics: MetricsSnapshot,
}

#[derive(Default)]
struct State {
    events: VecDeque<FlightEvent>,
    recorded: u64,
    dropped: u64,
    dump: Option<FlightDump>,
}

struct Inner {
    capacity: usize,
    state: Mutex<State>,
}

/// Cheaply clonable handle to one shared bounded event ring; disabled
/// (the default) every probe is a single `None` check.
#[derive(Clone, Default)]
pub struct FlightRecorder {
    inner: Option<Arc<Inner>>,
}

impl FlightRecorder {
    /// A recorder that records nothing and never triggers.
    pub fn disabled() -> Self {
        FlightRecorder { inner: None }
    }

    /// An armed recorder keeping the newest `capacity` events. Capacity
    /// 0 is accepted but useless — every event drops on the floor and
    /// dumps carry no history; `lm-analyze` flags it (LMA271).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            inner: Some(Arc::new(Inner {
                capacity,
                state: Mutex::new(State::default()),
            })),
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Ring capacity; `None` when disabled.
    pub fn capacity(&self) -> Option<usize> {
        self.inner.as_ref().map(|i| i.capacity)
    }

    /// Append one event, evicting the oldest past capacity. No-op once
    /// a dump is frozen — the black box stops at the first failure.
    pub fn record(&self, t_us: u64, category: &str, label: impl Into<String>) {
        let Some(inner) = &self.inner else { return };
        let mut st = inner.state.lock();
        if st.dump.is_some() {
            return;
        }
        let seq = st.recorded;
        st.recorded += 1;
        if inner.capacity == 0 {
            st.dropped += 1;
            return;
        }
        if st.events.len() == inner.capacity {
            st.events.pop_front();
            st.dropped += 1;
        }
        st.events.push_back(FlightEvent {
            seq,
            t_us,
            category: category.to_string(),
            label: label.into(),
        });
    }

    /// Freeze a post-mortem dump. The first trigger wins; returns
    /// whether *this* call captured it (`false` when disabled or when a
    /// dump already exists).
    pub fn trigger(&self, reason: &str, t_us: u64, metrics: MetricsSnapshot) -> bool {
        let Some(inner) = &self.inner else { return false };
        let mut st = inner.state.lock();
        if st.dump.is_some() {
            return false;
        }
        let dump = FlightDump {
            reason: reason.to_string(),
            t_us,
            capacity: inner.capacity,
            recorded: st.recorded,
            dropped: st.dropped,
            events: st.events.iter().cloned().collect(),
            metrics,
        };
        st.dump = Some(dump);
        true
    }

    /// The frozen dump, if any trigger fired.
    pub fn dump(&self) -> Option<FlightDump> {
        self.inner.as_ref().and_then(|i| i.state.lock().dump.clone())
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.state.lock().events.len())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted (or refused at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().dropped)
    }

    /// Total events ever offered to the ring.
    pub fn recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.state.lock().recorded)
    }
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "FlightRecorder(disabled)"),
            Some(i) => {
                let st = i.state.lock();
                write!(
                    f,
                    "FlightRecorder(cap={}, held={}, dropped={}, dumped={})",
                    i.capacity,
                    st.events.len(),
                    st.dropped,
                    st.dump.is_some()
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let fr = FlightRecorder::disabled();
        fr.record(1, "sched", "admit 0");
        assert!(!fr.is_enabled());
        assert_eq!(fr.len(), 0);
        assert!(!fr.trigger("boom", 2, MetricsSnapshot::default()));
        assert!(fr.dump().is_none());
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let fr = FlightRecorder::new(3);
        for i in 0..5u64 {
            fr.record(i, "sched", format!("e{i}"));
        }
        assert_eq!(fr.len(), 3);
        assert_eq!(fr.dropped(), 2);
        assert_eq!(fr.recorded(), 5);
        assert!(fr.trigger("overflow test", 9, MetricsSnapshot::default()));
        let d = fr.dump().unwrap();
        assert_eq!(d.events.len(), 3);
        assert_eq!(d.events[0].label, "e2");
        assert_eq!(d.events[0].seq, 2, "seq survives eviction");
        assert_eq!(d.events[2].label, "e4");
        assert_eq!(d.recorded, 5);
        assert_eq!(d.dropped, 2);
    }

    #[test]
    fn first_trigger_wins_and_freezes_the_ring() {
        let fr = FlightRecorder::new(8);
        fr.record(1, "fault", "slot_crash slot=2");
        assert!(fr.trigger("invariant: leaked lease", 5, MetricsSnapshot::default()));
        fr.record(6, "sched", "after the crash");
        assert!(!fr.trigger("second failure", 7, MetricsSnapshot::default()));
        let d = fr.dump().unwrap();
        assert_eq!(d.reason, "invariant: leaked lease");
        assert_eq!(d.t_us, 5);
        assert_eq!(d.events.len(), 1, "post-trigger records are refused");
    }

    #[test]
    fn capacity_zero_is_armed_but_holds_nothing() {
        let fr = FlightRecorder::new(0);
        fr.record(1, "sched", "lost");
        assert!(fr.is_enabled());
        assert_eq!(fr.capacity(), Some(0));
        assert_eq!(fr.len(), 0);
        assert_eq!(fr.dropped(), 1);
        assert!(fr.trigger("boom", 2, MetricsSnapshot::default()));
        assert!(fr.dump().unwrap().events.is_empty());
    }

    #[test]
    fn clones_share_the_ring_and_dump_serde_round_trips() {
        let fr = FlightRecorder::new(4);
        let tee = fr.clone();
        tee.record(3, "fault", "transfer_stall");
        assert_eq!(fr.len(), 1);
        assert!(fr.trigger("engine error: Timeout", 4, MetricsSnapshot::default()));
        let d = tee.dump().unwrap();
        let v = serde::Serialize::serialize(&d);
        let back: FlightDump = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, d);
    }
}
