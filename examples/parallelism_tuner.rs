//! Parallelism tuner: build the attention compute dependency graph
//! (Figure 6), run Algorithm 3 to pick inter-/intra-op parallelism and
//! the load/store thread grants, then *execute* the graph for real on
//! this machine's cores with both the tuned and the naive settings.
//!
//! Run with: `cargo run --release --example parallelism_tuner`

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{derive_plan, transfer_tasks};
use lm_parallelism::{analyze, attention_graph, burn, bundle_small_ops, Executor};
use lm_sim::Policy;
use std::time::Instant;

fn main() {
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let workload = Workload::parallelism_study();
    let policy = Policy::flexgen_default();

    // --- Algorithm 3 on the paper's platform model -----------------------
    let out = derive_plan(&platform, &model, &workload, &policy);
    println!("=== Algorithm 3 plan (modelled dual Xeon 6330) ===");
    println!(
        "inter-op: {} total = {} compute (Kahn max concurrency) + 5 transfers",
        out.plan.inter_op_total, out.plan.inter_op_compute
    );
    println!("intra-op: {} threads per compute operator", out.plan.intra_op_compute);
    let transfers = transfer_tasks(&platform, &model, &workload, &policy);
    for (t, &grant) in transfers.iter().zip(&out.plan.transfer_threads) {
        println!("  {:<18} {:>10} bytes -> {grant} threads", t.name, t.bytes);
    }
    println!(
        "estimated step: {:.1} ms tuned vs {:.1} ms default ({:.0}% faster)",
        out.plan.est_step_time * 1e3,
        out.default_step_time * 1e3,
        (1.0 - out.plan.est_step_time / out.default_step_time) * 100.0
    );

    // --- Real execution on this machine ---------------------------------
    // A scaled-down graph with measurable per-op work; each op burns
    // FLOPs proportional to its modelled cost.
    let graph = attention_graph(64, 128, 512, 7);
    let analysis = analyze(&graph).expect("acyclic");
    println!("\n=== Real execution ({} ops, width {}) ===", graph.len(), analysis.max_concurrency());

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let scale = 2e-3; // burn 0.2% of the modelled FLOPs so the demo is quick
    let run = |inter: usize, intra: usize| {
        let t0 = Instant::now();
        Executor::new(inter, intra).run(&graph, |u, threads| {
            burn(graph.nodes[u].flops * scale, threads);
        });
        t0.elapsed()
    };

    let naive = run(1, 1);
    let tuned_inter = analysis.max_concurrency().min(cores);
    let tuned = run(tuned_inter, (cores / tuned_inter).max(1));
    println!("serial (1x1):        {naive:?}");
    println!("tuned  ({tuned_inter}x{}): {tuned:?}", (cores / tuned_inter).max(1));
    println!(
        "real speedup: {:.2}x on {cores} cores",
        naive.as_secs_f64() / tuned.as_secs_f64()
    );

    // --- Operator bundling ------------------------------------------------
    let bundled = bundle_small_ops(&graph, 1e7);
    println!(
        "\nbundling small ops: {} -> {} operators (launch overhead amortised), width preserved: {}",
        graph.len(),
        bundled.graph.len(),
        analyze(&bundled.graph).unwrap().max_concurrency()
    );
}
