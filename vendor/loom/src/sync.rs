//! Instrumented synchronization primitives.
//!
//! Outside a `loom::model` run these degrade to their `std` behaviour, so
//! code written against them stays usable in ordinary tests. Inside a
//! model run every operation is a scheduling decision point and blocking
//! is mediated by the serializing scheduler (real OS blocking never
//! happens on the model's hot path).

use crate::sched::{ctx, instrument};

pub use std::sync::Arc;

pub mod atomic {
    //! Seq-cst instrumented atomics (the ordering argument is accepted
    //! for API compatibility and intentionally ignored).

    use super::instrument;
    use std::sync::atomic::Ordering as StdOrdering;

    pub use std::sync::atomic::Ordering;

    macro_rules! atomic_int {
        ($name:ident, $raw:ty, $std:ty) => {
            /// Instrumented atomic integer.
            #[derive(Debug, Default)]
            pub struct $name {
                v: $std,
            }

            impl $name {
                pub fn new(v: $raw) -> Self {
                    Self { v: <$std>::new(v) }
                }

                pub fn load(&self, _order: Ordering) -> $raw {
                    instrument();
                    self.v.load(StdOrdering::SeqCst)
                }

                pub fn store(&self, val: $raw, _order: Ordering) {
                    instrument();
                    self.v.store(val, StdOrdering::SeqCst)
                }

                pub fn swap(&self, val: $raw, _order: Ordering) -> $raw {
                    instrument();
                    self.v.swap(val, StdOrdering::SeqCst)
                }

                pub fn fetch_add(&self, val: $raw, _order: Ordering) -> $raw {
                    instrument();
                    self.v.fetch_add(val, StdOrdering::SeqCst)
                }

                pub fn fetch_sub(&self, val: $raw, _order: Ordering) -> $raw {
                    instrument();
                    self.v.fetch_sub(val, StdOrdering::SeqCst)
                }

                pub fn compare_exchange(
                    &self,
                    current: $raw,
                    new: $raw,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$raw, $raw> {
                    instrument();
                    self.v
                        .compare_exchange(current, new, StdOrdering::SeqCst, StdOrdering::SeqCst)
                }

                /// Non-instrumented read for assertions after all threads
                /// joined (loom's `unsync_load` analogue).
                pub fn unsync_load(&self) -> $raw {
                    self.v.load(StdOrdering::SeqCst)
                }
            }
        };
    }

    atomic_int!(AtomicUsize, usize, std::sync::atomic::AtomicUsize);
    atomic_int!(AtomicU64, u64, std::sync::atomic::AtomicU64);
    atomic_int!(AtomicU32, u32, std::sync::atomic::AtomicU32);

    /// Instrumented atomic boolean.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        v: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        pub fn new(v: bool) -> Self {
            Self {
                v: std::sync::atomic::AtomicBool::new(v),
            }
        }

        pub fn load(&self, _order: Ordering) -> bool {
            instrument();
            self.v.load(StdOrdering::SeqCst)
        }

        pub fn store(&self, val: bool, _order: Ordering) {
            instrument();
            self.v.store(val, StdOrdering::SeqCst)
        }

        pub fn swap(&self, val: bool, _order: Ordering) -> bool {
            instrument();
            self.v.swap(val, StdOrdering::SeqCst)
        }
    }
}

#[derive(Debug, Default)]
struct MutexCtl {
    /// Owning logical thread, if any.
    owner: Option<usize>,
    /// Logical threads parked on this mutex.
    waiters: Vec<usize>,
}

/// A mutex whose contention is resolved by the model scheduler.
///
/// The API follows `parking_lot` (`lock()` returns the guard directly);
/// the real loom exposes the `std` poisoning API, but nothing in this
/// workspace relies on poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    data: std::sync::Mutex<T>,
    ctl: std::sync::Mutex<MutexCtl>,
}

pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            data: std::sync::Mutex::new(t),
            ctl: std::sync::Mutex::new(MutexCtl::default()),
        }
    }

    fn ctl(&self) -> std::sync::MutexGuard<'_, MutexCtl> {
        match self.ctl.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn data_guard(&self) -> std::sync::MutexGuard<'_, T> {
        match self.data.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((sched, my)) = ctx() {
            sched.yield_point(my);
            loop {
                {
                    let mut ctl = self.ctl();
                    if ctl.owner.is_none() {
                        ctl.owner = Some(my);
                        break;
                    }
                    ctl.waiters.push(my);
                }
                sched.block_current(my);
            }
        }
        MutexGuard {
            lock: self,
            inner: Some(self.data_guard()),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the storage lock before publishing availability.
        self.inner = None;
        if let Some((sched, _my)) = ctx() {
            let waiters = {
                let mut ctl = self.lock.ctl();
                ctl.owner = None;
                std::mem::take(&mut ctl.waiters)
            };
            for w in waiters {
                sched.make_runnable(w);
            }
        }
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard live")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard live")
    }
}

/// A condition variable mediated by the model scheduler. Signals are
/// edge-triggered like the real thing: a `notify_all` with no waiters is
/// lost, so lost-wakeup protocol bugs surface as model deadlocks.
#[derive(Debug, Default)]
pub struct Condvar {
    waiters: std::sync::Mutex<Vec<usize>>,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    fn waiters(&self) -> std::sync::MutexGuard<'_, Vec<usize>> {
        match self.waiters.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Atomically release `guard`, wait for a notification, and
    /// re-acquire the mutex.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let mutex = guard.lock;
        if let Some((sched, my)) = ctx() {
            self.waiters().push(my);
            drop(guard);
            sched.block_current(my);
            mutex.lock()
        } else {
            // Outside a model there is no scheduler to wake us; treat the
            // wait as spurious (callers loop on their predicate).
            drop(guard);
            mutex.lock()
        }
    }

    pub fn notify_all(&self) {
        if let Some((sched, my)) = ctx() {
            let ws = std::mem::take(&mut *self.waiters());
            for w in ws {
                sched.make_runnable(w);
            }
            sched.yield_point(my);
        }
    }

    pub fn notify_one(&self) {
        if let Some((sched, my)) = ctx() {
            let w = {
                let mut ws = self.waiters();
                if ws.is_empty() {
                    None
                } else {
                    Some(ws.remove(0))
                }
            };
            if let Some(w) = w {
                sched.make_runnable(w);
            }
            sched.yield_point(my);
        }
    }
}
