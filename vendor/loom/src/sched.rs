//! The serializing scheduler and its depth-first exploration driver.
//!
//! One logical thread is *active* at a time. Every instrumented operation
//! calls into [`Scheduler::yield_point`] (or one of the blocking variants),
//! which consults the recorded decision path: prefixes are replayed, the
//! first fresh decision point takes its lowest-numbered option, and after
//! the execution finishes the path is advanced like an odometer until the
//! whole (preemption-bounded) tree has been visited.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};

/// Payload used to unwind parked threads when an execution is abandoned
/// (deadlock detected or a user assertion failed on another thread).
pub(crate) const ABORT_PAYLOAD: &str = "__loom_abort__";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Run {
    Runnable,
    Blocked,
    Finished,
}

/// One recorded scheduling decision: which of `total` options was taken.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Branch {
    chosen: usize,
    total: usize,
}

#[derive(Debug)]
struct Inner {
    states: Vec<Run>,
    /// Joiners waiting for thread `i` to finish.
    join_waiters: Vec<Vec<usize>>,
    /// Currently active logical thread (`usize::MAX` = none).
    active: usize,
    /// Involuntary context switches still allowed in this execution.
    preemptions_left: usize,
    path: Vec<Branch>,
    /// Next decision index (replay cursor into `path`).
    depth: usize,
    aborting: bool,
    failure: Option<String>,
    /// Threads not yet `Finished`.
    live: usize,
}

pub(crate) struct Scheduler {
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl Scheduler {
    fn new(path: Vec<Branch>, preemption_bound: usize) -> Self {
        Scheduler {
            inner: Mutex::new(Inner {
                states: Vec::new(),
                join_waiters: Vec::new(),
                active: usize::MAX,
                preemptions_left: preemption_bound,
                path,
                depth: 0,
                aborting: false,
                failure: None,
                live: 0,
            }),
            cv: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub(crate) fn register_thread(&self) -> usize {
        let mut g = self.lock();
        g.states.push(Run::Runnable);
        g.join_waiters.push(Vec::new());
        g.live += 1;
        g.states.len() - 1
    }

    /// Resolve one scheduling decision. `options` must be non-empty and
    /// deterministically ordered; returns the chosen element.
    fn decide(&self, g: &mut Inner, options: &[usize]) -> usize {
        debug_assert!(!options.is_empty());
        if options.len() == 1 {
            return options[0];
        }
        let chosen = if g.depth < g.path.len() {
            // Replay. Clamp defensively: the tree is deterministic, so a
            // mismatch would indicate an instrumentation bug.
            debug_assert_eq!(g.path[g.depth].total, options.len());
            g.path[g.depth].chosen.min(options.len() - 1)
        } else {
            g.path.push(Branch {
                chosen: 0,
                total: options.len(),
            });
            0
        };
        g.depth += 1;
        options[chosen]
    }

    /// Pick and publish the next active thread, given that `my` has just
    /// yielded (and may or may not still be runnable).
    fn schedule(&self, g: &mut Inner, my: usize) {
        if g.aborting {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = (0..g.states.len())
            .filter(|&t| g.states[t] == Run::Runnable)
            .collect();
        if runnable.is_empty() {
            if g.live > 0 {
                let blocked: Vec<usize> = (0..g.states.len())
                    .filter(|&t| g.states[t] == Run::Blocked)
                    .collect();
                g.failure = Some(format!(
                    "deadlock: all live threads blocked (threads {blocked:?})"
                ));
                g.aborting = true;
            }
            g.active = usize::MAX;
            self.cv.notify_all();
            return;
        }
        let i_am_runnable = my < g.states.len() && g.states[my] == Run::Runnable;
        let next = if i_am_runnable {
            if g.preemptions_left == 0 {
                my
            } else {
                // Option 0: keep running; options 1..: preempt.
                let mut options = Vec::with_capacity(runnable.len());
                options.push(my);
                options.extend(runnable.iter().copied().filter(|&t| t != my));
                let chosen = self.decide(g, &options);
                if chosen != my {
                    g.preemptions_left -= 1;
                }
                chosen
            }
        } else {
            // Voluntary switch (blocked or finished): costs no preemption.
            self.decide(g, &runnable)
        };
        g.active = next;
        self.cv.notify_all();
    }

    fn park_until_active(&self, mut g: std::sync::MutexGuard<'_, Inner>, my: usize) {
        loop {
            if g.aborting {
                drop(g);
                std::panic::panic_any(ABORT_PAYLOAD);
            }
            if g.active == my {
                return;
            }
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// A preemption opportunity: the calling thread stays runnable but the
    /// scheduler may switch to another thread here.
    pub(crate) fn yield_point(&self, my: usize) {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            std::panic::panic_any(ABORT_PAYLOAD);
        }
        self.schedule(&mut g, my);
        self.park_until_active(g, my);
    }

    /// Block the calling thread until another thread marks it runnable
    /// (via [`Scheduler::make_runnable`]) and the scheduler picks it.
    pub(crate) fn block_current(&self, my: usize) {
        let mut g = self.lock();
        if g.aborting {
            drop(g);
            std::panic::panic_any(ABORT_PAYLOAD);
        }
        g.states[my] = Run::Blocked;
        self.schedule(&mut g, my);
        self.park_until_active(g, my);
    }

    /// Mark `tid` runnable again (wake from a mutex/condvar wait). The
    /// caller keeps running; the woken thread competes at the next
    /// scheduling point.
    pub(crate) fn make_runnable(&self, tid: usize) {
        let mut g = self.lock();
        if g.states[tid] == Run::Blocked {
            g.states[tid] = Run::Runnable;
        }
    }

    /// Park a freshly spawned thread until the scheduler first picks it.
    pub(crate) fn wait_until_scheduled(&self, my: usize) {
        let g = self.lock();
        self.park_until_active(g, my);
    }

    /// Block until `child` finishes (no-op if it already has).
    pub(crate) fn join_wait(&self, my: usize, child: usize) {
        loop {
            let mut g = self.lock();
            if g.aborting {
                drop(g);
                std::panic::panic_any(ABORT_PAYLOAD);
            }
            if g.states[child] == Run::Finished {
                return;
            }
            g.join_waiters[child].push(my);
            g.states[my] = Run::Blocked;
            self.schedule(&mut g, my);
            self.park_until_active(g, my);
        }
    }

    /// Record a user panic so the exploration driver can report it.
    pub(crate) fn record_failure(&self, msg: String) {
        let mut g = self.lock();
        if g.failure.is_none() {
            g.failure = Some(msg);
        }
        g.aborting = true;
        self.cv.notify_all();
    }

    /// Mark the calling thread finished and hand control onwards.
    pub(crate) fn finish_thread(&self, my: usize) {
        let mut g = self.lock();
        g.states[my] = Run::Finished;
        g.live -= 1;
        let waiters = std::mem::take(&mut g.join_waiters[my]);
        for w in waiters {
            if g.states[w] == Run::Blocked {
                g.states[w] = Run::Runnable;
            }
        }
        self.schedule(&mut g, my);
        self.cv.notify_all();
    }

    /// Wait (from outside the model) for every logical thread to finish.
    fn wait_all_done(&self) {
        let mut g = self.lock();
        while g.live > 0 {
            g = match self.cv.wait(g) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<Scheduler>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

pub(crate) fn set_ctx(sched: Arc<Scheduler>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((sched, tid)));
}

fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

/// The scheduler context of the calling thread, if it is a model thread.
pub(crate) fn ctx() -> Option<(Arc<Scheduler>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Instrument one operation of the calling thread: outside a model this is
/// free; inside it is a scheduling decision point.
pub(crate) fn instrument() {
    if let Some((sched, my)) = ctx() {
        sched.yield_point(my);
    }
}

pub(crate) fn payload_is_abort(p: &(dyn std::any::Any + Send)) -> bool {
    p.downcast_ref::<&str>() == Some(&ABORT_PAYLOAD)
}

pub(crate) fn payload_to_string(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Advance the decision path odometer-style; `false` when exhausted.
fn advance(path: &mut Vec<Branch>) -> bool {
    while let Some(last) = path.last_mut() {
        if last.chosen + 1 < last.total {
            last.chosen += 1;
            return true;
        }
        path.pop();
    }
    false
}

/// Tunables for one programmatic exploration ([`explore`]).
///
/// `Default` uses the same fixed bounds as the env-driven [`model`]
/// defaults (preemption bound 2, 20 000 executions) without consulting
/// the environment, so callers embedding the checker get deterministic
/// behavior regardless of ambient `LOOM_*` variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Options {
    /// Involuntary context switches allowed per execution (CHESS bound).
    pub preemption_bound: usize,
    /// Cap on explored executions before the search is truncated.
    pub max_iterations: usize,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            preemption_bound: 2,
            max_iterations: 20_000,
        }
    }
}

/// Outcome of a bounded exploration ([`explore`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Exploration {
    /// Executions actually run. The decision tree and its DFS order are
    /// deterministic, so for a fixed closure and [`Options`] this count
    /// is reproducible run-over-run.
    pub executions: usize,
    /// First failure observed (assertion message, user panic payload, or
    /// a deadlock report), if any. The search stops at the first failing
    /// execution.
    pub failure: Option<String>,
    /// `true` when the search hit `max_iterations` before exhausting the
    /// bounded tree — coverage is partial and `executions` undercounts.
    pub truncated: bool,
}

impl Exploration {
    /// `true` when the bounded tree was fully explored without failure.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && !self.truncated
    }
}

/// Explore the closure under every schedule the bounded search reaches,
/// returning the outcome instead of panicking.
///
/// This is the programmatic twin of [`model`]: verification harnesses
/// use it to count interleavings and detect seeded failures without
/// `catch_unwind` at the call site.
pub fn explore<F>(opts: Options, f: F) -> Exploration
where
    F: Fn() + Send + Sync + 'static,
{
    let f = Arc::new(f);
    let mut path: Vec<Branch> = Vec::new();
    let mut iterations = 0usize;
    loop {
        iterations += 1;
        let sched = Arc::new(Scheduler::new(
            std::mem::take(&mut path),
            opts.preemption_bound,
        ));
        let root_tid = sched.register_thread();
        {
            let mut g = sched.lock();
            g.active = root_tid;
        }
        let root = {
            let sched = Arc::clone(&sched);
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                set_ctx(Arc::clone(&sched), root_tid);
                let result = catch_unwind(AssertUnwindSafe(|| f()));
                if let Err(p) = result {
                    if !payload_is_abort(p.as_ref()) {
                        sched.record_failure(payload_to_string(p.as_ref()));
                    }
                }
                sched.finish_thread(root_tid);
                clear_ctx();
            })
        };
        sched.wait_all_done();
        let _ = root.join();
        let mut g = sched.lock();
        if let Some(msg) = g.failure.take() {
            let decisions = g.depth;
            drop(g);
            return Exploration {
                executions: iterations,
                failure: Some(format!(
                    "model check failed on execution {iterations} \
                     (after {decisions} scheduling decisions): {msg}"
                )),
                truncated: false,
            };
        }
        path = std::mem::take(&mut g.path);
        drop(g);
        if !advance(&mut path) {
            return Exploration {
                executions: iterations,
                failure: None,
                truncated: false,
            };
        }
        if iterations >= opts.max_iterations {
            return Exploration {
                executions: iterations,
                failure: None,
                truncated: true,
            };
        }
    }
}

/// Explore the closure under every schedule the bounded search reaches.
///
/// Panics (with the first failing thread's message) if any execution
/// panics, deadlocks, or trips an assertion. Bounds come from the
/// `LOOM_PREEMPTION_BOUND` / `LOOM_MAX_ITERATIONS` environment knobs.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let opts = Options {
        preemption_bound: env_usize("LOOM_PREEMPTION_BOUND", 2),
        max_iterations: env_usize("LOOM_MAX_ITERATIONS", 20_000),
    };
    let outcome = explore(opts, f);
    if let Some(msg) = outcome.failure {
        panic!("loom: {msg}");
    }
    if outcome.truncated {
        eprintln!(
            "loom: stopping after {} executions \
             (LOOM_MAX_ITERATIONS cap); coverage is partial",
            outcome.executions
        );
    }
    if std::env::var("LOOM_LOG").is_ok() {
        eprintln!("loom: explored {} executions", outcome.executions);
    }
}
