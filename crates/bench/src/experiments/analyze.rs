//! `repro analyze` — run the `lm-analyze` static linter over the shipped
//! deployment presets: for each (platform, model, workload, policy)
//! combination the harness derives the real parallelism plan with the
//! controller, then lints the graph, the plan, the policy placements, the
//! bundling decision and a sampled cost-model probe. The default serving
//! plan rides along under the `LMA25x` family, its page geometry under
//! `LMA28x`, the default SLO policy under `LMA26x`, the verification
//! instrument itself under `LMA29x`, and the default async session
//! shape under `LMA30x`. Shipped presets must produce zero
//! `Error` diagnostics; warnings are reported but allowed.

use lm_analyze::{analyze_deployment, lint_serve, Deployment, Diagnostic};
use lm_hardware::presets;
use lm_models::{presets as models, ModelConfig, Workload};
use lm_offload::{transfer_tasks, try_derive_plan, DEFAULT_HEAD_GROUPS};
use lm_parallelism::{attention_graph, SearchConfig};
use lm_sim::Policy;
use serde::{Deserialize, Serialize};

/// FLOP threshold for the bundling lint — the same order of magnitude the
/// runtime uses to decide which operators are bundling candidates.
pub const BUNDLE_MIN_FLOPS: f64 = 1e7;

/// Analysis outcome for one shipped preset.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeRow {
    pub preset: String,
    /// Derived plan shape, for context next to the findings.
    pub inter_op_total: u32,
    pub intra_op_compute: u32,
    pub errors: usize,
    pub warnings: usize,
    pub diagnostics: Vec<Diagnostic>,
}

fn preset_row(
    name: &str,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
) -> AnalyzeRow {
    let platform = presets::single_gpu_a100();
    let graph = attention_graph(
        workload.block_size(),
        workload.prompt_len + workload.gen_len / 2,
        model.hidden,
        DEFAULT_HEAD_GROUPS,
    );
    let cfg = SearchConfig::for_platform(&platform);
    let transfers = transfer_tasks(&platform, model, workload, policy);
    let out = try_derive_plan(&platform, model, workload, policy)
        .unwrap_or_else(|e| panic!("preset '{name}' is infeasible: {e}"));
    let report = analyze_deployment(&Deployment {
        platform: &platform,
        model,
        workload,
        policy,
        graph: &graph,
        cfg: &cfg,
        plan: &out.plan,
        transfers: &transfers,
        bundle_min_flops: BUNDLE_MIN_FLOPS,
    });
    AnalyzeRow {
        preset: name.to_string(),
        inter_op_total: out.plan.inter_op_total,
        intra_op_compute: out.plan.intra_op_compute,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint the default serving plan with the `LMA25x` family. The plan
/// shape reuses the row columns: `inter_op_total` carries the block
/// graph's Kahn width, `intra_op_compute` the slot count.
fn serve_plan_row() -> AnalyzeRow {
    use lm_serve::{plan_admission, AnalyticBackend, ServeConfig, ServeError};
    let backend = AnalyticBackend::opt_30b();
    let (width, slots, report) = match plan_admission(&backend, &ServeConfig::default()) {
        Ok(plan) => (
            plan.kahn_width as u32,
            plan.slots as u32,
            lint_serve(&plan.probe()),
        ),
        // An infeasible default plan surfaces its LMA25x report as rows.
        Err(ServeError::Plan(report)) => (0, 0, report),
        Err(e) => panic!("default serve plan failed outside analysis: {e}"),
    };
    AnalyzeRow {
        preset: "opt-30b/serve/default-plan".to_string(),
        inter_op_total: width,
        intra_op_compute: slots,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint the default plan's page geometry with the `LMA28x` family: the
/// derived page size must tile the KV block exactly, the pool must hold
/// at least one page, and the quiescent probe must balance. The row
/// columns carry the paged shape: `inter_op_total` the pool capacity in
/// pages, `intra_op_compute` the pages one slot's context spans.
fn paging_lint_row() -> AnalyzeRow {
    use lm_analyze::lint_paging;
    use lm_serve::{plan_admission, AnalyticBackend, ServeConfig};
    let backend = AnalyticBackend::opt_30b();
    let plan = plan_admission(&backend, &ServeConfig::default())
        .unwrap_or_else(|e| panic!("default serve plan is infeasible: {e}"));
    let report = lint_paging(&plan.paging_probe());
    AnalyzeRow {
        preset: "opt-30b/serve/default-paging".to_string(),
        inter_op_total: plan.pages_total as u32,
        intra_op_compute: plan.pages_per_slot as u32,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint the default SLO configuration (the one `repro slo` enforces)
/// with the `LMA26x` family: the objective must clear the plan's
/// physical TTFT floor and at least one actuator must be armed.
fn slo_policy_row() -> AnalyzeRow {
    use lm_analyze::lint_slo;
    use lm_serve::{plan_admission, slo_probe, AnalyticBackend, ServeBackend, ServeConfig, SloPolicy};
    use std::sync::Arc;
    let backend = AnalyticBackend::opt_30b();
    let plan = plan_admission(&backend, &ServeConfig::default())
        .unwrap_or_else(|e| panic!("default serve plan is infeasible: {e}"));
    let floor = backend.prefill_seconds(plan.slot_context, plan.slots) + plan.est_step_seconds;
    let policy = SloPolicy::enforcing(floor * crate::experiments::slo::SLO_FLOOR_HEADROOM);
    let ladder: Arc<dyn lm_serve::DegradeLadder> =
        Arc::new(crate::experiments::slo::model_guided_ladder(&backend));
    let report = lint_slo(&slo_probe(&plan, &backend, &policy, Some(&ladder)));
    AnalyzeRow {
        preset: "opt-30b/serve/default-slo".to_string(),
        inter_op_total: plan.kahn_width as u32,
        intra_op_compute: plan.slots as u32,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint the verification instrument itself with the `LMA29x` family: a
/// real quick planner-space sweep plus both protocol explorations (at
/// the cheap unit-suite preemption bound; `repro verify` runs the deep
/// lane) assembled into a probe that must clear the domain, witness and
/// transition-coverage lints. The row columns carry the verification
/// shape: `inter_op_total` the lattice configs explored,
/// `intra_op_compute` the declared protocol transitions exercised.
fn verify_lint_row() -> AnalyzeRow {
    use lm_analyze::lint_verify;
    use lm_verify::{
        build_probe, check_kvpool_protocol, check_scheduler_protocol, run_sweep, Mutation,
        SweepDepth,
    };
    let opts = || loom::Options {
        preemption_bound: 2,
        max_iterations: 50_000,
    };
    let sweep = run_sweep(SweepDepth::Quick, Mutation::None);
    let protocols = [check_kvpool_protocol(opts()), check_scheduler_protocol(opts())];
    let probe = build_probe(&sweep, &protocols);
    let report = lint_verify(&probe);
    AnalyzeRow {
        preset: "verify/lma29x/quick-sweep".to_string(),
        inter_op_total: probe.configs_explored as u32,
        intra_op_compute: probe.exercised_transitions.len() as u32,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint the default async session configuration (the one
/// `ServeSession::run_async` ships with) against the default plan with
/// the `LMA30x` family: a non-zero token channel, a sane wall→virtual
/// time scale, and — when an SLO is set — an objective above the
/// physical TTFT floor. The row columns carry the async shape:
/// `inter_op_total` the per-request channel capacity,
/// `intra_op_compute` the planned slots.
fn async_lint_row() -> AnalyzeRow {
    use lm_analyze::{lint_async, AsyncProbe};
    use lm_serve::{plan_admission, AnalyticBackend, AsyncConfig, ServeBackend, ServeConfig};
    let backend = AnalyticBackend::opt_30b();
    let plan = plan_admission(&backend, &ServeConfig::default())
        .unwrap_or_else(|e| panic!("default serve plan is infeasible: {e}"));
    let floor = backend.prefill_seconds(plan.slot_context, plan.slots) + plan.est_step_seconds;
    let acfg = AsyncConfig::default();
    let report = lint_async(&AsyncProbe {
        channel_capacity: acfg.channel_capacity as u64,
        time_scale: acfg.time_scale,
        ttft_p99_slo_s: None,
        floor_ttft_s: floor,
    });
    AnalyzeRow {
        preset: "opt-30b/serve/default-async".to_string(),
        inter_op_total: acfg.channel_capacity as u32,
        intra_op_compute: plan.slots as u32,
        errors: report.error_count(),
        warnings: report.warning_count(),
        diagnostics: report.diagnostics,
    }
}

/// Lint every shipped preset configuration plus the default serve plan.
pub fn run() -> Vec<AnalyzeRow> {
    let flexgen = Policy::flexgen_default();
    vec![
        preset_row(
            "opt-30b/parallelism-study/flexgen-default",
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &flexgen,
        ),
        preset_row(
            "opt-30b/motivation/flexgen-default",
            &models::opt_30b(),
            &Workload::motivation(),
            &flexgen,
        ),
        preset_row(
            "opt-66b/parallelism-study/flexgen-default",
            &models::opt_66b(),
            &Workload::parallelism_study(),
            &flexgen,
        ),
        preset_row(
            "opt-13b/parallelism-study/flexgen-default",
            &models::opt_13b(),
            &Workload::parallelism_study(),
            &flexgen,
        ),
        serve_plan_row(),
        paging_lint_row(),
        slo_policy_row(),
        verify_lint_row(),
        async_lint_row(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_have_zero_error_diagnostics() {
        for row in run() {
            assert_eq!(
                row.errors, 0,
                "preset '{}' has {} error diagnostics: {:?}",
                row.preset, row.errors, row.diagnostics
            );
        }
    }

    #[test]
    fn rows_cover_the_preset_matrix() {
        let rows = run();
        assert_eq!(rows.len(), 9);
        for row in &rows {
            assert!(row.inter_op_total > 5, "{}", row.preset);
            assert!(row.intra_op_compute >= 1, "{}", row.preset);
        }
    }
}
