//! Reporting types: the rows of Table 3 and helpers to normalise
//! throughput across frameworks, serialisable for the `results/`
//! directory.

use crate::degrade::PolicySwitch;
use crate::engine::{Framework, FrameworkRun};
use lm_fault::{FaultInjector, FaultStats};
use lm_hardware::GIB;
use serde::{Deserialize, Serialize};

/// One cell of Table 3.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table3Row {
    pub framework: String,
    pub model: String,
    /// Token generation length ("len").
    pub gen_len: u64,
    /// Block size ("bsz" in the table — the zig-zag block for
    /// FlexGen/LM-Offload, the plain batch for ZeRO).
    pub bsz: u64,
    /// Percent of weights on GPU.
    pub wg: u32,
    /// Percent of KV cache on GPU.
    pub cg: u32,
    /// Percent of activations on GPU.
    pub hg: u32,
    /// Weight precision in bits.
    pub weight_bits: u32,
    /// KV precision in bits.
    pub kv_bits: u32,
    /// Total memory consumption in GiB ("mem").
    pub mem_gib: f64,
    /// Simulated throughput, tokens/s ("tput").
    pub tput: f64,
    /// Throughput normalised to LM-Offload's for the same cell.
    pub norm_tput: f64,
}

impl Table3Row {
    /// Build a row from a run (normalisation filled in later via
    /// [`normalise`]).
    pub fn from_run(run: &FrameworkRun, model_name: &str, gen_len: u64) -> Self {
        let p = run.deployment.policy;
        Table3Row {
            framework: run.framework.name().to_string(),
            model: model_name.to_string(),
            gen_len,
            bsz: run.deployment.workload.block_size(),
            wg: (p.wg * 100.0).round() as u32,
            cg: (p.cg * 100.0).round() as u32,
            hg: (p.hg * 100.0).round() as u32,
            weight_bits: p.weights_dtype.bits(),
            kv_bits: p.kv_dtype.bits(),
            mem_gib: run.mem.total_bytes as f64 / GIB as f64,
            tput: run.sim.throughput,
            norm_tput: 0.0,
        }
    }
}

/// Fill `norm_tput` for a group of rows covering the same (model, len)
/// cell: each row's throughput divided by LM-Offload's.
pub fn normalise(rows: &mut [Table3Row]) {
    let reference = rows
        .iter()
        .find(|r| r.framework == Framework::LmOffload.name())
        .map(|r| r.tput);
    if let Some(reference) = reference {
        if reference > 0.0 {
            for r in rows.iter_mut() {
                r.norm_tput = r.tput / reference;
            }
        }
    }
}

/// Fault-injection outcome of a run, serialisable into results JSON so
/// a fault seed can be replayed from the artifact alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultReport {
    /// The seed the fault plan was derived from (`None`: faults off).
    pub fault_seed: Option<u64>,
    /// Injected-fault and recovery counters.
    pub stats: FaultStats,
    /// Policy switches the degradation controller accepted, in order.
    pub switches: Vec<PolicySwitch>,
    /// Whether generation ultimately completed.
    pub completed: bool,
}

impl FaultReport {
    pub fn from_injector(
        fault: &FaultInjector,
        switches: Vec<PolicySwitch>,
        completed: bool,
    ) -> Self {
        FaultReport {
            fault_seed: fault.seed(),
            stats: fault.stats(),
            switches,
            completed,
        }
    }
}

/// Speedup summary over a set of normalised rows (the §5.2 headline
/// numbers: "up to X (Y on average)").
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Speedup {
    pub max: f64,
    pub mean: f64,
}

/// Compute LM-Offload's speedup over `framework` across matching cells.
pub fn speedup_over(rows: &[Table3Row], framework: Framework) -> Option<Speedup> {
    let speedups: Vec<f64> = rows
        .iter()
        .filter(|r| r.framework == framework.name() && r.norm_tput > 0.0)
        .map(|r| 1.0 / r.norm_tput)
        .collect();
    if speedups.is_empty() {
        return None;
    }
    Some(Speedup {
        max: speedups.iter().copied().fold(f64::MIN, f64::max),
        mean: speedups.iter().sum::<f64>() / speedups.len() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(framework: &str, tput: f64) -> Table3Row {
        Table3Row {
            framework: framework.to_string(),
            model: "OPT-30B".into(),
            gen_len: 8,
            bsz: 640,
            wg: 55,
            cg: 0,
            hg: 0,
            weight_bits: 16,
            kv_bits: 16,
            mem_gib: 214.0,
            tput,
            norm_tput: 0.0,
        }
    }

    #[test]
    fn normalisation_against_lm_offload() {
        let mut rows = vec![
            row("FlexGen", 50.0),
            row("ZeRO-Inference", 80.0),
            row("LM-Offload", 100.0),
        ];
        normalise(&mut rows);
        assert_eq!(rows[0].norm_tput, 0.5);
        assert_eq!(rows[1].norm_tput, 0.8);
        assert_eq!(rows[2].norm_tput, 1.0);
    }

    #[test]
    fn speedup_statistics() {
        let mut rows = vec![
            row("FlexGen", 50.0),
            row("LM-Offload", 100.0),
            row("FlexGen", 25.0),
            row("LM-Offload", 100.0),
        ];
        // Normalise per cell (here: treat pairs).
        normalise(&mut rows[0..2]);
        normalise(&mut rows[2..4]);
        let s = speedup_over(&rows, Framework::FlexGen).unwrap();
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn missing_framework_yields_none() {
        let rows = vec![row("LM-Offload", 10.0)];
        assert!(speedup_over(&rows, Framework::FlexGen).is_none());
    }

    #[test]
    fn rows_serialise() {
        let r = row("FlexGen", 1.0);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"framework\":\"FlexGen\""));
    }
}
