//! Fault-injection experiment — the robustness counterpart of the paper
//! tables: inject a deterministic, seeded fault plan into every layer of
//! the stack and record what the recovery machinery did about it.
//!
//! Three phases, one results JSON (`results/faults.json`):
//!
//! 1. **Checkpoint load under disk faults** — `Engine::from_checkpoint`
//!    with injected I/O errors and torn reads, absorbed by bounded retry
//!    with exponential backoff.
//! 2. **Generation under pool pressure** — pressure spikes sized so the
//!    double-buffered prefetch path cannot fit; the degradation
//!    controller re-scores the fallback ladder with the analytic model
//!    and generation completes serially at the chosen policy.
//! 3. **Simulated link degradation** — the discrete-event simulator with
//!    H2D/D2H windows running at a fraction of nominal bandwidth,
//!    against the clean run of the same policy.
//!
//! The fault seed is recorded in the JSON, so any run can be replayed
//! bit-for-bit from the artifact alone (`repro faults --fault-seed N`).

use lm_engine::{write_checkpoint, Engine, EngineOptions};
use lm_fault::{FaultConfig, FaultInjector, FaultProfile, RetryPolicy};
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{
    generate_with_degradation, quant_aware_provider, DegradationController, FaultReport,
    QuantCostParams, ThreadFactors,
};
use lm_sim::{simulate, simulate_faulted, Policy};
use serde::{Deserialize, Serialize};

/// Default fault seed when `--fault-seed` is not given.
pub const DEFAULT_FAULT_SEED: u64 = 42;

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckpointPhase {
    pub layers: u32,
    /// Whether every layer was ultimately read back.
    pub loaded: bool,
    pub disk_io_faults: u64,
    pub torn_reads: u64,
    pub retries: u64,
    pub retry_successes: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DegradationPhase {
    pub completed: bool,
    pub tokens_per_row: usize,
    pub policy_switches: usize,
    /// Weight precision of the policy generation finished under.
    pub final_weight_bits: u32,
    pub pool_pressure_spikes: u64,
    pub prefetch_drops: u64,
    pub degradations: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimPhase {
    pub clean_decode_s: f64,
    pub faulted_decode_s: f64,
    pub slowdown: f64,
    pub link_degrades: u64,
    pub transfer_stalls: u64,
    pub stall_ms_total: u64,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultsResult {
    pub fault_seed: u64,
    pub checkpoint: CheckpointPhase,
    pub degradation: DegradationPhase,
    pub sim: SimPhase,
    /// Full counters + accepted policy switches of the engine phases
    /// (checkpoint load and degraded generation share one injector).
    pub report: FaultReport,
}

/// Run all three phases under the given fault seed.
pub fn run(fault_seed: u64) -> FaultsResult {
    let cfg = models::tiny_test();

    // Size the device pool from the real per-layer footprint: two
    // layers plus slack, so the clean double-buffered prefetch fits.
    let probe = Engine::new(&cfg, 7, EngineOptions::default()).expect("probe engine");
    let layer_bytes = probe.layer_fetch_bytes(0);
    drop(probe);
    let device_capacity = 2 * layer_bytes + 512;

    // Moderate disk/link rates, plus a pool-pressure *episode*: a spike
    // as large as the whole pool, fired on every probe of a burst that
    // outlasts the retry budget. The first fetch therefore exhausts its
    // retries deterministically — independent of loader/consumer thread
    // timing — and hands control to the degradation controller; by the
    // time the fallback engine runs, the episode has subsided.
    let retry = RetryPolicy::default();
    let mut fc = FaultConfig::profile(fault_seed, FaultProfile::Moderate);
    fc.pool_pressure_rate = 1.0;
    fc.pool_pressure_bytes = device_capacity as u64;
    fc.pool_pressure_burst = retry.max_attempts as u64;
    let fault = FaultInjector::new(fc);

    let options = EngineOptions {
        device_capacity,
        fault: fault.clone(),
        retry,
        ..EngineOptions::default()
    };

    // Phase 1: checkpoint load under injected disk faults.
    let path = std::env::temp_dir().join(format!(
        "lmoffload-faults-{}-{fault_seed}.ckpt",
        std::process::id()
    ));
    write_checkpoint(&cfg, 7, &path).expect("write checkpoint");
    let loaded = Engine::from_checkpoint(&cfg, &path, options.clone()).is_ok();
    std::fs::remove_file(&path).ok();
    let after_load = fault.stats();
    let checkpoint = CheckpointPhase {
        layers: cfg.num_layers,
        loaded,
        disk_io_faults: after_load.disk_io_faults,
        torn_reads: after_load.torn_reads,
        retries: after_load.retries,
        retry_successes: after_load.retry_successes,
    };

    // Phase 2: generation under sustained pool pressure, recovered by
    // model-guided degradation. The analytic context is the paper's A100
    // platform; the running engine is the tiny test model.
    let controller = DegradationController::new(
        &hw::single_gpu_a100(),
        &models::opt_30b(),
        &Workload::motivation(),
        QuantCostParams::lm_offload_kernels(),
    );
    let prompts = vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6]];
    let outcome = generate_with_degradation(
        &controller,
        &cfg,
        11,
        &options,
        Policy::flexgen_default(),
        &prompts,
        8,
    );
    let stats = fault.stats();
    let (completed, tokens_per_row, policy_switches, final_weight_bits, switches) = match &outcome {
        Ok(d) => (
            true,
            d.generation.tokens[0].len(),
            d.switches.len(),
            d.policy.weights_dtype.bits(),
            d.switches.clone(),
        ),
        Err(e) => {
            eprintln!("warning: degraded generation failed: {e}");
            (false, 0, 0, 0, Vec::new())
        }
    };
    let degradation = DegradationPhase {
        completed,
        tokens_per_row,
        policy_switches,
        final_weight_bits,
        pool_pressure_spikes: stats.pool_pressure_spikes,
        prefetch_drops: stats.prefetch_drops,
        degradations: stats.degradations,
    };
    let report = FaultReport::from_injector(&fault, switches, completed);

    // Phase 3: the discrete-event simulator under link degradation, on
    // the paper-scale policy the other tables use.
    let platform = hw::single_gpu_a100();
    let model = models::opt_30b();
    let w = Workload::motivation();
    let policy = Policy::flexgen_default();
    let provider = quant_aware_provider(
        &platform,
        &model,
        &w,
        policy,
        QuantCostParams::lm_offload_kernels(),
        ThreadFactors::Controlled,
    );
    let clean = simulate(&provider, &w, model.num_layers);
    let sim_fault = FaultInjector::new(FaultConfig {
        link_degrade_rate: 0.4,
        link_degrade_factor: 0.25,
        stall_rate: 0.1,
        stall_ms: 5,
        ..FaultConfig::quiescent(fault_seed)
    });
    let faulted = simulate_faulted(&provider, &w, model.num_layers, &sim_fault);
    let sim_stats = sim_fault.stats();
    let sim = SimPhase {
        clean_decode_s: clean.decode_time,
        faulted_decode_s: faulted.decode_time,
        slowdown: faulted.decode_time / clean.decode_time,
        link_degrades: sim_stats.link_degrades,
        transfer_stalls: sim_stats.transfer_stalls,
        stall_ms_total: sim_stats.stall_ms_total,
    };

    FaultsResult {
        fault_seed,
        checkpoint,
        degradation,
        sim,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_seed_exercises_recovery_end_to_end() {
        let r = run(DEFAULT_FAULT_SEED);
        assert!(r.checkpoint.loaded, "checkpoint load must survive retries");
        assert!(r.degradation.completed, "degraded generation must finish");
        assert_eq!(r.degradation.tokens_per_row, 8);
        // The pressure episode covers exactly the retry budget, so the
        // first fetch must have retried, failed, and degraded.
        assert_eq!(r.degradation.pool_pressure_spikes, 4);
        assert!(r.report.stats.retries >= 3);
        assert!(r.degradation.degradations > 0);
        assert!(r.degradation.policy_switches > 0);
        assert!(r.report.stats.total_faults() > 0);
        assert_eq!(r.report.fault_seed, Some(DEFAULT_FAULT_SEED));
        assert!(r.report.completed);
        // Link degradation at 40% of windows must slow simulated decode.
        assert!(r.sim.link_degrades > 0);
        assert!(r.sim.slowdown > 1.0, "slowdown {}", r.sim.slowdown);
    }

    #[test]
    fn same_seed_reproduces_the_result() {
        // Fault decisions are stateless hashes of (seed, site, key,
        // attempt), and the only engine failure happens on the very
        // first fetch — before any loader/consumer concurrency exists —
        // so the full counter set is seed-stable.
        let a = run(DEFAULT_FAULT_SEED);
        let b = run(DEFAULT_FAULT_SEED);
        assert_eq!(a.report.stats, b.report.stats);
        assert_eq!(a.degradation.policy_switches, b.degradation.policy_switches);
        assert_eq!(a.degradation.tokens_per_row, b.degradation.tokens_per_row);
        assert_eq!(a.degradation.final_weight_bits, b.degradation.final_weight_bits);
        assert_eq!(a.sim.faulted_decode_s, b.sim.faulted_decode_s);
        assert_eq!(a.sim.link_degrades, b.sim.link_degrades);
        assert_eq!(a.sim.stall_ms_total, b.sim.stall_ms_total);
    }
}
