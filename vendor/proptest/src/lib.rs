//! Offline stand-in for `proptest` (see `vendor/README.md`).
//!
//! Implements the subset this workspace uses: the `proptest!` macro with
//! optional `#![proptest_config(...)]`, range / `Just` / `prop_oneof!` /
//! `collection::vec` / `any::<T>()` strategies, and panic-based
//! `prop_assert!` macros. Generation is deterministic: the RNG is seeded
//! from the test's module path and name, so a failing case reproduces on
//! every run. No shrinking — the failing values are printed instead.

pub mod test_runner {
    /// Deterministic generator (SplitMix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable string (module path + test name).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.as_bytes() {
                h ^= *b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Multiply-shift bounded sampling; bias is negligible for the
            // small bounds used in tests.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)` with 53-bit precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Runner configuration; only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value generator. Object-safe so `prop_oneof!` can box mixed
    /// strategy types with a common output.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64) - (self.start as u64);
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64) - (lo as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    impl_signed_ranges!(i8, i16, i32, i64, isize);

    macro_rules! impl_float_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }
    impl_float_ranges!(f32, f64);

    /// Uniform choice between boxed strategies with a common value type.
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            assert!(!self.options.is_empty(), "empty prop_oneof!");
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Box a strategy for `prop_oneof!` (keeps type inference simple at
    /// the macro expansion site).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    pub fn union_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
        Union { options }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, 0..256)`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Entry point: expands each `#[test] fn name(arg in strategy, ...)` to
/// a plain `#[test]` that loops `config.cases` times over generated
/// inputs from a name-seeded deterministic RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )*
                $body
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Uniform choice among strategies sharing an output type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union_of(vec![$($crate::strategy::boxed($strat)),+])
    };
}

/// Panic-based assertion (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(
            a in 3usize..17,
            b in 0u64..5,
            c in 0.5f32..2.0,
            d in 1u32..=4,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 5);
            prop_assert!((0.5..2.0).contains(&c), "c = {c}");
            prop_assert!((1..=4).contains(&d));
        }

        #[test]
        fn oneof_and_vec(
            bits in prop_oneof![Just(4u8), Just(8u8)],
            data in collection::vec(any::<u8>(), 0..32),
        ) {
            prop_assert!(bits == 4 || bits == 8);
            prop_assert!(data.len() < 32);
        }
    }

    #[test]
    fn deterministic_by_name() {
        let mut a = crate::test_runner::TestRng::from_name("x::y");
        let mut b = crate::test_runner::TestRng::from_name("x::y");
        let mut c = crate::test_runner::TestRng::from_name("x::z");
        let (va, vb) = (a.next_u64(), b.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, c.next_u64());
    }
}
