//! # lm-engine
//!
//! A *real* miniature offloading inference engine on `lm-tensor`: token
//! generation with layer-streamed weights, bounded "device" memory,
//! asynchronous weight prefetching, and optional at-rest quantization —
//! the same code paths the simulator models, executable at small model
//! scales (DESIGN.md §2's real-execution counterpart).
//!
//! The key correctness property (tested): generation under a tight
//! two-layer device budget is token-for-token identical to unconstrained
//! generation, while the bounded [`pools::MemPool`] proves the budget was
//! honoured.
//!
//! ```
//! use lm_engine::{Engine, EngineOptions, GenerateRequest};
//! use lm_models::presets;
//!
//! let engine = Engine::new(&presets::tiny_test(), 7, EngineOptions::default()).unwrap();
//! let out = engine.run(&GenerateRequest::new(vec![vec![1, 2, 3]], 4)).unwrap();
//! assert_eq!(out.tokens[0].len(), 4);
//! assert!(out.weight_bytes_streamed > 0); // every layer streamed per sweep
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod disk;
pub mod generate;
pub mod kvquant;
pub mod model;
pub mod pools;
pub mod request;
pub mod sampler;
pub mod store;

pub use disk::{write_checkpoint, Checkpoint, CheckpointError};
pub use generate::{Engine, EngineError, EngineOptions, Generation, InitReport};
pub use request::{validate_request, GenerateRequest};
pub use kvquant::{CacheStore, QuantizedKv};
pub use model::{Embedding, LayerWeights};
pub use pools::{Lease, MemPool, PoolExhausted};
pub use sampler::Sampler;
pub use store::{FetchedLayer, OffloadStore, WeightsAtRest};
