//! The [`Tracer`]: span recording for real (wall-clock) execution.
//!
//! Design constraints, mirroring `lm-fault`'s injector:
//!
//! 1. **Zero-cost when disabled.** A disabled tracer is a `None`; every
//!    probe is an inlined null check and returns a no-op guard. Hot
//!    paths traced with a disabled tracer are bit- and branch-identical
//!    to untraced code plus one predictable branch.
//! 2. **Lock-cheap when enabled.** Each thread writes into its own
//!    buffer behind its own mutex — uncontended in steady state — and
//!    buffers are only walked when a snapshot is taken. The prefetch
//!    loader thread therefore never contends with the compute thread.
//! 3. **One time base.** All events are stamped by the tracer's
//!    [`TraceClock`]; hand the same clock to the fault injector
//!    (`FaultInjector::set_clock`) and fault instants align with spans.

use crate::clock::TraceClock;
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::span::Span;
use crate::task::TaskKind;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// A completed named scope (phase, operator, ...): coarser than task
/// spans, tagged with the emitting thread's track and its nesting depth.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeEvent {
    pub name: String,
    /// Per-tracer thread ordinal (0 = first thread that emitted).
    pub track: u32,
    /// Nesting depth at open time (0 = top level).
    pub depth: u32,
    /// Seconds since the tracer clock origin.
    pub start: f64,
    pub end: f64,
}

/// A point event (fault injection, retry, policy switch, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantEvent {
    pub name: String,
    pub category: String,
    pub track: u32,
    /// Seconds since the tracer clock origin.
    pub t: f64,
}

/// Everything a tracer collected: task spans, scopes, instants, and a
/// metrics snapshot.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TraceReport {
    pub spans: Vec<Span>,
    pub scopes: Vec<ScopeEvent>,
    pub instants: Vec<InstantEvent>,
    pub metrics: MetricsSnapshot,
}

impl TraceReport {
    /// Total span-busy seconds per task kind, in [`TaskKind::ALL`] order.
    pub fn observed_task_totals(&self) -> [f64; 7] {
        let mut totals = [0.0f64; 7];
        for s in &self.spans {
            totals[s.kind.index()] += s.duration();
        }
        totals
    }
}

#[derive(Default)]
struct Buf {
    spans: Vec<Span>,
    scopes: Vec<ScopeEvent>,
    instants: Vec<InstantEvent>,
}

struct ThreadBuf {
    track: u32,
    buf: Mutex<Buf>,
}

struct Inner {
    /// Distinguishes tracers in the thread-local buffer cache.
    id: u64,
    clock: TraceClock,
    metrics: MetricsRegistry,
    bufs: Mutex<Vec<Arc<ThreadBuf>>>,
    next_track: AtomicU32,
}

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (tracer id → buffer) cache; tiny, scanned linearly.
    static TLS_BUFS: RefCell<Vec<(u64, Arc<ThreadBuf>)>> = const { RefCell::new(Vec::new()) };
    /// Scope nesting depth of the current thread.
    static TLS_DEPTH: Cell<u32> = const { Cell::new(0) };
}

impl Inner {
    /// This thread's buffer for this tracer, registering one on first use.
    fn thread_buf(self: &Arc<Self>) -> Arc<ThreadBuf> {
        TLS_BUFS.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == self.id) {
                return Arc::clone(buf);
            }
            let buf = Arc::new(ThreadBuf {
                track: self.next_track.fetch_add(1, Ordering::Relaxed),
                buf: Mutex::new(Buf::default()),
            });
            self.bufs.lock().push(Arc::clone(&buf));
            cache.push((self.id, Arc::clone(&buf)));
            buf
        })
    }
}

/// Handle threaded through the pipeline. Clones share buffers, metrics
/// and the clock. `Tracer::disabled()` (and `Default`) produce the
/// zero-cost null tracer.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Inner>>,
}

fn task_hist_name(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::LoadWeight => "task.load_weight.seconds",
        TaskKind::LoadCache => "task.load_cache.seconds",
        TaskKind::LoadActivation => "task.load_activation.seconds",
        TaskKind::StoreCache => "task.store_cache.seconds",
        TaskKind::StoreActivation => "task.store_activation.seconds",
        TaskKind::ComputeCpu => "task.compute_cpu.seconds",
        TaskKind::ComputeGpu => "task.compute_gpu.seconds",
    }
}

impl Tracer {
    /// The null tracer: every probe is an inlined `None` check; no
    /// allocation, no atomics, no clock reads.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// An enabled tracer whose clock origin is "now".
    pub fn new() -> Self {
        Tracer {
            inner: Some(Arc::new(Inner {
                id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
                clock: TraceClock::start(),
                metrics: MetricsRegistry::new(),
                bufs: Mutex::new(Vec::new()),
                next_track: AtomicU32::new(0),
            })),
        }
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The run-origin clock, for aligning other event sources (the fault
    /// injector) with this tracer's spans.
    pub fn clock(&self) -> Option<TraceClock> {
        self.inner.as_deref().map(|i| i.clock)
    }

    /// Open a task span; it records itself (and its duration histogram)
    /// when the guard drops.
    #[inline]
    pub fn task_span(&self, kind: TaskKind, step: u64, layer: u32, batch: Option<u32>) -> TaskSpanGuard {
        TaskSpanGuard {
            ctx: self.inner.as_ref().map(|inner| TaskCtx {
                inner: Arc::clone(inner),
                kind,
                step,
                layer,
                batch,
                start: inner.clock.now_s(),
            }),
        }
    }

    /// Open a named hierarchical scope (phase, operator, ...); closes
    /// when the guard drops. Nesting depth is tracked per thread.
    #[inline]
    pub fn scope(&self, name: &str) -> ScopeGuard {
        ScopeGuard {
            ctx: self.inner.as_ref().map(|inner| {
                let depth = TLS_DEPTH.with(|d| {
                    let v = d.get();
                    d.set(v + 1);
                    v
                });
                ScopeCtx {
                    inner: Arc::clone(inner),
                    name: name.to_string(),
                    depth,
                    start: inner.clock.now_s(),
                }
            }),
        }
    }

    /// Record a point event at "now".
    #[inline]
    pub fn instant(&self, name: &str, category: &str) {
        if let Some(inner) = self.inner.as_ref() {
            let t = inner.clock.now_s();
            let buf = inner.thread_buf();
            let track = buf.track;
            buf.buf.lock().instants.push(InstantEvent {
                name: name.to_string(),
                category: category.to_string(),
                track,
                t,
            });
        }
    }

    // ---- metrics ----------------------------------------------------

    #[inline]
    pub fn counter_add(&self, name: &str, n: u64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.counter_add(name, n);
        }
    }

    #[inline]
    pub fn gauge_set(&self, name: &str, v: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.gauge_set(name, v);
        }
    }

    #[inline]
    pub fn histogram_record(&self, name: &str, v: f64) {
        if let Some(inner) = self.inner.as_deref() {
            inner.metrics.histogram_record(name, v);
        }
    }

    /// Snapshot everything recorded so far (buffers are left intact).
    /// Events are sorted by start time for deterministic output.
    pub fn snapshot(&self) -> TraceReport {
        let Some(inner) = self.inner.as_deref() else {
            return TraceReport::default();
        };
        let mut report = TraceReport {
            metrics: inner.metrics.snapshot(),
            ..TraceReport::default()
        };
        for tb in inner.bufs.lock().iter() {
            let buf = tb.buf.lock();
            report.spans.extend_from_slice(&buf.spans);
            report.scopes.extend_from_slice(&buf.scopes);
            report.instants.extend_from_slice(&buf.instants);
        }
        report.spans.sort_by(|a, b| a.start.total_cmp(&b.start));
        report.scopes.sort_by(|a, b| a.start.total_cmp(&b.start));
        report.instants.sort_by(|a, b| a.t.total_cmp(&b.t));
        report
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.inner.as_deref() {
            Some(inner) => write!(f, "Tracer(enabled, id={})", inner.id),
            None => write!(f, "Tracer(disabled)"),
        }
    }
}

struct TaskCtx {
    inner: Arc<Inner>,
    kind: TaskKind,
    step: u64,
    layer: u32,
    batch: Option<u32>,
    start: f64,
}

/// Guard for an open task span; records on drop.
#[must_use = "the span closes when this guard drops"]
pub struct TaskSpanGuard {
    ctx: Option<TaskCtx>,
}

impl Drop for TaskSpanGuard {
    fn drop(&mut self) {
        if let Some(c) = self.ctx.take() {
            let end = c.inner.clock.now_s();
            c.inner
                .metrics
                .histogram_record(task_hist_name(c.kind), end - c.start);
            let buf = c.inner.thread_buf();
            buf.buf.lock().spans.push(Span {
                kind: c.kind,
                step: c.step,
                layer: c.layer,
                batch: c.batch,
                start: c.start,
                end,
            });
        }
    }
}

struct ScopeCtx {
    inner: Arc<Inner>,
    name: String,
    depth: u32,
    start: f64,
}

/// Guard for an open scope; records on drop.
#[must_use = "the scope closes when this guard drops"]
pub struct ScopeGuard {
    ctx: Option<ScopeCtx>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(c) = self.ctx.take() {
            let end = c.inner.clock.now_s();
            TLS_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let buf = c.inner.thread_buf();
            let track = buf.track;
            buf.buf.lock().scopes.push(ScopeEvent {
                name: c.name,
                track,
                depth: c.depth,
                start: c.start,
                end,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        {
            let _s = t.task_span(TaskKind::LoadWeight, 0, 0, None);
            let _p = t.scope("phase");
            t.instant("x", "y");
            t.counter_add("c", 1);
            t.gauge_set("g", 1.0);
            t.histogram_record("h", 1.0);
        }
        let r = t.snapshot();
        assert!(r.spans.is_empty());
        assert!(r.scopes.is_empty());
        assert!(r.instants.is_empty());
        assert!(r.metrics.counters.is_empty());
        assert!(!t.is_enabled());
        assert!(t.clock().is_none());
    }

    #[test]
    fn spans_nest_and_record_depth() {
        let t = Tracer::new();
        {
            let _outer = t.scope("decode");
            {
                let _inner = t.scope("layer");
                let _task = t.task_span(TaskKind::ComputeGpu, 3, 7, Some(1));
            }
        }
        let r = t.snapshot();
        assert_eq!(r.scopes.len(), 2);
        let outer = r.scopes.iter().find(|s| s.name == "decode").unwrap();
        let inner = r.scopes.iter().find(|s| s.name == "layer").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        // Nested scope is contained in its parent.
        assert!(inner.start >= outer.start && inner.end <= outer.end);
        assert_eq!(r.spans.len(), 1);
        let s = r.spans[0];
        assert_eq!((s.kind, s.step, s.layer, s.batch), (TaskKind::ComputeGpu, 3, 7, Some(1)));
        assert!(s.end >= s.start);
        // Task spans auto-record their duration histogram.
        assert_eq!(r.metrics.histograms["task.compute_gpu.seconds"].count, 1);
    }

    #[test]
    fn depth_rebalances_after_close() {
        let t = Tracer::new();
        {
            let _a = t.scope("a");
        }
        {
            let _b = t.scope("b");
        }
        let r = t.snapshot();
        assert!(r.scopes.iter().all(|s| s.depth == 0), "{:?}", r.scopes);
    }

    #[test]
    fn threads_get_distinct_tracks_and_all_events_survive() {
        let t = Tracer::new();
        t.instant("main", "test");
        let clones: Vec<_> = (0..3)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    let _s = t.scope(&format!("worker-{i}"));
                    let _task = t.task_span(TaskKind::LoadWeight, i as u64, 0, None);
                })
            })
            .collect();
        for c in clones {
            c.join().unwrap();
        }
        let r = t.snapshot();
        assert_eq!(r.spans.len(), 3);
        assert_eq!(r.scopes.len(), 3);
        assert_eq!(r.instants.len(), 1);
        let tracks: std::collections::HashSet<u32> = r.scopes.iter().map(|s| s.track).collect();
        assert_eq!(tracks.len(), 3, "each thread gets its own track");
    }

    #[test]
    fn snapshot_is_sorted_and_non_destructive() {
        let t = Tracer::new();
        for i in 0..5 {
            let _s = t.task_span(TaskKind::LoadWeight, i, 0, None);
        }
        let a = t.snapshot();
        let b = t.snapshot();
        assert_eq!(a.spans.len(), 5);
        assert_eq!(b.spans.len(), 5);
        assert!(a.spans.windows(2).all(|w| w[0].start <= w[1].start));
    }

    #[test]
    fn observed_totals_sum_durations_by_kind() {
        let t = Tracer::new();
        {
            let _a = t.task_span(TaskKind::LoadWeight, 0, 0, None);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let _b = t.task_span(TaskKind::ComputeGpu, 0, 0, None);
        }
        let totals = t.snapshot().observed_task_totals();
        assert!(totals[TaskKind::LoadWeight.index()] >= 0.001);
        assert!(totals[TaskKind::ComputeGpu.index()] >= 0.0);
        assert_eq!(totals[TaskKind::StoreCache.index()], 0.0);
    }

    #[test]
    fn two_tracers_do_not_cross_talk() {
        let t1 = Tracer::new();
        let t2 = Tracer::new();
        {
            let _s = t1.task_span(TaskKind::LoadWeight, 0, 0, None);
        }
        assert_eq!(t1.snapshot().spans.len(), 1);
        assert!(t2.snapshot().spans.is_empty());
    }
}
