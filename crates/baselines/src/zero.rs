//! The ZeRO-Inference baseline (DeepSpeed-Inference, Aminabadi et al.,
//! SC'22) as the paper configures it (§5.1): no *partial* tensor
//! offloading — a tensor class is either fully on GPU or fully on CPU —
//! so for the 30B+ models the KV cache is offloaded to CPU while the
//! weights stay on GPU under its default 4-bit weight quantization.
//! Attention runs on the GPU, streaming the cache, and there is no
//! zig-zag block schedule, which caps the usable batch size.

use crate::flexgen::Deployment;
use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};
use lm_sim::{fits, AttentionPlacement, BaseCostModel, Policy};

/// ZeRO-Inference's fixed policy for large models: whole weights on GPU
/// at 4-bit, whole KV cache on CPU, activations on GPU.
pub fn zero_policy() -> Policy {
    Policy {
        wg: 1.0,
        cg: 0.0,
        hg: 1.0,
        weights_dtype: DType::Int4,
        kv_dtype: DType::F16,
        attention: AttentionPlacement::Gpu,
    }
}

/// Batch sizes ZeRO-Inference can sustain without a block schedule
/// (powers of two, as in Table 3's ZeRO rows: 4..64).
pub const ZERO_BATCHES: [u64; 5] = [4, 8, 16, 32, 64];

/// GPU workspace multiplier of ZeRO-Inference's kernel-injection path:
/// per sequence position it keeps roughly this many hidden-state-sized
/// fp16 buffers live (fused-kernel temporaries, streamed-KV staging,
/// logits) — without FlexGen's fine-grained buffer reuse. Fit to the
/// Table 3 batch caps (64 for OPT-30B, 8-32 for OPT-66B, shrinking with
/// generation length).
pub const WORKSPACE_FACTOR: u64 = 48;

/// GPU bytes ZeRO's injected kernels need beyond resident tensors.
pub fn workspace_bytes(model: &ModelConfig, w: &Workload) -> u64 {
    WORKSPACE_FACTOR * w.gpu_batch * w.final_seq_len() * model.hidden * 2
}

/// Whether a ZeRO workload fits, including the kernel workspace.
pub fn zero_fits(platform: &Platform, model: &ModelConfig, w: &Workload) -> bool {
    let policy = zero_policy();
    if !fits(model, w, platform, &policy) {
        return false;
    }
    let plan = lm_sim::memory_plan(model, w, platform, &policy);
    let cap = (platform.gpu.mem_capacity as f64 * 0.9) as u64;
    plan.gpu_bytes + workspace_bytes(model, w) <= cap
}

/// Pick ZeRO-Inference's deployment: the largest feasible power-of-two
/// batch under its all-or-nothing placement, single-batch blocks.
pub fn zero_search(
    platform: &Platform,
    model: &ModelConfig,
    prompt_len: u64,
    gen_len: u64,
) -> Option<Deployment> {
    let policy = zero_policy();
    let mut best = None;
    for &bsz in &ZERO_BATCHES {
        let w = Workload::new(prompt_len, gen_len, bsz, 1);
        if zero_fits(platform, model, &w) {
            let cost = BaseCostModel::new(platform, model, &w, policy);
            best = Some(Deployment {
                policy,
                workload: w,
                predicted_throughput: cost.throughput(),
            });
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    #[test]
    fn policy_is_all_or_nothing() {
        let p = zero_policy();
        assert_eq!(p.wg, 1.0);
        assert_eq!(p.cg, 0.0);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn opt30b_fits_at_batch_64() {
        // Table 3: ZeRO runs OPT-30B at bsz 64 on the 40 GB A100 (4-bit
        // weights ≈ 14 GiB).
        let platform = presets::single_gpu_a100();
        let d = zero_search(&platform, &models::opt_30b(), 64, 8).expect("feasible");
        assert_eq!(d.workload.gpu_batch, 64);
        assert_eq!(d.workload.num_batches, 1);
    }

    #[test]
    fn opt66b_batch_collapses_with_workspace_pressure() {
        // Table 3: OPT-66B drops to bsz 4-32 (4-bit 66B weights ≈ 30 GiB
        // leave little room for the kernel workspace).
        let platform = presets::single_gpu_a100();
        let d = zero_search(&platform, &models::opt_66b(), 64, 64).expect("feasible");
        assert!(d.workload.gpu_batch <= 32, "got {}", d.workload.gpu_batch);
        // And it shrinks (or holds) as generation length grows.
        let long = zero_search(&platform, &models::opt_66b(), 64, 128).unwrap();
        assert!(long.workload.gpu_batch <= d.workload.gpu_batch);
    }

    #[test]
    fn batches_capped_well_below_block_scheduling() {
        // The shape claim behind §5.2's "24x larger batch sizes": with no
        // zig-zag block schedule ZeRO is capped at small single batches
        // while FlexGen/LM-Offload run blocks of hundreds to thousands.
        let platform = presets::single_gpu_a100();
        let d = zero_search(&platform, &models::opt_66b(), 64, 64).expect("feasible");
        assert!(d.workload.block_size() <= 64);
        let fg = crate::flexgen::flexgen_search(&platform, &models::opt_66b(), 64, 64).unwrap();
        assert!(
            fg.workload.block_size() >= 4 * d.workload.block_size(),
            "FlexGen block {} vs ZeRO {}",
            fg.workload.block_size(),
            d.workload.block_size()
        );
    }

    #[test]
    fn batch_size_shrinks_with_generation_length() {
        // Longer generations grow the KV cache and activations; ZeRO's
        // feasible batch is monotone non-increasing in gen_len.
        let platform = presets::single_gpu_a100();
        let short = zero_search(&platform, &models::opt_66b(), 64, 8).unwrap();
        let long = zero_search(&platform, &models::opt_66b(), 64, 128).unwrap();
        assert!(long.workload.gpu_batch <= short.workload.gpu_batch);
    }
}
