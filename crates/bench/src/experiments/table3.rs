//! Table 3 — the headline comparison: FlexGen, ZeRO-Inference and
//! LM-Offload across four models and five generation lengths on the
//! single-GPU platform.

use lm_hardware::presets;
use lm_models::presets as models;
use lm_models::ModelConfig;
use lm_offload::{normalise, run_framework, EngineConfig, Framework, Table3Row};

/// The generation lengths of Table 3.
pub const GEN_LENGTHS: [u64; 5] = [8, 16, 32, 64, 128];

/// The four models of Table 3.
pub fn table3_models() -> Vec<ModelConfig> {
    vec![
        models::opt_30b(),
        models::opt_66b(),
        models::llama_30b(),
        models::llama_65b(),
    ]
}

/// Run one (model, len) cell for all frameworks, normalised.
pub fn run_cell(model: &ModelConfig, gen_len: u64) -> Vec<Table3Row> {
    let platform = presets::single_gpu_a100();
    let cfg = EngineConfig::new(&platform, model, 64, gen_len);
    let mut rows: Vec<Table3Row> = Framework::ALL
        .iter()
        .filter_map(|&fw| {
            run_framework(fw, &cfg).map(|run| Table3Row::from_run(&run, &model.name, gen_len))
        })
        .collect();
    normalise(&mut rows);
    rows
}

/// Run the full table (60 framework runs — takes a little while).
pub fn run(gen_lengths: &[u64]) -> Vec<Table3Row> {
    let mut all = Vec::new();
    for model in table3_models() {
        for &len in gen_lengths {
            all.extend(run_cell(&model, len));
        }
    }
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_offload_wins_every_cell_against_flexgen() {
        // The paper's strongest shape claim: LM-Offload ≥ FlexGen on all
        // tested configurations. Subsample for test runtime.
        for model in [models::opt_30b(), models::llama_65b()] {
            for len in [8u64, 64] {
                let rows = run_cell(&model, len);
                let fg = rows.iter().find(|r| r.framework == "FlexGen");
                let lm = rows.iter().find(|r| r.framework == "LM-Offload");
                let (fg, lm) = (fg.expect("FlexGen row"), lm.expect("LM-Offload row"));
                assert!(
                    lm.tput >= fg.tput,
                    "{} len={len}: LM {} < FG {}",
                    model.name,
                    lm.tput,
                    fg.tput
                );
            }
        }
    }

    #[test]
    fn norm_tput_is_one_for_lm_offload() {
        let rows = run_cell(&models::opt_30b(), 16);
        let lm = rows.iter().find(|r| r.framework == "LM-Offload").unwrap();
        assert!((lm.norm_tput - 1.0).abs() < 1e-9);
        for r in &rows {
            assert!(r.norm_tput > 0.0);
        }
    }

    #[test]
    fn memory_column_matches_models_footprint_scale() {
        // OPT-30B rows land in the hundreds of GiB (the paper's 214-246
        // band for FlexGen/LM-Offload, ~60-71 for ZeRO).
        let rows = run_cell(&models::opt_30b(), 8);
        let fg = rows.iter().find(|r| r.framework == "FlexGen").unwrap();
        assert!(fg.mem_gib > 80.0, "{}", fg.mem_gib);
        let zero = rows
            .iter()
            .find(|r| r.framework == "ZeRO-Inference")
            .unwrap();
        assert!(zero.mem_gib < fg.mem_gib, "ZeRO's footprint is smaller");
    }

    #[test]
    fn block_size_ratio_matches_24x_claim_direction() {
        // §5.2: "LM-Offload enables an average of 24x larger batch sizes"
        // than ZeRO — assert a large ratio, not the exact constant.
        let rows = run_cell(&models::opt_30b(), 8);
        let lm = rows.iter().find(|r| r.framework == "LM-Offload").unwrap();
        let zero = rows
            .iter()
            .find(|r| r.framework == "ZeRO-Inference")
            .unwrap();
        assert!(lm.bsz >= 4 * zero.bsz, "LM {} vs ZeRO {}", lm.bsz, zero.bsz);
    }
}
