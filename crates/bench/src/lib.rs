//! # lm-bench
//!
//! The experiment harness: one runner per table and figure of the
//! LM-Offload paper (see [`experiments`]), an ASCII [`table`] renderer,
//! the tracked [`perf`] trajectory behind `repro bench`, and the `repro`
//! binary that regenerates everything and writes JSON results to
//! `results/` (plus `BENCH_*.json` at the repo root).
//!
//! Criterion microbenchmarks of the underlying kernels and searches live
//! in `benches/`.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod experiments;
pub mod perf;
pub mod table;
