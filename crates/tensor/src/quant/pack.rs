//! Bit packing for sub-byte quantized values (the "Pack" phase of
//! Algorithm 2, lines 16-18).

/// Pack 4-bit values (each `< 16`) two per byte, low nibble first.
pub fn pack_nibbles(vals: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len().div_ceil(2));
    let mut iter = vals.chunks_exact(2);
    for pair in &mut iter {
        debug_assert!(pair[0] < 16 && pair[1] < 16);
        out.push(pair[0] | (pair[1] << 4));
    }
    if let [last] = iter.remainder() {
        debug_assert!(*last < 16);
        out.push(*last);
    }
    out
}

/// Unpack `n` 4-bit values from bytes produced by [`pack_nibbles`].
pub fn unpack_nibbles(bytes: &[u8], n: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(n);
    for &b in bytes {
        out.push(b & 0x0F);
        if out.len() < n {
            out.push(b >> 4);
        }
        if out.len() >= n {
            break;
        }
    }
    assert_eq!(out.len(), n, "not enough packed bytes for {n} values");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_even() {
        let vals = vec![0u8, 15, 7, 8];
        assert_eq!(unpack_nibbles(&pack_nibbles(&vals), 4), vals);
    }

    #[test]
    fn round_trip_odd() {
        let vals = vec![3u8, 12, 9];
        let packed = pack_nibbles(&vals);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_nibbles(&packed, 3), vals);
    }

    #[test]
    fn packed_size_halves() {
        let vals = vec![1u8; 1000];
        assert_eq!(pack_nibbles(&vals).len(), 500);
    }

    #[test]
    #[should_panic(expected = "not enough packed bytes")]
    fn underflow_detected() {
        unpack_nibbles(&[0x21], 3);
    }

    proptest! {
        #[test]
        fn prop_pack_unpack_bijective(vals in proptest::collection::vec(0u8..16, 0..300)) {
            let packed = pack_nibbles(&vals);
            prop_assert_eq!(packed.len(), vals.len().div_ceil(2));
            prop_assert_eq!(unpack_nibbles(&packed, vals.len()), vals);
        }
    }
}
