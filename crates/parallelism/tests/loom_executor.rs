//! Model-checking of the executor's concurrency protocol
//! (`cargo test -p lm-parallelism --features loom`).
//!
//! The executor in `src/executor.rs` coordinates workers with three
//! mechanisms: an atomic in-degree counter per node (the last predecessor
//! to finish — the one whose `fetch_sub` returns 1 — publishes the node),
//! a shared ready queue, and a POISON broadcast sent by whichever worker
//! completes the final node (each worker holds a queue sender, so the
//! queue can never close itself). crossbeam channels are not
//! instrumentable, so these tests re-state the exact same protocol over
//! loom's `Mutex`/`Condvar`/atomics and let the checker enumerate the
//! interleavings: every schedule must run each node once, respect the
//! dependency edges, and terminate every worker. A deliberately broken
//! variant (no POISON broadcast) must be caught as a deadlock — the bug
//! class the protocol exists to prevent.

#![cfg(feature = "loom")]
#![allow(clippy::unwrap_used)]

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

const POISON: usize = usize::MAX;

/// The executor's ready queue: crossbeam's unbounded channel reduced to
/// the blocking-pop protocol the workers rely on.
struct Queue {
    items: Mutex<VecDeque<usize>>,
    ready: Condvar,
}

impl Queue {
    fn new() -> Self {
        Queue {
            items: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn send(&self, u: usize) {
        self.items.lock().push_back(u);
        self.ready.notify_one();
    }

    fn recv(&self) -> usize {
        let mut guard = self.items.lock();
        loop {
            if let Some(u) = guard.pop_front() {
                return u;
            }
            guard = self.ready.wait(guard);
        }
    }
}

/// Shared run state mirroring `try_run_traced`'s captures.
struct Run {
    edges: Vec<Vec<usize>>,
    indeg: Vec<AtomicUsize>,
    queue: Queue,
    completed: AtomicUsize,
    order: Mutex<Vec<usize>>,
}

impl Run {
    fn new(edges: Vec<Vec<usize>>) -> Arc<Self> {
        let n = edges.len();
        let mut degrees = vec![0usize; n];
        for outs in &edges {
            for &v in outs {
                degrees[v] += 1;
            }
        }
        let run = Arc::new(Run {
            edges,
            indeg: degrees.iter().map(|&d| AtomicUsize::new(d)).collect(),
            queue: Queue::new(),
            completed: AtomicUsize::new(0),
            order: Mutex::new(Vec::new()),
        });
        for (i, &d) in degrees.iter().enumerate() {
            if d == 0 {
                run.queue.send(i);
            }
        }
        run
    }

    /// One worker's loop, verbatim from `Executor::try_run_traced`.
    /// `broadcast_poison: false` is the seeded bug.
    fn worker(&self, inter_op: usize, broadcast_poison: bool) {
        let n = self.edges.len();
        loop {
            let u = self.queue.recv();
            if u == POISON {
                break;
            }
            self.order.lock().push(u);
            for &v in &self.edges[u] {
                if self.indeg[v].fetch_sub(1, Ordering::AcqRel) == 1 {
                    self.queue.send(v);
                }
            }
            if self.completed.fetch_add(1, Ordering::AcqRel) + 1 == n {
                if broadcast_poison {
                    for _ in 0..inter_op {
                        self.queue.send(POISON);
                    }
                }
                break;
            }
        }
    }
}

fn check_run(edges: &[Vec<usize>], order: &[usize]) {
    let n = edges.len();
    assert_eq!(order.len(), n, "every node must run exactly once: {order:?}");
    let mut pos = vec![usize::MAX; n];
    for (i, &u) in order.iter().enumerate() {
        assert_eq!(pos[u], usize::MAX, "node {u} ran twice: {order:?}");
        pos[u] = i;
    }
    for (from, outs) in edges.iter().enumerate() {
        for &to in outs {
            assert!(pos[from] < pos[to], "edge {from}->{to} violated: {order:?}");
        }
    }
}

fn model_run(edges: Vec<Vec<usize>>, inter_op: usize) {
    loom::model(move || {
        let run = Run::new(edges.clone());
        let handles: Vec<_> = (0..inter_op)
            .map(|_| {
                let run = Arc::clone(&run);
                thread::spawn(move || run.worker(inter_op, true))
            })
            .collect();
        for h in handles {
            h.join().expect("worker terminated");
        }
        check_run(&run.edges, &run.order.lock());
    });
}

#[test]
fn diamond_runs_every_node_once_under_all_interleavings() {
    // 0 -> {1, 2} -> 3: node 3's in-degree is decremented by two
    // concurrent workers; exactly one fetch_sub observes 1 and publishes.
    model_run(vec![vec![1, 2], vec![3], vec![3], vec![]], 2);
}

#[test]
fn independent_nodes_complete_and_all_workers_shut_down() {
    // Two sources, no edges: the worker finishing the last node must wake
    // the other (possibly still blocked in recv) via the POISON broadcast.
    model_run(vec![vec![], vec![]], 2);
}

#[test]
fn chain_serializes_even_with_spare_workers() {
    // 0 -> 1 -> 2 with two workers: one worker is always starved; the
    // shutdown still reaches it.
    model_run(vec![vec![1], vec![2], vec![]], 2);
}

#[test]
fn last_decrement_publishes_exactly_once() {
    // The in-degree handshake in isolation: two predecessors finish
    // concurrently, the successor must be enqueued exactly once.
    loom::model(|| {
        let indeg = Arc::new(AtomicUsize::new(2));
        let publishes = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let indeg = Arc::clone(&indeg);
                let publishes = Arc::clone(&publishes);
                thread::spawn(move || {
                    if indeg.fetch_sub(1, Ordering::AcqRel) == 1 {
                        publishes.fetch_add(1, Ordering::AcqRel);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("worker terminated");
        }
        assert_eq!(publishes.load(Ordering::SeqCst), 1);
        assert_eq!(indeg.load(Ordering::SeqCst), 0);
    });
}

#[test]
fn missing_poison_broadcast_is_caught_as_deadlock() {
    // Seeded bug: the finishing worker exits without broadcasting POISON.
    // The other worker then blocks in recv() forever; the checker must
    // find the schedule where that happens and report the deadlock.
    let result = catch_unwind(AssertUnwindSafe(|| {
        loom::model(|| {
            let run = Run::new(vec![vec![1], vec![]]);
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let run = Arc::clone(&run);
                    thread::spawn(move || run.worker(2, false))
                })
                .collect();
            for h in handles {
                h.join().expect("worker terminated");
            }
        });
    }));
    let payload = result.expect_err("the checker must flag the lost shutdown");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("deadlock"), "unexpected failure: {msg}");
}
