//! Serve-path observability (DESIGN.md §13): the per-request lifecycle
//! record, per-boundary state observations, the model-vs-observed drift
//! audit, and the Perfetto serve timeline.
//!
//! The scheduler emits one [`LifecycleEvent`] per phase transition
//! (queued → admitted → prefill → per-token decode → terminal) and one
//! [`BoundaryObs`] per block boundary; both ride on the virtual clock,
//! so the record is deterministic and byte-identical across runs. From
//! these the audit compares what the admission model *predicted* — the
//! [`TtftModel`](crate::TtftModel) first-token estimate sampled the
//! moment each request joins the wait queue, plan occupancy, Little's
//! law on the queue — against what the scheduler actually did.
//!
//! Unlike the simulator drift golden (ratio exactly 1.0: the simulator
//! *is* the model), the serve audit is a genuine prediction check: the
//! TTFT estimator guesses queueing waits before admissions, crashes and
//! stalls happen. Tolerances are therefore per-metric and documented,
//! not zero.

use crate::admission::ServePlan;
use lm_trace::{serve_drift_report, PerfettoTrace, ServeDriftReport};
use serde::{Deserialize, Serialize, Value};
use std::collections::BTreeMap;

/// Lifecycle phases of one request inside the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestPhase {
    /// Entered (or re-entered, after crash/preemption) the wait queue.
    Queued,
    /// Granted a slot and a KV lease.
    Admitted,
    /// Paying (re-)prefill as part of an admitted group.
    Prefill,
    /// One decode step delivered one token to this slot.
    Decode,
    /// Terminal: finished with a full [`Response`](crate::Response).
    Done,
    /// Terminal: rejected (shed, deadline-expired, invalid, pool).
    Shed,
    /// Evicted from its slot by the SLO monitor (re-queued).
    Preempted,
    /// Terminal: cancelled (explicit or client disconnect).
    Cancelled,
    /// Lost its slot to an injected crash (re-queued).
    Crashed,
}

impl RequestPhase {
    pub fn name(self) -> &'static str {
        match self {
            RequestPhase::Queued => "queued",
            RequestPhase::Admitted => "admitted",
            RequestPhase::Prefill => "prefill",
            RequestPhase::Decode => "decode",
            RequestPhase::Done => "done",
            RequestPhase::Shed => "shed",
            RequestPhase::Preempted => "preempted",
            RequestPhase::Cancelled => "cancelled",
            RequestPhase::Crashed => "crashed",
        }
    }

    /// Phases after which the request never reappears in the run.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            RequestPhase::Done | RequestPhase::Shed | RequestPhase::Cancelled
        )
    }
}

/// One phase transition of one request, on the virtual clock.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LifecycleEvent {
    /// Virtual microseconds at the start of the phase.
    pub t_us: u64,
    /// Phase duration (prefill, decode); 0 for instantaneous events.
    pub dur_us: u64,
    /// Request id.
    pub request: u64,
    /// Stable slot index while admitted; `None` off-slot.
    pub slot: Option<u32>,
    pub phase: RequestPhase,
}

/// Scheduler state sampled once per block boundary (post-admission,
/// pre-decode), plus idle/terminal samples so the occupancy integral
/// covers the whole run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundaryObs {
    /// Virtual microseconds of the sample.
    pub t_us: u64,
    /// Requests waiting in the ready queue (present, not admitted).
    pub queued: usize,
    /// Requests that have not arrived yet.
    pub pending_arrivals: usize,
    /// Slots occupied through the upcoming decode step.
    pub active_slots: usize,
    /// Plan slot count (constant; kept per-sample for self-containment).
    pub slots: usize,
    /// Pages mapped by resident sequences at this boundary (0 in slab
    /// mode) — the residency series the paged drift audit integrates.
    pub pages_in_use: u64,
    /// Model-side page demand of the resident sequences: the paging
    /// geometry applied to each active request's metadata
    /// (`pages_for(prompt + gen_len)`), assuming no cross-request
    /// sharing. Under eager reservation the pool's realized residency
    /// must track this exactly, so the paged occupancy audit compares
    /// the two: observed above predicted means leaked or double-mapped
    /// pages, observed below means the prefix index is deduplicating.
    pub pages_demand: u64,
    /// [`TtftModel`](crate::TtftModel) p99 TTFT over the wait queue,
    /// microseconds; `None` when the queue is empty.
    pub predicted_ttft_p99_us: Option<u64>,
    /// Degrade ratchet in force at this boundary (1.0 = full quality).
    pub degrade_factor: f64,
}

/// Per-request first-token audit pair: what the queueing model promised
/// when the request joined the queue vs what the scheduler delivered.
/// Both relative to the request's arrival, microseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TtftSample {
    pub request: u64,
    pub predicted_us: u64,
    pub observed_us: u64,
}

/// Everything the scheduler's observability hooks collect in one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeObs {
    pub lifecycle: Vec<LifecycleEvent>,
    pub boundaries: Vec<BoundaryObs>,
    /// Requests that received a first token, with their predictions.
    pub ttft: Vec<TtftSample>,
}

impl ServeObs {
    /// Time-weighted mean of `f(boundary)` over the boundary intervals
    /// (each sample holds until the next one).
    fn time_weighted_mean(&self, f: impl Fn(&BoundaryObs) -> f64) -> f64 {
        let mut weighted = 0.0f64;
        let mut span = 0.0f64;
        for w in self.boundaries.windows(2) {
            let dt = w[1].t_us.saturating_sub(w[0].t_us) as f64;
            weighted += f(&w[0]) * dt;
            span += dt;
        }
        if span > 0.0 {
            weighted / span
        } else {
            0.0
        }
    }

    /// Exact nearest-rank quantile of `values` (exclusive convention,
    /// matching `lm-trace`'s histogram): p99 of 100 values is the 100th.
    fn quantile(mut values: Vec<f64>, q: f64) -> f64 {
        if values.is_empty() {
            return 0.0;
        }
        values.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = values.len();
        let target = (((q.clamp(0.0, 1.0) * n as f64).floor() as usize) + 1).min(n);
        values[target - 1]
    }

    /// The serve-path drift audit: predicted-vs-observed rows for TTFT
    /// (mean and p99 over the audited requests), slot occupancy (the
    /// work-conserving prediction `min(active + queued, slots)/slots`
    /// against realized `active/slots`, both time-weighted), and mean
    /// ready-queue depth via Little's law (`λ · mean predicted wait`).
    pub fn audit(&self, plan: &ServePlan) -> ServeDriftReport {
        let n = self.ttft.len();
        let (pred_ttft, obs_ttft): (Vec<f64>, Vec<f64>) = self
            .ttft
            .iter()
            .map(|s| (s.predicted_us as f64 / 1e6, s.observed_us as f64 / 1e6))
            .unzip();
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        // Occupancy is audited in the binding resource's units: slab
        // mode fills slots, paged mode fills pages (DESIGN.md §14). The
        // paged prediction is the analytic geometry applied to the
        // resident requests' metadata (`pages_demand`), capped by the
        // pool — eager reservation makes realized residency track it
        // exactly, so drift here means leaked/double-mapped pages
        // (observed high) or prefix-sharing dedup (observed low).
        let slots = plan.slots.max(1) as f64;
        let (occ_pred, occ_obs) = match plan.kv_mode {
            crate::KvMode::Paged => {
                let total = plan.pages_total.max(1) as f64;
                (
                    self.time_weighted_mean(|b| (b.pages_demand as f64).min(total) / total),
                    self.time_weighted_mean(|b| b.pages_in_use as f64 / total),
                )
            }
            crate::KvMode::Slab => (
                self.time_weighted_mean(|b| {
                    ((b.active_slots + b.queued).min(b.slots)) as f64 / slots
                }),
                self.time_weighted_mean(|b| b.active_slots as f64 / slots),
            ),
        };
        let depth_obs = self.time_weighted_mean(|b| b.queued as f64);
        // Little's law over the audited window: arrival rate λ of the
        // requests that got a first token, times their mean predicted
        // wait, predicts the ready-queue depth the scheduler will hold.
        let span_s = self
            .boundaries
            .last()
            .zip(self.boundaries.first())
            .map(|(l, f)| (l.t_us - f.t_us) as f64 / 1e6)
            .unwrap_or(0.0);
        let lambda = if span_s > 0.0 { n as f64 / span_s } else { 0.0 };
        let depth_pred = lambda * mean(&pred_ttft);
        serve_drift_report(&[
            ("ttft_mean_s", mean(&pred_ttft), mean(&obs_ttft)),
            (
                "ttft_p99_s",
                Self::quantile(pred_ttft, 0.99),
                Self::quantile(obs_ttft, 0.99),
            ),
            ("slot_occupancy_mean", occ_pred, occ_obs),
            ("queue_depth_mean", depth_pred, depth_obs),
        ])
    }
}

/// Sample an [`lm_analyze::ObsProbe`] from a serving configuration, for
/// the `LMA27x` observability lints: whether an enforced SLO can see its
/// breaches (the tracer that carries the `serve.ttft_s` histogram) and
/// whether an armed flight recorder can hold evidence.
pub fn obs_probe(cfg: &crate::admission::ServeConfig) -> lm_analyze::ObsProbe {
    lm_analyze::ObsProbe {
        slo_enforce: cfg.slo.as_ref().is_some_and(|s| s.enforce),
        ttft_histogram_registered: cfg.tracer.is_enabled(),
        flight_enabled: cfg.flight.is_enabled(),
        flight_capacity: cfg.flight.capacity().unwrap_or(0) as u64,
        chaos_faults_armed: cfg.fault.is_enabled(),
    }
}

/// Thread id of slot `i`'s track in the serve timeline.
const SLOT_TID_BASE: u64 = 100;
/// Track for off-slot terminal markers (sheds, queued cancellations).
const QUEUE_TID: u64 = 99;

/// Build the Perfetto serve timeline: one track per slot carrying each
/// request's residency slice with nested prefill and per-token decode
/// slices, a queue track for off-slot terminal markers, and counter
/// series for queue depth / active slots / predicted p99 TTFT.
pub fn serve_timeline(plan: &ServePlan, obs: &ServeObs) -> PerfettoTrace {
    let mut t = PerfettoTrace::new("lm-serve");
    t.add_named_track(QUEUE_TID, "queue");
    for slot in 0..plan.slots {
        t.add_named_track(SLOT_TID_BASE + slot as u64, &format!("slot {slot}"));
    }
    // Pair each Admitted with the event that ends the residency to form
    // the enclosing slice; nested phases render by containment.
    let mut open: BTreeMap<u64, (u64, u32)> = BTreeMap::new();
    for ev in &obs.lifecycle {
        let s = ev.t_us as f64 / 1e6;
        match ev.phase {
            RequestPhase::Admitted => {
                if let Some(slot) = ev.slot {
                    open.insert(ev.request, (ev.t_us, slot));
                }
            }
            RequestPhase::Prefill | RequestPhase::Decode => {
                if let Some(slot) = ev.slot {
                    t.add_slice(
                        ev.phase.name(),
                        "serve",
                        SLOT_TID_BASE + slot as u64,
                        s,
                        ev.dur_us as f64 / 1e6,
                        vec![("request", Value::PosInt(ev.request))],
                    );
                }
            }
            RequestPhase::Done
            | RequestPhase::Preempted
            | RequestPhase::Crashed
            | RequestPhase::Cancelled
                if ev.slot.is_some() =>
            {
                if let Some((start, slot)) = open.remove(&ev.request) {
                    t.add_slice(
                        &format!("req {} [{}]", ev.request, ev.phase.name()),
                        "serve",
                        SLOT_TID_BASE + slot as u64,
                        start as f64 / 1e6,
                        (ev.t_us - start) as f64 / 1e6,
                        vec![("request", Value::PosInt(ev.request))],
                    );
                }
            }
            RequestPhase::Shed | RequestPhase::Cancelled => {
                t.add_slice(
                    &format!("req {} [{}]", ev.request, ev.phase.name()),
                    "serve",
                    QUEUE_TID,
                    s,
                    0.0,
                    vec![("request", Value::PosInt(ev.request))],
                );
            }
            _ => {}
        }
    }
    for b in &obs.boundaries {
        let s = b.t_us as f64 / 1e6;
        t.add_counter("serve.queue_depth", s, b.queued as f64);
        t.add_counter("serve.active_slots", s, b.active_slots as f64);
        if let Some(p99) = b.predicted_ttft_p99_us {
            t.add_counter("serve.predicted_ttft_p99_s", s, p99 as f64 / 1e6);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ServePlan {
        ServePlan {
            slots: 2,
            slot_context: 128,
            kv_bytes_per_slot: 1024,
            kv_pool_bytes: 2048,
            kahn_width: 2,
            est_step_seconds: 0.1,
            est_tokens_per_s: 20.0,
            kv_mode: crate::KvMode::Paged,
            page_tokens: 16,
            page_bytes: 128,
            pages_total: 16,
            pages_per_slot: 8,
        }
    }

    fn boundary(t_us: u64, queued: usize, active: usize) -> BoundaryObs {
        BoundaryObs {
            t_us,
            queued,
            pending_arrivals: 0,
            active_slots: active,
            slots: 2,
            // Realized residency equal to the model-side demand (4
            // pages per resident request, 16-page pool) so perfect
            // predictions stay unit-ratio.
            pages_in_use: (((active + queued) * 4).min(16)) as u64,
            pages_demand: (((active + queued) * 4).min(16)) as u64,
            predicted_ttft_p99_us: Some(500_000),
            degrade_factor: 1.0,
        }
    }

    #[test]
    fn audit_on_perfect_predictions_is_unit_ratio() {
        let obs = ServeObs {
            lifecycle: Vec::new(),
            boundaries: vec![boundary(0, 1, 1), boundary(1_000_000, 1, 2), boundary(2_000_000, 0, 0)],
            ttft: vec![
                TtftSample { request: 0, predicted_us: 200_000, observed_us: 200_000 },
                TtftSample { request: 1, predicted_us: 400_000, observed_us: 400_000 },
            ],
        };
        let r = obs.audit(&plan());
        assert_eq!(r.metric("ttft_mean_s").unwrap().ratio, Some(1.0));
        assert_eq!(r.metric("ttft_p99_s").unwrap().ratio, Some(1.0));
        // Paged occupancy is audited in page units: both intervals
        // carry exactly the predicted residency, so the ratio is unit.
        // Interval 1 predicts (1+1)·4/16 = 0.5, interval 2 predicts
        // (2+1)·4/16 = 0.75; time-weighted mean 0.625 on both sides.
        let occ = r.metric("slot_occupancy_mean").unwrap();
        assert!((occ.predicted - 0.625).abs() < 1e-9);
        assert!((occ.observed - 0.625).abs() < 1e-9);
        assert_eq!(occ.ratio, Some(1.0));
        // Little's law: λ = 2 req / 2 s, mean wait 0.3 s → depth 0.3.
        let d = r.metric("queue_depth_mean").unwrap();
        assert!((d.predicted - 0.3).abs() < 1e-9);
        assert!((d.observed - 1.0).abs() < 1e-9);
    }

    #[test]
    fn audit_with_no_samples_is_all_zero() {
        let obs = ServeObs::default();
        let r = obs.audit(&plan());
        for m in &r.metrics {
            assert_eq!(m.predicted, 0.0, "{}", m.metric);
            assert_eq!(m.observed, 0.0, "{}", m.metric);
            assert_eq!(m.ratio, None);
        }
        assert!(r.ok_within(1e-9));
    }

    #[test]
    fn exact_quantile_uses_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(ServeObs::quantile(v.clone(), 0.99), 100.0);
        assert_eq!(ServeObs::quantile(v.clone(), 0.5), 51.0);
        assert_eq!(ServeObs::quantile(vec![7.0], 0.99), 7.0);
        assert_eq!(ServeObs::quantile(Vec::new(), 0.99), 0.0);
    }

    #[test]
    fn timeline_builds_slot_tracks_and_counters() {
        let obs = ServeObs {
            lifecycle: vec![
                LifecycleEvent { t_us: 0, dur_us: 0, request: 5, slot: None, phase: RequestPhase::Queued },
                LifecycleEvent { t_us: 10, dur_us: 0, request: 5, slot: Some(1), phase: RequestPhase::Admitted },
                LifecycleEvent { t_us: 10, dur_us: 40, request: 5, slot: Some(1), phase: RequestPhase::Prefill },
                LifecycleEvent { t_us: 50, dur_us: 25, request: 5, slot: Some(1), phase: RequestPhase::Decode },
                LifecycleEvent { t_us: 75, dur_us: 0, request: 5, slot: Some(1), phase: RequestPhase::Done },
                LifecycleEvent { t_us: 75, dur_us: 0, request: 6, slot: None, phase: RequestPhase::Shed },
            ],
            boundaries: vec![boundary(10, 1, 1), boundary(75, 0, 0)],
            ttft: Vec::new(),
        };
        let t = serve_timeline(&plan(), &obs);
        let v = t.to_value();
        let events = v["traceEvents"].as_array().unwrap();
        // Residency slice encloses the prefill and decode slices.
        let residency = events
            .iter()
            .find(|e| e["name"].as_str() == Some("req 5 [done]"))
            .unwrap();
        assert_eq!(residency["tid"].as_u64(), Some(SLOT_TID_BASE + 1));
        assert_eq!(residency["ts"].as_f64(), Some(10.0));
        assert_eq!(residency["dur"].as_f64(), Some(65.0));
        assert!(events.iter().any(|e| e["name"].as_str() == Some("prefill")));
        assert!(events.iter().any(|e| e["name"].as_str() == Some("decode")));
        let shed = events
            .iter()
            .find(|e| e["name"].as_str() == Some("req 6 [shed]"))
            .unwrap();
        assert_eq!(shed["tid"].as_u64(), Some(QUEUE_TID));
        assert!(
            events
                .iter()
                .filter(|e| e["ph"].as_str() == Some("C"))
                .count()
                >= 4,
            "queue/active/p99 counters per boundary"
        );
        // Slot tracks are named.
        assert!(events.iter().any(|e| {
            e["ph"].as_str() == Some("M") && e["args"]["name"].as_str() == Some("slot 0")
        }));
    }

    #[test]
    fn obs_probe_samples_config_wiring() {
        use crate::admission::ServeConfig;
        let quiet = obs_probe(&ServeConfig::default());
        assert!(!quiet.slo_enforce && !quiet.flight_enabled && !quiet.chaos_faults_armed);
        assert!(lm_analyze::lint_obs(&quiet).is_clean());
        // Enforced SLO with a disabled tracer: LMA270 fires.
        let cfg = ServeConfig {
            slo: Some(crate::slo::SloPolicy::enforcing(100.0)),
            flight: lm_trace::FlightRecorder::new(0),
            fault: lm_fault::FaultInjector::new(lm_fault::FaultConfig::storm(
                7,
                lm_fault::StormProfile::Default,
            )),
            ..ServeConfig::default()
        };
        let probe = obs_probe(&cfg);
        assert!(probe.slo_enforce && !probe.ttft_histogram_registered);
        assert_eq!(probe.flight_capacity, 0);
        assert!(probe.chaos_faults_armed);
        let report = lm_analyze::lint_obs(&probe);
        assert!(report.has(lm_analyze::LintCode::Lma270SloWithoutTtftHistogram));
        assert!(report.has(lm_analyze::LintCode::Lma271FlightRecorderZeroCapacity));
    }

    #[test]
    fn obs_serde_round_trip() {
        let obs = ServeObs {
            lifecycle: vec![LifecycleEvent {
                t_us: 1,
                dur_us: 2,
                request: 3,
                slot: Some(0),
                phase: RequestPhase::Crashed,
            }],
            boundaries: vec![boundary(1, 2, 1)],
            ttft: vec![TtftSample { request: 3, predicted_us: 10, observed_us: 12 }],
        };
        let v = serde::Serialize::serialize(&obs);
        let back: ServeObs = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, obs);
    }
}
