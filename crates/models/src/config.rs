//! Transformer architecture descriptions.

use serde::{Deserialize, Serialize};

/// Numeric precision of a tensor at rest or in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 32-bit IEEE float.
    F32,
    /// 16-bit IEEE float — the paper's uncompressed baseline precision.
    F16,
    /// 8-bit group-wise quantized integers.
    Int8,
    /// 4-bit group-wise quantized integers (FlexGen/LM-Offload's default
    /// compressed precision).
    Int4,
}

impl DType {
    /// Bits per element.
    pub fn bits(self) -> u32 {
        match self {
            DType::F32 => 32,
            DType::F16 => 16,
            DType::Int8 => 8,
            DType::Int4 => 4,
        }
    }

    /// Bytes occupied by `n` elements of this dtype, including the packing
    /// of sub-byte types (two Int4 values per byte, rounded up).
    pub fn bytes_for(self, n: u64) -> u64 {
        (n * self.bits() as u64).div_ceil(8)
    }

    /// Whether this dtype is a quantized integer format that carries
    /// per-group scale/zero-point metadata.
    pub fn is_quantized(self) -> bool {
        matches!(self, DType::Int8 | DType::Int4)
    }
}

/// Model family; affects the MLP ratio and (in a full system) tokenizer and
/// norm placement, none of which change offloading decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    Opt,
    Llama,
    Custom,
}

/// A decoder-only transformer architecture.
///
/// Field names track Table 2: `h1` is the hidden size, `h2` the MLP inner
/// size, `l` the number of transformer layers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    pub name: String,
    pub family: Family,
    /// Number of transformer layers (`l`).
    pub num_layers: u32,
    /// Hidden size (`h1`).
    pub hidden: u64,
    /// MLP inner size (`h2`; 4·h1 for OPT, ~8/3·h1 rounded for LLaMA).
    pub ffn_hidden: u64,
    /// Attention heads; `hidden` must be divisible by this.
    pub num_heads: u32,
    /// Vocabulary size (embedding/unembedding matrices).
    pub vocab_size: u64,
    /// Maximum supported sequence length.
    pub max_seq_len: u64,
}

impl ModelConfig {
    /// Dimension of each attention head (`d_k` in the attention formula).
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.num_heads as u64
    }

    /// Weights in one attention block: Q, K, V and output projections
    /// (the `4·h1²` term of the paper's `num_weights`).
    pub fn attn_weights_per_layer(&self) -> u64 {
        4 * self.hidden * self.hidden
    }

    /// Number of `h1×h2` matrices in one MLP block: two linear
    /// transformations for OPT (the paper's `2·h1·h2` term), three for
    /// LLaMA's SwiGLU (gate, up, down) — needed for LLaMA's Table 3 memory
    /// figures to come out right.
    pub fn mlp_matrices(&self) -> u64 {
        match self.family {
            Family::Llama => 3,
            Family::Opt | Family::Custom => 2,
        }
    }

    /// Weights in one MLP block (`mlp_matrices()·h1·h2`).
    pub fn mlp_weights_per_layer(&self) -> u64 {
        self.mlp_matrices() * self.hidden * self.ffn_hidden
    }

    /// `num_weights = 4·h1² + 2·h1·h2` exactly as defined in §3.2 (with the
    /// MLP factor generalised per family; see [`Self::mlp_matrices`]).
    pub fn weights_per_layer(&self) -> u64 {
        self.attn_weights_per_layer() + self.mlp_weights_per_layer()
    }

    /// Total transformer parameters (layers only; what streams per token).
    pub fn layer_params(&self) -> u64 {
        self.weights_per_layer() * self.num_layers as u64
    }

    /// Total parameters including the embedding and unembedding matrices.
    pub fn total_params(&self) -> u64 {
        self.layer_params() + 2 * self.vocab_size * self.hidden
    }

    /// Validate internal consistency; returns a description of the first
    /// violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_layers == 0 {
            return Err("num_layers must be positive".into());
        }
        if self.hidden == 0 || self.ffn_hidden == 0 {
            return Err("hidden sizes must be positive".into());
        }
        if self.num_heads == 0 {
            return Err("num_heads must be positive".into());
        }
        if !self.hidden.is_multiple_of(self.num_heads as u64) {
            return Err(format!(
                "hidden ({}) must be divisible by num_heads ({})",
                self.hidden, self.num_heads
            ));
        }
        if self.vocab_size == 0 {
            return Err("vocab_size must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn dtype_bits_and_packing() {
        assert_eq!(DType::F16.bytes_for(100), 200);
        assert_eq!(DType::Int4.bytes_for(100), 50);
        assert_eq!(DType::Int4.bytes_for(101), 51); // rounds up
        assert_eq!(DType::Int8.bytes_for(7), 7);
        assert!(DType::Int4.is_quantized());
        assert!(!DType::F16.is_quantized());
    }

    #[test]
    fn opt30b_layer_weights_match_paper_formula() {
        let m = presets::opt_30b();
        // 4·7168² + 2·7168·28672 = 616,562,688 weights per layer.
        assert_eq!(m.weights_per_layer(), 616_562_688);
        // 48 layers ≈ 29.6B parameters — "30 billion".
        assert_eq!(m.layer_params(), 29_595_009_024);
    }

    #[test]
    fn head_dim_divides() {
        for m in presets::all_presets() {
            assert!(m.validate().is_ok(), "{} invalid", m.name);
            assert_eq!(m.head_dim() * m.num_heads as u64, m.hidden);
        }
    }

    #[test]
    fn validation_catches_bad_heads() {
        let mut m = presets::opt_125m();
        m.num_heads = 7;
        assert!(m.validate().is_err());
        m.num_heads = 0;
        assert!(m.validate().is_err());
    }
}
