//! Quickstart: generate tokens with the real offloading engine under a
//! tight device-memory budget, then compare against unconstrained
//! generation to show offloading changes nothing but the memory bill.
//!
//! Run with: `cargo run --release --example quickstart`

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest, Sampler};
use lm_models::presets;
use lm_tensor::QuantConfig;

fn main() {
    let cfg = presets::opt_125m();
    println!("model: {} ({} layers, hidden {})", cfg.name, cfg.num_layers, cfg.hidden);

    // Unconstrained: every layer could stay resident.
    let roomy = Engine::new(&cfg, 7, EngineOptions::default()).expect("engine");
    let prompts = [vec![11u32, 42, 7, 100], vec![3, 1, 4, 1]];
    let baseline = roomy.run(&GenerateRequest::new(prompts.to_vec(), 8)).expect("generation");
    println!(
        "unconstrained: {:?}... peak device {} MiB",
        &baseline.tokens[0][..4],
        baseline.device_peak >> 20
    );

    // Offloaded: a device budget of two layers, weights quantized at rest
    // in host memory, with the asynchronous prefetcher overlapping weight
    // fetches with compute (the load_weight/compute overlap of
    // Algorithm 1 in the paper).
    let probe = Engine::new(&cfg, 7, EngineOptions { prefetch: false, ..Default::default() })
        .expect("probe engine");
    let two_layers = 2 * probe_layer_bytes(&probe) + 4096;
    let tight = Engine::new(
        &cfg,
        7,
        EngineOptions {
            device_capacity: two_layers,
            quantize_at_rest: None,
            prefetch: true,
            sampler: Sampler::Greedy,
            ..Default::default()
        },
    )
    .expect("tight engine");
    let offloaded = tight.run(&GenerateRequest::new(prompts.to_vec(), 8)).expect("generation");
    println!(
        "offloaded:     {:?}... peak device {} MiB (budget {} MiB)",
        &offloaded.tokens[0][..4],
        offloaded.device_peak >> 20,
        two_layers >> 20
    );
    assert_eq!(baseline.tokens, offloaded.tokens, "offloading must not change outputs");
    println!("token-for-token identical: OK");

    // At-rest quantization shrinks the host footprint too (FlexGen's
    // compressed weight format).
    let compressed = Engine::new(
        &cfg,
        7,
        EngineOptions {
            quantize_at_rest: Some(QuantConfig::int4()),
            ..Default::default()
        },
    )
    .expect("compressed engine");
    let gen = compressed.run(&GenerateRequest::new(prompts.to_vec(), 8)).expect("generation");
    println!(
        "int4-at-rest:  host peak {} MiB vs {} MiB fp32, throughput {:.1} tok/s",
        gen.host_peak >> 20,
        baseline.host_peak >> 20,
        gen.throughput
    );
}

fn probe_layer_bytes(engine: &Engine) -> usize {
    // One fetched layer's device bytes, via a throwaway fetch.
    engine.device_pool().capacity(); // silence unused in case of refactor
    let cfg = engine.model();
    let per_layer = cfg.weights_per_layer() as usize * 4;
    per_layer + 64 * 1024 // norms/biases slack
}
