//! The admission controller: turn a [`ServeConfig`] into a checked
//! [`ServePlan`] by consulting the analytic performance model and the KV
//! pool headroom.
//!
//! Slot count is chosen as the throughput argmax of the cost model:
//! because each decode step pays one shared layer fetch plus per-slot
//! terms, modelled tokens/s (`k / step(k)`) is non-decreasing in `k`, so
//! the argmax is the largest `k` the KV pool and the configured ceiling
//! admit. The resulting plan is linted by `lm-analyze`'s `LMA25x` family
//! before any request is served — an infeasible plan is a typed error
//! carrying the diagnostic report, the same contract as the engine's
//! strict pre-flight.

use crate::backend::ServeBackend;
use crate::slo::{DegradeLadder, SloPolicy};
use lm_analyze::{lint_paging, lint_serve, PagingProbe, Report, ServeProbe, SloProbe};
use lm_engine::EngineError;
use lm_fault::{FaultInjector, RetryPolicy};
use lm_parallelism::{analyze, attention_block_graph};
use lm_trace::Tracer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// How the scheduler backs each slot's KV cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvMode {
    /// One contiguous worst-case lease per slot (`slot_context` tokens),
    /// acquired whole at admission. Simple, but pads every request to
    /// the envelope and rejects admissions the paged pool would accept.
    Slab,
    /// Block-granular pages from `lm-kvpool`: per-request page tables,
    /// prompt-prefix sharing across requests, copy-on-write forks on
    /// divergence. Admission reserves exactly the pages a request can
    /// touch, so decode never allocates.
    #[default]
    Paged,
}



/// Operator-facing serving knobs.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worst-case-slab budget: in slab mode, the upper bound on
    /// concurrent sequences; in paged mode it only sizes the derived
    /// pool (`max_slots` worst-case leases), and the slot count comes
    /// from page residency instead.
    pub max_slots: usize,
    /// KV pool capacity in bytes; `0` derives `max_slots` worst-case
    /// leases so the configured ceiling is reachable.
    pub kv_pool_bytes: usize,
    /// Worst-case per-slot context length used to size leases and the
    /// plan; `0` derives a quarter of the model's context window (the
    /// traffic synthesizer's envelope).
    pub slot_context: usize,
    /// Head groups of the per-sequence attention graph (the Kahn-width
    /// bound input).
    pub head_groups: usize,
    /// KV backing for slots; paged is the default (DESIGN.md §14).
    pub kv_mode: KvMode,
    /// Tokens per KV page in paged mode; `0` derives the largest
    /// divisor of the planning context not exceeding 16, so pages
    /// always tile the KV block exactly (`LMA280`).
    pub page_tokens: usize,
    /// Retry budget for admissions that hit transient pool pressure.
    pub retry: RetryPolicy,
    /// Fault plan attached to the serve KV pool.
    pub fault: FaultInjector,
    /// Span/metrics recorder (TTFT, queue depth, slot occupancy, ...).
    pub tracer: Tracer,
    /// Optional TTFT objective; `None` keeps the pre-SLO behaviour
    /// (no prediction, no shedding, no preemption).
    pub slo: Option<SloPolicy>,
    /// Fallback ladder the scheduler climbs when the SLO monitor calls
    /// for degradation; `None` disables that actuator.
    pub ladder: Option<Arc<dyn DegradeLadder>>,
    /// Flight recorder teed into scheduler decisions and injected
    /// faults; frozen into a post-mortem dump on the first observed SLO
    /// breach (DESIGN.md §13). Disabled by default.
    pub flight: lm_trace::FlightRecorder,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_slots: 8,
            kv_pool_bytes: 0,
            slot_context: 0,
            head_groups: 7,
            kv_mode: KvMode::default(),
            page_tokens: 0,
            retry: RetryPolicy::none(),
            fault: FaultInjector::disabled(),
            tracer: Tracer::disabled(),
            slo: None,
            ladder: None,
            flight: lm_trace::FlightRecorder::disabled(),
        }
    }
}

/// The admission controller's output: how many sequences serve
/// concurrently and what that claims.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServePlan {
    /// Concurrent sequences (each holds one KV lease).
    pub slots: usize,
    /// Planning context length behind the lease sizing.
    pub slot_context: usize,
    /// Worst-case lease per slot, bytes.
    pub kv_bytes_per_slot: u64,
    /// Serve KV pool capacity, bytes.
    pub kv_pool_bytes: u64,
    /// Kahn width (max concurrency) of the `slots`-sequence block graph.
    pub kahn_width: u64,
    /// Modelled seconds per decode step with every slot at the planning
    /// context.
    pub est_step_seconds: f64,
    /// Modelled steady-state throughput, tokens/second.
    pub est_tokens_per_s: f64,
    /// KV backing the scheduler will use.
    pub kv_mode: KvMode,
    /// Tokens per KV page (tiles `slot_context` exactly in paged mode).
    pub page_tokens: u64,
    /// Bytes one page leases (`page_tokens · kv_bytes_at(1)`).
    pub page_bytes: u64,
    /// Pages the pool holds in total (`kv_pool_bytes / page_bytes`).
    pub pages_total: u64,
    /// Pages one worst-case slot maps (`slot_context / page_tokens`).
    pub pages_per_slot: u64,
}

impl ServePlan {
    /// The observation `lm-analyze`'s `LMA25x` lints judge. Slab mode
    /// reports the worst-case lease per slot; paged mode reports the
    /// *planned page residency* per sequence (half the envelope, the
    /// statistical bound admission banks on), because that — not the
    /// slab worst case — is what `slots` of them must fit in the pool.
    pub fn probe(&self) -> ServeProbe {
        let per_slot = match self.kv_mode {
            KvMode::Slab => self.kv_bytes_per_slot,
            KvMode::Paged => self.pages_per_slot.div_ceil(2).max(1) * self.page_bytes,
        };
        ServeProbe {
            slots: self.slots as u64,
            kv_bytes_per_slot: per_slot,
            kv_pool_bytes: self.kv_pool_bytes,
            block_size: self.slots as u64,
            kahn_width: self.kahn_width,
        }
    }

    /// The static half of the `LMA28x` observation: geometry only, with
    /// the runtime counters at their quiescent values. The scheduler
    /// fills the live counters from the pool at block boundaries.
    pub fn paging_probe(&self) -> PagingProbe {
        PagingProbe {
            page_tokens: self.page_tokens,
            page_bytes: self.page_bytes,
            bytes_per_token: self.page_bytes.checked_div(self.page_tokens).unwrap_or(0),
            kv_block_tokens: self.slot_context as u64,
            pages_total: self.pages_total,
            pages_in_use: 0,
            page_refcount_sum: 0,
            seq_mapped_pages: 0,
            shared_write_violations: 0,
        }
    }
}

/// Largest page size not exceeding 16 tokens that tiles `context`
/// exactly. 16 matches FlexGen's block granularity at the default
/// contexts (512 → 16, 128 → 16) and degrades to smaller divisors —
/// ultimately 1, which divides everything — for odd contexts.
fn derive_page_tokens(context: usize) -> usize {
    (1..=context.min(16))
        .rev()
        .find(|d| context % d == 0)
        .unwrap_or(1)
}

/// Sample the `LMA26x` lint observation for an SLO policy paired with a
/// plan: the floor is the cost model's one worst-case-padded group
/// prefill plus one full-occupancy decode step — the fastest any
/// admitted request can reach its first token under this plan.
pub fn slo_probe(
    plan: &ServePlan,
    backend: &dyn ServeBackend,
    slo: &SloPolicy,
    ladder: Option<&std::sync::Arc<dyn DegradeLadder>>,
) -> SloProbe {
    // A ladder is finite in practice; cap the census so a buggy
    // implementation cannot hang the pre-flight.
    let degrade_rungs = ladder.map_or(0, |l| {
        (1..=64).take_while(|&i| l.rung(i).is_some()).count() as u64
    });
    SloProbe {
        ttft_p99_slo_s: slo.ttft_p99_s,
        floor_ttft_s: backend.prefill_seconds(plan.slot_context, plan.slots)
            + plan.est_step_seconds,
        slots: plan.slots as u64,
        enforce: slo.enforce,
        preempt: slo.preempt,
        shed: slo.shed,
        degrade_rungs,
    }
}

/// Serving-layer failures.
#[derive(Debug)]
pub enum ServeError {
    /// The plan failed its `LMA25x` pre-flight; the report names each
    /// violation with stable codes.
    Plan(Report),
    /// The backend failed (engine construction, materialization).
    Engine(EngineError),
    /// A paged-KV sequence broke the admit/append protocol mid-decode
    /// (reserve exhausted, append past admitted capacity). Admission
    /// reservations make this unreachable; surfacing it as an error
    /// keeps the scheduler panic-free if the arithmetic ever regresses.
    KvProtocol(lm_kvpool::KvProtocolError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Plan(report) => {
                write!(f, "serve plan rejected by pre-flight analysis:\n{report}")
            }
            ServeError::Engine(e) => write!(f, "backend error: {e}"),
            ServeError::KvProtocol(e) => write!(f, "paged-KV protocol violation: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<EngineError> for ServeError {
    fn from(e: EngineError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<lm_kvpool::KvProtocolError> for ServeError {
    fn from(e: lm_kvpool::KvProtocolError) -> Self {
        ServeError::KvProtocol(e)
    }
}

/// Derive the slot plan for `backend` under `cfg` and lint it, without
/// gating on the verdict. This is the planner's full arithmetic —
/// [`plan_admission`] is the gated wrapper serving uses; `lm-verify`
/// calls this directly so executable ground truth can be evaluated even
/// on configs the lints reject (the lint-incompleteness half of the
/// sweep needs the plan the lints said no to).
pub fn derive_plan(backend: &dyn ServeBackend, cfg: &ServeConfig) -> (ServePlan, Report) {
    let model = backend.model();
    let context = if cfg.slot_context > 0 {
        cfg.slot_context
    } else {
        ((model.max_seq_len / 4) as usize).max(2)
    };
    let per_slot = backend.kv_bytes_at(context).max(1);
    let pool_bytes = if cfg.kv_pool_bytes > 0 {
        cfg.kv_pool_bytes
    } else {
        cfg.max_slots.max(1) * per_slot
    };
    let page_tokens = if cfg.page_tokens > 0 {
        cfg.page_tokens
    } else {
        derive_page_tokens(context)
    };
    let page_bytes = page_tokens * backend.kv_bytes_at(1).max(1);
    let pages_per_slot = context.div_ceil(page_tokens.max(1));
    // Throughput argmax under the pool: the shared weight stream makes
    // k/step(k) non-decreasing, so take the largest feasible k (and let
    // the lint reject a pool too small for even one).
    //
    // Slab mode must fit `k` whole worst-case leases, so the pool bound
    // is `pool / per_slot`, capped by the configured ceiling. Paged mode
    // reasons about *pages*: a sequence's residency tracks its actual
    // context — admission reserves `pages_for(prompt + gen)`, and the
    // traffic envelope fills the planning context about halfway on
    // average — so the same bytes multiplex roughly twice the sequences.
    // The tail where every resident sequence simultaneously nears the
    // envelope is absorbed by admission backpressure (a transiently full
    // page pool requeues the candidate; it never rejects it), which is
    // what makes the statistical bound safe to plan on.
    let by_pool = pool_bytes / per_slot;
    let slots = match cfg.kv_mode {
        KvMode::Slab => cfg.max_slots.min(by_pool.max(1)).max(1),
        KvMode::Paged => {
            let pages_total = (pool_bytes / page_bytes.max(1)).max(1);
            let expected_pages = pages_per_slot.div_ceil(2).max(1);
            (pages_total / expected_pages).max(1)
        }
    };
    let graph = attention_block_graph(
        1,
        slots as u64,
        context as u64,
        model.hidden,
        cfg.head_groups.max(1),
    );
    let kahn_width = analyze(&graph).map(|a| a.max_concurrency()).unwrap_or(0) as u64;
    let est_step_seconds = backend.decode_step_seconds(&vec![context as u64; slots]);
    let plan = ServePlan {
        slots,
        slot_context: context,
        kv_bytes_per_slot: per_slot as u64,
        kv_pool_bytes: pool_bytes as u64,
        kahn_width,
        est_step_seconds,
        est_tokens_per_s: if est_step_seconds > 0.0 {
            slots as f64 / est_step_seconds
        } else {
            0.0
        },
        kv_mode: cfg.kv_mode,
        page_tokens: page_tokens as u64,
        page_bytes: page_bytes as u64,
        pages_total: (pool_bytes / page_bytes.max(1)) as u64,
        pages_per_slot: pages_per_slot as u64,
    };
    let mut report = lint_serve(&plan.probe());
    if cfg.kv_mode == KvMode::Paged {
        report.extend(lint_paging(&plan.paging_probe()));
    }
    (plan, report)
}

/// Derive and lint the slot plan for `backend` under `cfg`, rejecting
/// on any `Error`-severity finding.
pub fn plan_admission(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
) -> Result<ServePlan, ServeError> {
    let (plan, report) = derive_plan(backend, cfg);
    if !report.is_clean() {
        return Err(ServeError::Plan(report));
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use lm_analyze::LintCode;

    #[test]
    fn default_plan_is_clean_and_model_guided() {
        let b = AnalyticBackend::opt_30b();
        // Paged default: the same 8-slab pool admits 16 statistical
        // slots at the expected half-envelope page residency.
        let plan = plan_admission(&b, &ServeConfig::default()).unwrap();
        assert_eq!(plan.slots, 16);
        assert!(plan.est_step_seconds > 0.0);
        assert!(plan.est_tokens_per_s > 0.0);
        assert!(lint_serve(&plan.probe()).is_clean());
        // Slab mode keeps the worst-case-lease arithmetic: one slot per
        // full-context slab.
        let slab = plan_admission(
            &b,
            &ServeConfig {
                kv_mode: KvMode::Slab,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(slab.slots, 8);
        assert!(slab.kahn_width >= slab.slots as u64);
        assert!(lint_serve(&slab.probe()).is_clean());
    }

    #[test]
    fn pool_bound_caps_slots_below_ceiling() {
        let b = AnalyticBackend::opt_30b();
        let per_slot = {
            let p = plan_admission(&b, &ServeConfig::default()).unwrap();
            p.kv_bytes_per_slot as usize
        };
        let cfg = ServeConfig {
            kv_pool_bytes: 3 * per_slot + per_slot / 2,
            kv_mode: KvMode::Slab,
            ..ServeConfig::default()
        };
        let plan = plan_admission(&b, &cfg).unwrap();
        assert_eq!(plan.slots, 3, "pool fits exactly three leases");
        // The same 3.5-slab pool repacked into pages: 112 pages over an
        // expected residency of 16 pages per sequence admits 7.
        let paged = plan_admission(
            &b,
            &ServeConfig {
                kv_pool_bytes: 3 * per_slot + per_slot / 2,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(paged.slots, 7, "page residency outpacks worst-case slabs");
    }

    #[test]
    fn pool_too_small_for_one_slot_is_rejected_with_lma250() {
        let b = AnalyticBackend::opt_30b();
        let cfg = ServeConfig {
            kv_pool_bytes: 1024, // far below one lease
            ..ServeConfig::default()
        };
        match plan_admission(&b, &cfg) {
            Err(ServeError::Plan(report)) => {
                assert!(report.has(LintCode::Lma250SlotsExceedPool), "{report}")
            }
            other => panic!("expected plan rejection, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn default_plan_page_geometry_tiles_the_block() {
        let b = AnalyticBackend::opt_30b();
        let plan = plan_admission(&b, &ServeConfig::default()).unwrap();
        assert_eq!(plan.kv_mode, KvMode::Paged);
        assert_eq!(plan.page_tokens, 16, "512-token context derives 16-token pages");
        assert_eq!(plan.slot_context as u64 % plan.page_tokens, 0);
        assert_eq!(
            plan.page_bytes * plan.pages_per_slot,
            plan.kv_bytes_per_slot,
            "pages tile the worst-case slab exactly"
        );
        // The plan over-subscribes slots against worst-case envelopes
        // (that is the point of paging); what it must guarantee is the
        // *expected* residency — half the per-slot envelope per slot —
        // with scheduler backpressure absorbing the tail.
        assert!(
            plan.pages_total >= plan.pages_per_slot.div_ceil(2) * plan.slots as u64,
            "paged pool holds the expected residency: {} vs {}",
            plan.pages_total,
            plan.pages_per_slot.div_ceil(2) * plan.slots as u64
        );
        assert!(lint_paging(&plan.paging_probe()).is_clean());
    }

    #[test]
    fn odd_context_derives_a_dividing_page_size() {
        assert_eq!(derive_page_tokens(512), 16);
        assert_eq!(derive_page_tokens(128), 16);
        assert_eq!(derive_page_tokens(100), 10);
        assert_eq!(derive_page_tokens(7), 7);
        assert_eq!(derive_page_tokens(13), 13);
        assert_eq!(derive_page_tokens(17), 1, "primes above 16 fall back to 1");
    }

    #[test]
    fn explicit_non_dividing_page_size_rejected_with_lma280() {
        let b = AnalyticBackend::opt_30b();
        let cfg = ServeConfig {
            page_tokens: 11, // 512 % 11 != 0
            ..ServeConfig::default()
        };
        match plan_admission(&b, &cfg) {
            Err(ServeError::Plan(report)) => {
                assert!(report.has(LintCode::Lma280PageGeometryInvalid), "{report}")
            }
            other => panic!("expected plan rejection, got ok={}", other.is_ok()),
        }
        // The same misconfiguration is ignored in slab mode: no pages.
        let slab = ServeConfig {
            kv_mode: KvMode::Slab,
            page_tokens: 11,
            ..ServeConfig::default()
        };
        assert!(plan_admission(&b, &slab).is_ok());
    }

    #[test]
    fn bigger_blocks_estimate_higher_throughput() {
        let b = AnalyticBackend::opt_30b();
        let one = plan_admission(
            &b,
            &ServeConfig {
                max_slots: 1,
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let eight = plan_admission(&b, &ServeConfig::default()).unwrap();
        assert!(
            eight.est_tokens_per_s > one.est_tokens_per_s * 2.0,
            "amortised weights must show up in the estimate: {} vs {}",
            eight.est_tokens_per_s,
            one.est_tokens_per_s
        );
    }
}
