//! The zig-zag block schedule on the *real* engine: outputs must be
//! identical to independent per-batch generation while the weight traffic
//! is amortised across the block — FlexGen's core mechanism, demonstrated
//! with actual byte accounting rather than a model.

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions};
use lm_models::presets;

fn prompts(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| vec![1 + i as u32, 20 + i as u32, 7, 99])
        .collect()
}

#[test]
fn zigzag_outputs_equal_independent_batches() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 77, EngineOptions::default()).unwrap();
    let all = prompts(4);
    let gen_len = 6;

    let block = engine.generate_zigzag(&all, gen_len, 2).unwrap();
    // Independent runs of each half must produce the same tokens: the
    // batches share no state, only the schedule changed.
    let first = engine.generate(&all[..2], gen_len).unwrap();
    let second = engine.generate(&all[2..], gen_len).unwrap();
    assert_eq!(&block.tokens[..2], &first.tokens[..]);
    assert_eq!(&block.tokens[2..], &second.tokens[..]);
}

#[test]
fn zigzag_amortises_weight_traffic_across_batches() {
    // The measurable claim behind Eq. 2's load_weight term: one block of
    // nb batches streams each layer once per sweep; nb independent runs
    // stream it nb times.
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 78, EngineOptions::default()).unwrap();
    let all = prompts(4);
    let gen_len = 3;

    let block = engine.generate_zigzag(&all, gen_len, 2).unwrap();
    let a = engine.generate(&all[..2], gen_len).unwrap();
    let b = engine.generate(&all[2..], gen_len).unwrap();
    let independent = a.weight_bytes_streamed + b.weight_bytes_streamed;
    assert_eq!(
        independent,
        2 * block.weight_bytes_streamed,
        "block must halve the weight stream for 2 batches"
    );
}

#[test]
fn zigzag_single_batch_equals_generate() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 79, EngineOptions::default()).unwrap();
    let all = prompts(2);
    let plain = engine.generate(&all, 4).unwrap();
    let block = engine.generate_zigzag(&all, 4, 1).unwrap();
    assert_eq!(plain.tokens, block.tokens);
    assert_eq!(plain.weight_bytes_streamed, block.weight_bytes_streamed);
}

#[test]
fn zigzag_respects_tight_device_budget() {
    // The block schedule must not need more device memory than the
    // single-batch path: weights still stream two layers at a time.
    let cfg = presets::tiny_test();
    let layer_bytes = cfg.weights_per_layer() as usize * 4 + 64 * 1024;
    let engine = Engine::new(
        &cfg,
        80,
        EngineOptions {
            device_capacity: 2 * layer_bytes,
            ..Default::default()
        },
    )
    .unwrap();
    let g = engine.generate_zigzag(&prompts(4), 3, 2).unwrap();
    assert!(g.device_peak <= 2 * layer_bytes);
    assert_eq!(g.tokens.len(), 4);
}

#[test]
#[should_panic(expected = "equal batches")]
fn ragged_block_rejected() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 81, EngineOptions::default()).unwrap();
    let _ = engine.generate_zigzag(&prompts(3), 2, 2);
}
