//! # lm-hardware
//!
//! Hardware platform descriptions for the LM-Offload reproduction.
//!
//! This crate provides the hardware side of Table 2's notation —
//! `cpu_flops`, `cpu_freq`, `cpu_mem_bdw`, `gpu_flops`, `gpu_freq`,
//! `gpu_mem_bdw` — plus the capacity and topology data the rest of the
//! workspace needs: memory sizes, interconnect bandwidths and latencies,
//! core/thread counts, and LLC geometry for the cache simulator.
//!
//! The two evaluation platforms of Table 4 are available as
//! [`presets::single_gpu_a100`] and [`presets::multi_gpu_v100`].
//!
//! ## Calibration
//!
//! Peak datasheet numbers are scaled by [`spec::Efficiency`] factors to the
//! sustained rates a PyTorch-level offloading runtime achieves. These are
//! the *only* tunable constants in the reproduction; DESIGN.md §5 records
//! how their defaults were chosen.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod presets;
pub mod spec;
pub mod units;

pub use spec::{CpuSpec, Efficiency, GpuSpec, LinkSpec, Platform};
pub use units::{fmt_bytes, gb_per_s, ghz, gib, tflops, to_gib, GB, GIB, KIB, MIB};
