//! Multi-GPU pipeline demo: weak-scale OPT-13B across 1-4 simulated
//! V100s with pipeline parallelism, comparing FlexGen's default threading
//! against LM-Offload's per-stage thread partitioning (the Fig. 9
//! experiment as an interactive tool).
//!
//! Run with: `cargo run --release --example multi_gpu_pipeline [model]`

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::presets as models;
use lm_offload::{run_pipeline, EngineConfig, Framework};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "OPT-13B".to_string());
    let model = models::by_name(&name).unwrap_or_else(models::opt_13b);
    println!("weak scaling {} on the V100/POWER9 platform (s=256, n=64)", model.name);
    println!();
    println!(
        "{:>4} | {:>12} {:>12} | {:>8} | {:>16}",
        "GPUs", "FlexGen", "LM-Offload", "speedup", "scaling eff (LM)"
    );

    let mut lm1 = None;
    for g in 1..=4u32 {
        let platform = hw::multi_gpu_v100(g);
        let cfg = EngineConfig::new(&platform, &model, 256, 64);
        let fg = run_pipeline(Framework::FlexGen, &cfg, g);
        let lm = run_pipeline(Framework::LmOffload, &cfg, g);
        match (fg, lm) {
            (Some(fg), Some(lm)) => {
                if g == 1 {
                    lm1 = Some(lm.throughput);
                }
                let eff = lm1.map(|t1| lm.throughput / (t1 * g as f64)).unwrap_or(0.0);
                println!(
                    "{g:>4} | {:>9.1} t/s {:>9.1} t/s | {:>7.2}x | {:>15.0}%",
                    fg.throughput,
                    lm.throughput,
                    lm.throughput / fg.throughput,
                    eff * 100.0
                );
            }
            _ => println!("{g:>4} | no feasible deployment"),
        }
    }
    println!();
    println!("The LM-Offload/FlexGen gap widens with GPU count: default threading");
    println!("oversubscribes the shared host CPU across pipeline stages, while the");
    println!("controller partitions threads per stage (§5.5 / Fig. 9).");
}
