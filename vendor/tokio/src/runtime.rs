//! A multi-threaded task executor: fixed worker pool, shared injector
//! queue, waker-driven rescheduling. `block_on` drives any future on the
//! calling thread with a condvar parker, so the two halves compose the
//! way the real tokio's `Runtime::block_on` + `Runtime::spawn` do.

use crate::task::{JoinError, JoinHandle, JoinState};
use std::collections::VecDeque;
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::task::{Context, Poll, Wake, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send>>;

/// Where a task currently is in its run cycle. The `Notified` state
/// absorbs wake-ups that land mid-poll, so a task is never enqueued
/// twice and never loses a wake.
enum Run {
    Idle,
    Queued,
    Running,
    Notified,
    Done,
}

struct TaskState {
    future: Option<BoxFuture>,
    run: Run,
}

struct TaskCell {
    state: Mutex<TaskState>,
    shared: std::sync::Weak<Shared>,
}

impl TaskCell {
    fn lock(&self) -> std::sync::MutexGuard<'_, TaskState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

impl Wake for TaskCell {
    fn wake(self: Arc<Self>) {
        let Some(shared) = self.shared.upgrade() else {
            return; // runtime already shut down
        };
        let mut st = self.lock();
        match st.run {
            Run::Idle => {
                st.run = Run::Queued;
                drop(st);
                shared.enqueue(self);
            }
            Run::Running => st.run = Run::Notified,
            Run::Queued | Run::Notified | Run::Done => {}
        }
    }
}

struct Shared {
    injector: Mutex<VecDeque<Arc<TaskCell>>>,
    work_cv: Condvar,
    shutdown: AtomicBool,
}

impl Shared {
    fn enqueue(&self, task: Arc<TaskCell>) {
        let mut q = match self.injector.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        q.push_back(task);
        self.work_cv.notify_one();
    }

    fn next(&self) -> Option<Arc<TaskCell>> {
        let mut q = match self.injector.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        loop {
            if let Some(t) = q.pop_front() {
                return Some(t);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            q = match self.work_cv.wait(q) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(task) = shared.next() {
        let mut st = task.lock();
        let Some(mut fut) = st.future.take() else {
            continue; // completed by a racing poll
        };
        st.run = Run::Running;
        drop(st);
        let waker = Waker::from(Arc::clone(&task));
        let mut cx = Context::from_waker(&waker);
        // A panicking task must not take its worker down with it; the
        // panic surfaces to the joiner as Err(JoinError) instead (the
        // spawn wrapper completes the handle before unwinding reaches
        // here only on the success path).
        let polled = catch_unwind(AssertUnwindSafe(|| fut.as_mut().poll(&mut cx)));
        let mut st = task.lock();
        match polled {
            Ok(Poll::Ready(())) | Err(_) => st.run = Run::Done,
            Ok(Poll::Pending) => {
                st.future = Some(fut);
                if matches!(st.run, Run::Notified) {
                    st.run = Run::Queued;
                    drop(st);
                    shared.enqueue(task);
                } else {
                    st.run = Run::Idle;
                }
            }
        }
    }
}

/// The executor. Dropping it requests shutdown and joins every worker;
/// tasks still pending at that point are dropped, never polled again.
pub struct Runtime {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// A multi-threaded runtime with a small fixed worker pool.
    pub fn new() -> std::io::Result<Runtime> {
        let workers_n = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(2);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut workers = Vec::with_capacity(workers_n);
        for i in 0..workers_n {
            let sh = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("tokio-worker-{i}"))
                    .spawn(move || worker_loop(sh))?,
            );
        }
        Ok(Runtime { shared, workers })
    }

    /// Spawn a future onto the worker pool.
    pub fn spawn<F>(&self, fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let state = JoinState::new();
        let out = Arc::clone(&state);
        let wrapped: BoxFuture = Box::pin(Completing {
            fut: Box::pin(fut),
            out: Some(out),
        });
        let task = Arc::new(TaskCell {
            state: Mutex::new(TaskState {
                future: Some(wrapped),
                run: Run::Queued,
            }),
            shared: Arc::downgrade(&self.shared),
        });
        self.shared.enqueue(task);
        JoinHandle { state }
    }

    /// Drive `fut` to completion on the calling thread, parking between
    /// polls until a waker fires.
    pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
        let parker = Arc::new(Parker {
            woken: Mutex::new(false),
            cv: Condvar::new(),
        });
        let waker = Waker::from(Arc::clone(&parker));
        let mut cx = Context::from_waker(&waker);
        let mut fut = std::pin::pin!(fut);
        loop {
            if let Poll::Ready(v) = fut.as_mut().poll(&mut cx) {
                return v;
            }
            parker.park();
        }
    }

    /// Park the current thread until `handle`'s task completes and
    /// return its output — `block_on(handle)` without needing the
    /// handle to be `'static`-pinned anywhere.
    pub fn join<T>(&self, handle: JoinHandle<T>) -> Result<T, JoinError> {
        handle.join_blocking()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Wrapper future that routes the inner output (or panic) to the
/// [`JoinState`] exactly once.
struct Completing<T> {
    fut: Pin<Box<dyn Future<Output = T> + Send>>,
    out: Option<Arc<JoinState<T>>>,
}

impl<T> Future for Completing<T> {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        match catch_unwind(AssertUnwindSafe(|| this.fut.as_mut().poll(cx))) {
            Ok(Poll::Pending) => Poll::Pending,
            Ok(Poll::Ready(v)) => {
                if let Some(out) = this.out.take() {
                    out.complete(Ok(v));
                }
                Poll::Ready(())
            }
            Err(payload) => {
                if let Some(out) = this.out.take() {
                    out.complete(Err(JoinError::panicked()));
                }
                // Worker-level catch_unwind keeps the pool alive; the
                // joiner has already been answered.
                std::panic::resume_unwind(payload);
            }
        }
    }
}

struct Parker {
    woken: Mutex<bool>,
    cv: Condvar,
}

impl Parker {
    fn park(&self) {
        let mut woken = match self.woken.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        while !*woken {
            woken = match self.cv.wait(woken) {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
        }
        *woken = false;
    }
}

impl Wake for Parker {
    fn wake(self: Arc<Self>) {
        let mut woken = match self.woken.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        *woken = true;
        self.cv.notify_one();
    }
}
