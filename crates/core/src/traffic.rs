//! I/O traffic accounting — the Table 1 reproduction: bytes crossing the
//! CPU↔GPU interconnect per generated token, per direction and tensor
//! class, with and without attention offloading.

use lm_models::{footprint, DType, ModelConfig, Workload};
use lm_sim::{AttentionPlacement, Policy};
use serde::{Deserialize, Serialize};

/// Per-token interconnect traffic in bytes, split like Table 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenTraffic {
    pub h2d_weights: u64,
    pub h2d_kv_cache: u64,
    pub h2d_activation: u64,
    pub d2h_weights: u64,
    pub d2h_kv_cache: u64,
    pub d2h_activation: u64,
}

impl TokenTraffic {
    pub fn h2d_total(&self) -> u64 {
        self.h2d_weights + self.h2d_kv_cache + self.h2d_activation
    }

    pub fn d2h_total(&self) -> u64 {
        self.d2h_weights + self.d2h_kv_cache + self.d2h_activation
    }

    pub fn total(&self) -> u64 {
        self.h2d_total() + self.d2h_total()
    }
}

/// Traffic across *all layers* for one token generation (Table 1's
/// caption), at the average decode step (Eq. 18's `s + n/2` size).
pub fn per_token_traffic(cfg: &ModelConfig, w: &Workload, policy: &Policy) -> TokenTraffic {
    let l = cfg.num_layers as u64;
    let weights = ((1.0 - policy.wg)
        * policy.weights_dtype.bytes_for(cfg.weights_per_layer()) as f64) as u64
        * l;
    let act = DType::F16.bytes_for(footprint::activation_elems(cfg, w))
        .saturating_mul(l);
    let act = ((1.0 - policy.hg) * act as f64) as u64;

    match policy.attention {
        AttentionPlacement::Cpu => TokenTraffic {
            h2d_weights: weights,
            h2d_kv_cache: 0,
            h2d_activation: act,
            d2h_weights: 0,
            d2h_kv_cache: 0,
            d2h_activation: act,
        },
        AttentionPlacement::Gpu => {
            // Old KV streams up at the average size; new KV streams down.
            let avg_pos = w.prompt_len + w.gen_len / 2;
            let old_elems = 2 * avg_pos * cfg.hidden * w.block_size();
            let new_elems = 2 * cfg.hidden * w.block_size();
            let up = ((1.0 - policy.cg) * policy.kv_dtype.bytes_for(old_elems) as f64) as u64 * l;
            let down =
                ((1.0 - policy.cg) * policy.kv_dtype.bytes_for(new_elems) as f64) as u64 * l;
            TokenTraffic {
                h2d_weights: weights,
                h2d_kv_cache: up,
                h2d_activation: act,
                d2h_weights: 0,
                d2h_kv_cache: down,
                d2h_activation: act,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::GIB;
    use lm_models::presets as models;

    fn gib(b: u64) -> f64 {
        b as f64 / GIB as f64
    }

    /// Table 1's two scenarios for OPT-30B at the motivation workload.
    /// The paper's measured policies imply ~30% of weights streaming with
    /// attention offloading and ~70% without; we reproduce the reported
    /// magnitudes with those shares.
    #[test]
    fn table1_with_attention_offloading() {
        let cfg = models::opt_30b();
        let w = Workload::motivation();
        let policy = Policy {
            wg: 0.70, // 30% streamed -> 16.5 GiB/token
            ..Policy::flexgen_default()
        };
        let t = per_token_traffic(&cfg, &w, &policy);
        assert!((gib(t.h2d_weights) - 16.32).abs() < 1.0, "{}", gib(t.h2d_weights));
        assert_eq!(t.h2d_kv_cache, 0);
        assert_eq!(t.d2h_kv_cache, 0);
        // Activations ~0.38-0.41 GiB each way.
        assert!((gib(t.h2d_activation) - 0.38).abs() < 0.08, "{}", gib(t.h2d_activation));
        assert_eq!(t.h2d_activation, t.d2h_activation);
    }

    #[test]
    fn table1_without_attention_offloading() {
        let cfg = models::opt_30b();
        let w = Workload::motivation();
        let policy = Policy {
            wg: 0.30, // 70% streamed -> ~38.6 GiB/token
            attention: AttentionPlacement::Gpu,
            ..Policy::flexgen_default()
        };
        let t = per_token_traffic(&cfg, &w, &policy);
        assert!((gib(t.h2d_weights) - 38.88).abs() < 1.5, "{}", gib(t.h2d_weights));
        // Old KV upstream: Eq. 18's average gives ~105 GiB; the paper's
        // Table 1 reports 78.72 (exactly half the 157 GiB peak) — we
        // assert the order of magnitude and document the difference in
        // EXPERIMENTS.md.
        assert!(gib(t.h2d_kv_cache) > 60.0 && gib(t.h2d_kv_cache) < 120.0);
        // New KV downstream ~0.8 GiB.
        assert!((gib(t.d2h_kv_cache) - 0.82).abs() < 0.15, "{}", gib(t.d2h_kv_cache));
    }

    #[test]
    fn offloading_attention_slashes_io() {
        // §3.1: attention offloading removes the 78.72 GiB/token KV
        // stream; the activation it adds is 99.5% smaller.
        let cfg = models::opt_30b();
        let w = Workload::motivation();
        let mut gpu_p = Policy::flexgen_default();
        gpu_p.attention = AttentionPlacement::Gpu;
        let gpu = per_token_traffic(&cfg, &w, &gpu_p);
        let cpu = per_token_traffic(&cfg, &w, &Policy::flexgen_default());
        assert!(cpu.total() < gpu.total() / 2);
        assert!((cpu.h2d_activation as f64) < 0.01 * gpu.h2d_kv_cache as f64);
    }

    #[test]
    fn kv_quantization_scales_kv_terms_only() {
        let cfg = models::opt_30b();
        let w = Workload::motivation();
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let f16 = per_token_traffic(&cfg, &w, &p);
        p.kv_dtype = DType::Int4;
        let i4 = per_token_traffic(&cfg, &w, &p);
        assert_eq!(f16.h2d_weights, i4.h2d_weights);
        assert!((f16.h2d_kv_cache as f64 / i4.h2d_kv_cache as f64 - 4.0).abs() < 0.01);
    }
}
