//! The planner-space sweep: enumerate a bounded lattice of deployment
//! configs and prove, at every point, that the planner's lint verdict is
//! consistent with *executable* ground truth.
//!
//! For each lattice point the sweep derives the slot plan twice over:
//! once through `lm-serve`'s linted planner ([`derive_plan`]), and once
//! by actually *executing* the planned admissions against a real
//! [`PagedKvPool`] backed by a real byte-accounted `MemPool`. The
//! invariant catalogue (DESIGN.md §15):
//!
//! - `geometry_tiles` (I3): pages tile the plan's KV block exactly and
//!   page bytes equal `page_tokens · bytes_per_token`;
//! - `slots_feasible` (I2): every one of the plan's `slots` admissions
//!   at the planned expected residency is actually granted;
//! - `pool_capacity` (I1): executing those admissions never drives the
//!   pool past capacity and page/byte accounting stays balanced;
//! - `append_protocol` (I1'): every reserved append lands without a
//!   protocol error;
//! - `zero_leaks` (I1''): tearing every sequence down returns the pool
//!   to exactly zero pages and zero bytes;
//! - `ladder_monotone` (I4): the scheduler's clamped effective degrade
//!   factors are positive and non-increasing, so predicted step time
//!   never *rises* while climbing the ladder;
//! - `ttft_floor` (I5): the TTFT predictor never predicts below the
//!   physical floor (one prefill + one step) and is monotone in queue
//!   position;
//! - `slo_meetable` (I6): a configured TTFT objective sits at or above
//!   that floor.
//!
//! Verdict classification per point: lint-clean ∧ truth-fails is a
//! **lint-unsoundness witness** (`LMA291`, gated to zero on the shipped
//! planner); lint-rejects ∧ truth-holds is **lint incompleteness**
//! (reported, tolerated — lints may be conservative); the other two
//! cells are consistent.
//!
//! The sweep is pure arithmetic plus deterministic allocator calls — no
//! clocks, no RNG — so its report is byte-stable across runs.

use lm_analyze::UnsoundnessWitness;
use lm_engine::MemPool;
use lm_kvpool::{PageConfig, PagedKvPool};
use lm_models::{presets, ModelConfig};
use lm_serve::{derive_plan, slo_probe, AnalyticBackend, KvMode, ServeBackend, ServeConfig, SloPolicy};
use lm_serve::{DegradeLadder, ServePlan, StaticLadder, TtftModel};
use lm_sim::Policy;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Lattice size: `Quick` is the default verify lane; `Full` is the
/// exhaustive overnight lattice behind `VERIFY_SWEEP=full`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SweepDepth {
    Quick,
    Full,
}

/// Seeded defect injected into the *executable* side of the sweep (the
/// lints never see it — which is exactly what makes it a soundness
/// probe: a mutated execution that fails ground truth while the lints
/// stay green must surface as an `LMA291` witness).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Mutation {
    /// Faithful execution of the planned admissions.
    None,
    /// Admission over-grants one page per sequence (reserves one page
    /// of generation headroom beyond what the plan budgeted), the
    /// classic off-by-one that exhausts an exactly-sized pool.
    OvergrantPage,
}

/// The verdict at one lattice point.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable point identity.
    pub config: String,
    /// The planner lints passed (no `Error`-severity finding).
    pub lint_clean: bool,
    /// Every executable invariant held.
    pub truth_ok: bool,
    /// Names of the invariants that failed, in catalogue order.
    pub failed_invariants: Vec<String>,
}

/// Aggregated sweep outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// `(axis, distinct values)` for the `LMA290` degeneracy lint.
    pub axes: Vec<(String, u64)>,
    /// Lattice points explored.
    pub configs: u64,
    /// Points where lints passed but ground truth failed.
    pub unsoundness: Vec<UnsoundnessWitness>,
    /// Points where lints rejected but every invariant held.
    pub incompleteness: u64,
    /// Points where verdict and truth agreed (both ok or both failed).
    pub consistent: u64,
}

struct ModelAxis {
    name: &'static str,
    cfg: ModelConfig,
}

fn model_axis(depth: SweepDepth) -> Vec<ModelAxis> {
    let mut v = vec![
        ModelAxis { name: "opt-13b", cfg: presets::opt_13b() },
        ModelAxis { name: "opt-30b", cfg: presets::opt_30b() },
        ModelAxis { name: "opt-66b", cfg: presets::opt_66b() },
    ];
    if depth == SweepDepth::Full {
        v.insert(0, ModelAxis { name: "opt-6.7b", cfg: presets::opt_6p7b() });
    }
    v
}

/// Pool sizes as worst-case-slab multiples (`0` = planner-derived).
fn pool_axis(depth: SweepDepth) -> Vec<usize> {
    match depth {
        SweepDepth::Quick => vec![0, 2, 4, 16],
        SweepDepth::Full => vec![0, 1, 2, 4, 16],
    }
}

/// Page sizes in tokens (`0` = planner-derived; `11` does not divide
/// the default planning contexts, driving the lint-reject region).
fn page_axis(depth: SweepDepth) -> Vec<usize> {
    match depth {
        SweepDepth::Quick => vec![0, 8, 16, 11],
        SweepDepth::Full => vec![0, 4, 8, 16, 11],
    }
}

#[derive(Clone, Copy, PartialEq)]
enum SloAxis {
    None,
    Observe,
    Enforcing,
    /// An objective far below the physical floor — the planner must
    /// reject it (`LMA260`) and ground truth must agree it is unmeetable.
    BelowFloor,
}

impl SloAxis {
    fn name(self) -> &'static str {
        match self {
            SloAxis::None => "none",
            SloAxis::Observe => "observe",
            SloAxis::Enforcing => "enforcing",
            SloAxis::BelowFloor => "below-floor",
        }
    }

    fn policy(self) -> Option<SloPolicy> {
        match self {
            SloAxis::None => None,
            SloAxis::Observe => Some(SloPolicy::observe(8.0)),
            SloAxis::Enforcing => Some(SloPolicy::enforcing(8.0)),
            SloAxis::BelowFloor => Some(SloPolicy::enforcing(1e-6)),
        }
    }
}

fn slo_axis(depth: SweepDepth) -> Vec<SloAxis> {
    match depth {
        SweepDepth::Quick => vec![SloAxis::None, SloAxis::Enforcing, SloAxis::BelowFloor],
        SweepDepth::Full => vec![
            SloAxis::None,
            SloAxis::Observe,
            SloAxis::Enforcing,
            SloAxis::BelowFloor,
        ],
    }
}

#[derive(Clone, Copy, PartialEq)]
enum LadderAxis {
    None,
    /// Model-guided shape: factors < 1, each rung faster.
    Geometric,
    /// Adversarial shape: raw factors > 1; the scheduler's clamp must
    /// keep the *effective* sequence monotone anyway.
    Inverted,
}

impl LadderAxis {
    fn name(self) -> &'static str {
        match self {
            LadderAxis::None => "none",
            LadderAxis::Geometric => "geo-0.8",
            LadderAxis::Inverted => "inv-1.3",
        }
    }

    fn ladder(self) -> Option<Arc<dyn DegradeLadder>> {
        match self {
            LadderAxis::None => None,
            LadderAxis::Geometric => Some(Arc::new(StaticLadder::geometric(3, 0.8))),
            LadderAxis::Inverted => Some(Arc::new(StaticLadder::geometric(2, 1.3))),
        }
    }
}

fn ladder_axis(depth: SweepDepth) -> Vec<LadderAxis> {
    match depth {
        SweepDepth::Quick => vec![LadderAxis::None, LadderAxis::Geometric],
        SweepDepth::Full => vec![LadderAxis::None, LadderAxis::Geometric, LadderAxis::Inverted],
    }
}

/// Evaluate executable ground truth for one derived plan, returning the
/// failed invariant names in catalogue order (empty = all held).
fn ground_truth(
    backend: &AnalyticBackend,
    cfg: &ServeConfig,
    plan: &ServePlan,
    mutation: Mutation,
) -> Vec<String> {
    let mut failed: Vec<String> = Vec::new();
    let fail = |list: &mut Vec<String>, name: &str| {
        if !list.iter().any(|f| f == name) {
            list.push(name.to_string());
        }
    };

    // I3 geometry_tiles — the executable definition: a page must be
    // nonzero, byte-consistent with the model's per-token KV cost, tile
    // the planning context exactly, and the pool must hold >= 1 page.
    let page_tokens = plan.page_tokens as usize;
    let bytes_per_token = backend.kv_bytes_at(1).max(1);
    let geometry_ok = page_tokens > 0
        && plan.page_bytes as usize == page_tokens * bytes_per_token
        && plan.slot_context % page_tokens.max(1) == 0
        && plan.pages_total >= 1;
    if !geometry_ok {
        fail(&mut failed, "geometry_tiles");
    }

    // I1/I2: execute the planned admissions for real. Only meaningful
    // with a constructible pool.
    if page_tokens > 0 && plan.page_bytes > 0 {
        let mem = MemPool::new("verify.kv", plan.kv_pool_bytes as usize);
        let pool = PagedKvPool::new(
            Arc::clone(&mem),
            PageConfig { page_tokens, bytes_per_token },
        );
        let expected_pages = (plan.pages_per_slot as usize).div_ceil(2).max(1);
        let tokens_per_seq = expected_pages * page_tokens;
        let known_len = tokens_per_seq / 2;
        let gen_len = tokens_per_seq - known_len
            + match mutation {
                Mutation::None => 0,
                // One extra page of generation headroom per sequence —
                // the over-grant the lints cannot see.
                Mutation::OvergrantPage => page_tokens,
            };
        let mut seqs = Vec::with_capacity(plan.slots);
        for i in 0..plan.slots {
            // Distinct leading tokens so no prompt shares a prefix:
            // feasibility must hold with zero sharing wins.
            let known: Vec<u32> = (0..known_len)
                .map(|t| (i * 1_000_000 + t + 1) as u32)
                .collect();
            match pool.admit(&known, gen_len) {
                Ok(seq) => seqs.push(seq),
                Err(_) => {
                    fail(&mut failed, "slots_feasible");
                    break;
                }
            }
            if pool.pages_in_use() > pool.capacity_pages() || !pool.accounting_balanced() {
                fail(&mut failed, "pool_capacity");
            }
        }
        // Drive every admitted sequence to its reserved capacity: the
        // reservation contract says no append may fail.
        for (i, seq) in seqs.iter_mut().enumerate() {
            for t in 0..gen_len {
                if seq.append((900_000_000 + i * 10_000 + t) as u32).is_err() {
                    fail(&mut failed, "append_protocol");
                    break;
                }
            }
            if pool.pages_in_use() > pool.capacity_pages() || !pool.accounting_balanced() {
                fail(&mut failed, "pool_capacity");
            }
        }
        drop(seqs);
        if pool.pages_in_use() != 0 || mem.used() != 0 {
            fail(&mut failed, "zero_leaks");
        }
    }

    // I4 ladder_monotone — replicate the scheduler's clamp and require
    // the effective predicted step time never rises along the ladder.
    if let Some(ladder) = cfg.ladder.as_ref() {
        let mut eff = 1.0f64;
        let mut prev_step = plan.est_step_seconds;
        for level in 1..=64 {
            let Some(rung) = ladder.rung(level) else { break };
            eff = eff.min(rung.step_time_factor);
            let step = plan.est_step_seconds * eff;
            if eff.is_nan() || eff <= 0.0 || step > prev_step + 1e-12 {
                fail(&mut failed, "ladder_monotone");
                break;
            }
            prev_step = step;
        }
    }

    // I5 ttft_floor — the predictor must respect the physical floor
    // (one prefill + one step) and be monotone in queue position.
    let prefill_s = backend.prefill_seconds(plan.slot_context, plan.slots.max(1));
    let floor_s = prefill_s + plan.est_step_seconds;
    let ttft = TtftModel {
        slots: plan.slots,
        free_slots: plan.slots,
        remaining_sorted: Vec::new(),
        mean_gen_steps: 32.0,
        prefill_s,
        step_s: plan.est_step_seconds,
    };
    let floor_us = (floor_s * 1e6).ceil().max(0.0) as u64;
    let mut prev = 0u64;
    for pos in 0..(2 * plan.slots.max(1) + 4) {
        let t = ttft.predict_rel_ttft_us(pos);
        if t < floor_us || t < prev {
            fail(&mut failed, "ttft_floor");
            break;
        }
        prev = t;
    }

    // I6 slo_meetable — a configured objective must clear the floor.
    if let Some(slo) = cfg.slo.as_ref() {
        if slo.ttft_p99_s < floor_s {
            fail(&mut failed, "slo_meetable");
        }
    }

    failed
}

/// Run the sweep at `depth` with `mutation` applied to the executable
/// side of every point.
pub fn run_sweep(depth: SweepDepth, mutation: Mutation) -> SweepReport {
    let models = model_axis(depth);
    let pools = pool_axis(depth);
    let pages = page_axis(depth);
    let slos = slo_axis(depth);
    let ladders = ladder_axis(depth);

    let axes = vec![
        ("model".to_string(), models.len() as u64),
        ("pool_bytes".to_string(), pools.len() as u64),
        ("page_tokens".to_string(), pages.len() as u64),
        ("slo".to_string(), slos.len() as u64),
        ("ladder".to_string(), ladders.len() as u64),
    ];

    let mut report = SweepReport {
        axes,
        configs: 0,
        unsoundness: Vec::new(),
        incompleteness: 0,
        consistent: 0,
    };

    for m in &models {
        let backend = AnalyticBackend::new(
            lm_hardware::presets::single_gpu_a100(),
            m.cfg.clone(),
            Policy::flexgen_default(),
        );
        // One worst-case slab at the default planning context, used to
        // express the pool axis in model-relative units.
        let default_context = ((m.cfg.max_seq_len / 4) as usize).max(2);
        let slab_bytes = backend.kv_bytes_at(default_context).max(1);
        for &pool_mult in &pools {
            for &page_tokens in &pages {
                for &slo in &slos {
                    for &ladder in &ladders {
                        let cfg = ServeConfig {
                            kv_pool_bytes: pool_mult * slab_bytes,
                            page_tokens,
                            kv_mode: KvMode::Paged,
                            slo: slo.policy(),
                            ladder: ladder.ladder(),
                            ..ServeConfig::default()
                        };
                        let (plan, mut lint_report) = derive_plan(&backend, &cfg);
                        // The plan-time verdict the sweep judges is the
                        // whole shipped pre-flight: LMA25x/LMA28x from
                        // `derive_plan` plus the LMA26x SLO lints the
                        // serve path runs when a policy is configured.
                        if let Some(slo) = cfg.slo.as_ref() {
                            lint_report.extend(lm_analyze::lint_slo(&slo_probe(
                                &plan,
                                &backend,
                                slo,
                                cfg.ladder.as_ref(),
                            )));
                        }
                        let lint_clean = lint_report.is_clean();
                        let failed = ground_truth(&backend, &cfg, &plan, mutation);
                        let truth_ok = failed.is_empty();
                        report.configs += 1;
                        let config = format!(
                            "{}/pool={}x/page={}/slo={}/ladder={}",
                            m.name,
                            pool_mult,
                            page_tokens,
                            slo.name(),
                            ladder.name()
                        );
                        match (lint_clean, truth_ok) {
                            (true, false) => report.unsoundness.push(UnsoundnessWitness {
                                config,
                                invariant: failed.join("+"),
                                detail: format!(
                                    "plan: slots={} pages_total={} pages_per_slot={} \
                                     page_tokens={} — lints clean, execution violated [{}]",
                                    plan.slots,
                                    plan.pages_total,
                                    plan.pages_per_slot,
                                    plan.page_tokens,
                                    failed.join(", ")
                                ),
                            }),
                            (false, true) => report.incompleteness += 1,
                            _ => report.consistent += 1,
                        }
                    }
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_lattice_covers_the_floor_with_no_degenerate_axis() {
        let axes_product: u64 = [
            model_axis(SweepDepth::Quick).len(),
            pool_axis(SweepDepth::Quick).len(),
            page_axis(SweepDepth::Quick).len(),
            slo_axis(SweepDepth::Quick).len(),
            ladder_axis(SweepDepth::Quick).len(),
        ]
        .iter()
        .map(|&n| n as u64)
        .product();
        assert!(axes_product >= 200, "quick lattice too small: {axes_product}");
        for n in [
            model_axis(SweepDepth::Quick).len(),
            pool_axis(SweepDepth::Quick).len(),
            page_axis(SweepDepth::Quick).len(),
            slo_axis(SweepDepth::Quick).len(),
            ladder_axis(SweepDepth::Quick).len(),
        ] {
            assert!(n >= 2, "degenerate axis in the quick lattice");
        }
    }

    #[test]
    fn shipped_planner_has_zero_unsoundness_witnesses_on_one_model_slice() {
        // The full quick sweep runs under `repro verify`; here a single
        // model keeps the unit suite fast while still crossing every
        // other axis.
        let report = run_sweep_single_model(Mutation::None);
        assert!(
            report.unsoundness.is_empty(),
            "unsoundness witnesses: {:?}",
            report.unsoundness
        );
        assert!(report.consistent > 0);
    }

    #[test]
    fn overgrant_mutation_is_caught_as_a_witness() {
        let report = run_sweep_single_model(Mutation::OvergrantPage);
        assert!(
            !report.unsoundness.is_empty(),
            "the seeded over-grant must produce at least one LMA291 witness"
        );
        let w = &report.unsoundness[0];
        assert!(w.invariant.contains("slots_feasible") || w.invariant.contains("pool_capacity"),
            "unexpected invariant: {}", w.invariant);
    }

    /// One-model slice of the quick lattice, for unit-test cost.
    fn run_sweep_single_model(mutation: Mutation) -> SweepReport {
        let backend = AnalyticBackend::opt_30b();
        let m = presets::opt_30b();
        let default_context = ((m.max_seq_len / 4) as usize).max(2);
        let slab_bytes = backend.kv_bytes_at(default_context).max(1);
        let mut report = SweepReport {
            axes: Vec::new(),
            configs: 0,
            unsoundness: Vec::new(),
            incompleteness: 0,
            consistent: 0,
        };
        for &pool_mult in &pool_axis(SweepDepth::Quick) {
            for &page_tokens in &page_axis(SweepDepth::Quick) {
                let cfg = ServeConfig {
                    kv_pool_bytes: pool_mult * slab_bytes,
                    page_tokens,
                    kv_mode: KvMode::Paged,
                    ..ServeConfig::default()
                };
                let (plan, lint_report) = derive_plan(&backend, &cfg);
                let failed = ground_truth(&backend, &cfg, &plan, mutation);
                report.configs += 1;
                match (lint_report.is_clean(), failed.is_empty()) {
                    (true, false) => report.unsoundness.push(UnsoundnessWitness {
                        config: format!("opt-30b/pool={pool_mult}x/page={page_tokens}"),
                        invariant: failed.join("+"),
                        detail: String::new(),
                    }),
                    (false, true) => report.incompleteness += 1,
                    _ => report.consistent += 1,
                }
            }
        }
        report
    }

    #[test]
    fn sweep_report_is_deterministic() {
        let a = serde_json::to_string(&run_sweep_single_model(Mutation::None)).unwrap();
        let b = serde_json::to_string(&run_sweep_single_model(Mutation::None)).unwrap();
        assert_eq!(a, b);
    }
}
