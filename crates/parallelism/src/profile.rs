//! Offline profiling tables (§4.2): per-operator execution times under
//! each intra-op thread count, collected once and reused during online
//! inference.
//!
//! In the paper these come from measuring PyTorch operators; here they
//! can be *synthesised* from the operator's FLOP/byte counts and the
//! calibrated [`CpuScalingModel`] (the large-platform path), or
//! *measured* on this machine by actually running each operator at each
//! thread count ([`ProfileTable::measure`]) — the paper's offline
//! profiling step, executed for real.

use crate::graph::OpGraph;
use crate::scaling::CpuScalingModel;
use serde::{Deserialize, Serialize};

/// Per-operator launch overhead: the paper notes operator times are at
/// micro-second level where "the overhead of thread scheduling can easily
/// kill the performance".
pub const LAUNCH_OVERHEAD_SECS: f64 = 5e-6;

/// Execution-time table: `times[node][t-1]` is the time of `node` with `t`
/// intra-op threads (no co-run contention — that is applied at schedule
/// time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileTable {
    times: Vec<Vec<f64>>,
    max_threads: u32,
}

impl ProfileTable {
    /// Synthesise a table for `graph` on a CPU with sustained scalar rates
    /// `flops_rate` (FLOP/s, single thread) and `bytes_rate` (B/s, single
    /// thread): an operator's single-thread time is the roofline
    /// `max(flops/flops_rate, bytes/bytes_rate)` plus launch overhead.
    pub fn synthesize(
        graph: &OpGraph,
        model: &CpuScalingModel,
        flops_rate: f64,
        bytes_rate: f64,
        max_threads: u32,
    ) -> Self {
        assert!(max_threads >= 1, "max_threads must be positive");
        assert!(flops_rate > 0.0 && bytes_rate > 0.0, "rates must be positive");
        let times = graph
            .nodes
            .iter()
            .map(|n| {
                let base =
                    (n.flops / flops_rate).max(n.bytes / bytes_rate) + LAUNCH_OVERHEAD_SECS;
                (1..=max_threads)
                    .map(|t| base / model.intra_speedup(t))
                    .collect()
            })
            .collect();
        ProfileTable { times, max_threads }
    }

    /// Build from explicit measurements (`measured[node][t-1]`).
    pub fn from_measurements(measured: Vec<Vec<f64>>) -> Self {
        assert!(!measured.is_empty(), "empty profile");
        let max_threads = measured[0].len() as u32;
        assert!(max_threads >= 1, "profile needs at least one thread column");
        assert!(
            measured.iter().all(|r| r.len() as u32 == max_threads),
            "ragged profile table"
        );
        ProfileTable {
            times: measured,
            max_threads,
        }
    }

    pub fn num_nodes(&self) -> usize {
        self.times.len()
    }

    pub fn max_threads(&self) -> u32 {
        self.max_threads
    }

    /// Time of `node` with `threads` intra-op threads (clamped to the
    /// profiled range, matching how a runtime would reuse its table).
    pub fn time(&self, node: usize, threads: u32) -> f64 {
        let t = threads.clamp(1, self.max_threads);
        self.times[node][(t - 1) as usize]
    }

    /// All node times at a given intra-op thread count.
    pub fn node_times(&self, threads: u32) -> Vec<f64> {
        (0..self.num_nodes())
            .map(|n| self.time(n, threads))
            .collect()
    }

    /// Measure a profile on this machine: run `work(node, threads)` for
    /// every (node, thread-count) cell `runs` times and keep the minimum
    /// wall-clock time — the paper's "offline profiling happens only
    /// once" step, done for real.
    pub fn measure<F>(graph: &OpGraph, max_threads: u32, runs: u32, work: F) -> Self
    where
        F: Fn(usize, u32),
    {
        assert!(max_threads >= 1 && runs >= 1, "degenerate profiling setup");
        let times = (0..graph.len())
            .map(|node| {
                (1..=max_threads)
                    .map(|t| {
                        let mut best = f64::INFINITY;
                        for _ in 0..runs {
                            let t0 = std::time::Instant::now();
                            work(node, t);
                            best = best.min(t0.elapsed().as_secs_f64());
                        }
                        best.max(1e-9)
                    })
                    .collect()
            })
            .collect();
        ProfileTable { times, max_threads }
    }

    /// Convenience: measure using the synthetic CPU-burn workload sized
    /// by each node's modelled FLOPs (scaled by `work_scale` so profiling
    /// stays fast).
    pub fn measure_burn(graph: &OpGraph, max_threads: u32, work_scale: f64) -> Self {
        ProfileTable::measure(graph, max_threads, 3, |node, threads| {
            crate::executor::burn(graph.nodes[node].flops * work_scale, threads as usize)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::attention_graph;
    use lm_hardware::presets;

    fn setup() -> (OpGraph, ProfileTable) {
        let g = attention_graph(64, 128, 512, 4);
        let model = CpuScalingModel::from_cpu(&presets::single_gpu_a100().cpu);
        let p = ProfileTable::synthesize(&g, &model, 5e9, 10e9, 56);
        (g, p)
    }

    #[test]
    fn more_threads_never_slower_per_op() {
        let (g, p) = setup();
        for n in 0..g.len() {
            for t in 1..28u32 {
                assert!(
                    p.time(n, t + 1) <= p.time(n, t) * 1.0001,
                    "node {n}: t={t}"
                );
            }
        }
    }

    #[test]
    fn launch_overhead_floors_tiny_ops() {
        let (g, p) = setup();
        // kv_concat has zero flops but still costs at least the launch
        // overhead.
        let concat = g.nodes.iter().position(|n| n.name == "kv_concat").unwrap();
        assert!(p.time(concat, 56) >= LAUNCH_OVERHEAD_SECS / 10.0);
    }

    #[test]
    fn clamps_out_of_range_threads() {
        let (_, p) = setup();
        assert_eq!(p.time(0, 0), p.time(0, 1));
        assert_eq!(p.time(0, 999), p.time(0, 56));
    }

    #[test]
    fn node_times_matches_per_node_lookup() {
        let (g, p) = setup();
        let all = p.node_times(8);
        assert_eq!(all.len(), g.len());
        for (n, &t) in all.iter().enumerate() {
            assert_eq!(t, p.time(n, 8));
        }
    }

    #[test]
    #[should_panic(expected = "ragged profile")]
    fn ragged_measurements_rejected() {
        ProfileTable::from_measurements(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    fn measured_profile_is_well_formed_and_usable() {
        // A real measurement pass on a tiny graph: every cell positive,
        // shape matches, and the table drives the Algorithm 3 estimator.
        // The unit work scale matters: `burn` floors at one iteration, so
        // a scale small enough to zero out q_proj's 4096 modelled FLOPs
        // would make every node an identical one-iteration workload and
        // the ordering below a coin flip.
        let g = attention_graph(2, 4, 32, 2);
        let p = ProfileTable::measure_burn(&g, 2, 1.0);
        assert_eq!(p.num_nodes(), g.len());
        assert_eq!(p.max_threads(), 2);
        for n in 0..g.len() {
            for t in 1..=2 {
                assert!(p.time(n, t) > 0.0, "node {n} t {t}");
            }
        }
        // Bigger modelled ops must measure slower single-threaded (the
        // projections dominate the concat). Any single wall-clock pass can
        // catch a scheduler blip when the whole workspace's tests run in
        // parallel, so compare minimum-of-N times per node — the minimum
        // converges on the true cost under contention where a mean or a
        // lone sample does not.
        let concat = g.nodes.iter().position(|n| n.name == "kv_concat").unwrap();
        let proj = g.nodes.iter().position(|n| n.name == "q_proj").unwrap();
        let (mut proj_min, mut concat_min) = (p.time(proj, 1), p.time(concat, 1));
        for _ in 0..8 {
            if proj_min > concat_min {
                break;
            }
            let p = ProfileTable::measure_burn(&g, 2, 1.0);
            proj_min = proj_min.min(p.time(proj, 1));
            concat_min = concat_min.min(p.time(concat, 1));
        }
        assert!(
            proj_min > concat_min,
            "q_proj never measured slower than kv_concat ({proj_min:.2e} vs {concat_min:.2e})"
        );
    }
}
