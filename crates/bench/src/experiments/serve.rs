//! `repro serve` — the continuous-batching serving experiment: the same
//! seeded OPT-30B traffic trace is served three ways (continuous
//! batching, one-call-per-request, naive static batching) on the
//! analytic backend's virtual clock, and continuous batching must
//! dominate both baselines. TTFT and end-to-end latency percentiles come
//! from each run's own `lm-trace` histogram snapshot.

use lm_serve::{
    serve_continuous, serve_sequential, serve_static, synth_traffic, AnalyticBackend,
    ServeConfig, ServeOutcome, ServePlan,
};
use lm_trace::Tracer;
use serde::{Deserialize, Serialize};

pub const DEFAULT_RPS: f64 = 4.0;
pub const DEFAULT_REQUESTS: usize = 32;
pub const DEFAULT_SEED: u64 = 7;

/// The dominance bar the experiment (and the verify gate) enforces:
/// continuous batching must deliver at least this multiple of the
/// sequential baseline's throughput, and strictly beat static batching.
pub const MIN_SPEEDUP_VS_SEQUENTIAL: f64 = 1.3;

/// Latency percentiles of one serving mode, seconds (from the
/// `serve.ttft_s` / `serve.latency_s` trace histograms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    pub count: u64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencyStats {
    fn empty() -> Self {
        LatencyStats {
            count: 0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            max_s: 0.0,
        }
    }
}

/// One serving mode's results over the shared traffic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeRow {
    pub mode: String,
    pub completed: usize,
    pub rejected: usize,
    pub sim_seconds: f64,
    pub tokens_per_s: f64,
    pub generated_tokens: u64,
    pub padding_tokens: u64,
    pub kv_peak_bytes: u64,
    /// Deadline misses — *reported* by every mode, enforced by none
    /// here: the continuous scheduler counts deadline-reason rejections,
    /// the baselines count requests whose service started past their
    /// deadline, so the modes stay comparable.
    pub deadline_misses: u64,
    pub ttft: LatencyStats,
    pub latency: LatencyStats,
}

/// Everything `repro serve` writes to `results/serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    pub seed: u64,
    pub rps: f64,
    pub requests: usize,
    /// The `LMA25x`-linted admission plan every mode shares.
    pub plan: ServePlan,
    pub modes: Vec<ModeRow>,
    pub speedup_vs_sequential: f64,
    pub speedup_vs_static: f64,
    /// Continuous ≥ 1.3× sequential and > static — the verify.sh gate.
    pub dominance_ok: bool,
}

fn histogram(tracer: &Tracer, name: &str) -> LatencyStats {
    tracer
        .snapshot()
        .metrics
        .histograms
        .get(name)
        .map(|h| LatencyStats {
            count: h.count,
            p50_s: h.p50,
            p95_s: h.p95,
            p99_s: h.p99,
            max_s: h.max,
        })
        .unwrap_or_else(LatencyStats::empty)
}

fn mode_row(mode: &str, tracer: &Tracer, out: &ServeOutcome) -> ModeRow {
    ModeRow {
        mode: mode.to_string(),
        completed: out.responses.len(),
        rejected: out.rejections.len(),
        sim_seconds: out.sim_seconds,
        tokens_per_s: out.tokens_per_s(),
        generated_tokens: out.generated_tokens,
        padding_tokens: out.padding_tokens,
        kv_peak_bytes: out.kv_peak_bytes as u64,
        deadline_misses: out.deadline_misses,
        ttft: histogram(tracer, "serve.ttft_s"),
        latency: histogram(tracer, "serve.latency_s"),
    }
}

/// Serve `n` seeded requests at `rps` through all three schedulers.
pub fn run(seed: u64, rps: f64, n: usize) -> ServeReport {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, lm_serve::ServeBackend::model(&backend));

    let cont_tracer = Tracer::new();
    let cfg = ServeConfig {
        tracer: cont_tracer.clone(),
        ..ServeConfig::default()
    };
    let (plan, cont) = serve_continuous(&backend, &cfg, traffic.clone())
        .unwrap_or_else(|e| panic!("continuous serving failed: {e}"));

    let seq_tracer = Tracer::new();
    let seq_cfg = ServeConfig {
        tracer: seq_tracer.clone(),
        ..ServeConfig::default()
    };
    let seq = serve_sequential(&backend, &seq_cfg, traffic.clone())
        .unwrap_or_else(|e| panic!("sequential baseline failed: {e}"));

    let stat_tracer = Tracer::new();
    let stat_cfg = ServeConfig {
        tracer: stat_tracer.clone(),
        ..ServeConfig::default()
    };
    let stat = serve_static(&backend, &stat_cfg, plan.slots, traffic)
        .unwrap_or_else(|e| panic!("static baseline failed: {e}"));

    let speedup_vs_sequential = if seq.tokens_per_s() > 0.0 {
        cont.tokens_per_s() / seq.tokens_per_s()
    } else {
        0.0
    };
    let speedup_vs_static = if stat.tokens_per_s() > 0.0 {
        cont.tokens_per_s() / stat.tokens_per_s()
    } else {
        0.0
    };
    let dominance_ok = speedup_vs_sequential >= MIN_SPEEDUP_VS_SEQUENTIAL
        && cont.tokens_per_s() > stat.tokens_per_s();

    ServeReport {
        seed,
        rps,
        requests: n,
        plan,
        modes: vec![
            mode_row("continuous", &cont_tracer, &cont),
            mode_row("sequential", &seq_tracer, &seq),
            mode_row("static", &stat_tracer, &stat),
        ],
        speedup_vs_sequential,
        speedup_vs_static,
        dominance_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_shows_dominance() {
        let r = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(
            r.dominance_ok,
            "continuous must dominate: vs seq {:.2}x, vs static {:.2}x",
            r.speedup_vs_sequential, r.speedup_vs_static
        );
        assert_eq!(r.modes.len(), 3);
        let cont = &r.modes[0];
        assert!(cont.completed > 0);
        assert_eq!(
            cont.ttft.count as usize, cont.completed,
            "every completed request records a TTFT sample"
        );
        assert!(cont.ttft.p50_s <= cont.ttft.p99_s);
        assert!(cont.latency.p50_s >= cont.ttft.p50_s);
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run(DEFAULT_SEED, DEFAULT_RPS, 16);
        let b = run(DEFAULT_SEED, DEFAULT_RPS, 16);
        assert_eq!(
            a.modes[0].tokens_per_s.to_bits(),
            b.modes[0].tokens_per_s.to_bits()
        );
        assert_eq!(a.modes[0].sim_seconds.to_bits(), b.modes[0].sim_seconds.to_bits());
        assert_eq!(a.modes[0].generated_tokens, b.modes[0].generated_tokens);
    }
}
