//! The end-to-end engine: pick a framework, search its deployment, then
//! execute it on the ground-truth simulator. This is what the benchmark
//! harness calls for every Table 3 cell and every figure series.

use crate::controller::{derive_plan, ControllerOutput};
use crate::policy_search::lm_offload_search;
use crate::provider::{quant_aware_provider, ThreadFactors};
use crate::quant_model::QuantCostParams;
use lm_baselines::flexgen::{flexgen_search, Deployment};
use lm_baselines::zero::zero_search;
use lm_hardware::Platform;
use lm_models::ModelConfig;
use lm_sim::{
    memory_plan, simulate, simulate_pipeline, MemoryPlan, PipelineReport, SimReport,
};
use serde::{Deserialize, Serialize};

/// The three frameworks of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    FlexGen,
    ZeroInference,
    LmOffload,
}

impl Framework {
    pub const ALL: [Framework; 3] = [
        Framework::FlexGen,
        Framework::ZeroInference,
        Framework::LmOffload,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Framework::FlexGen => "FlexGen",
            Framework::ZeroInference => "ZeRO-Inference",
            Framework::LmOffload => "LM-Offload",
        }
    }

    /// The kernel quality of the runtime that executes this framework's
    /// policies (see `QuantCostParams`).
    pub fn kernels(self) -> QuantCostParams {
        match self {
            Framework::LmOffload => QuantCostParams::lm_offload_kernels(),
            _ => QuantCostParams::flexgen_kernels(),
        }
    }
}

/// One benchmark cell configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    pub platform: Platform,
    pub model: ModelConfig,
    pub prompt_len: u64,
    pub gen_len: u64,
    /// Disable LM-Offload's thread-level parallelism control (the Fig. 7
    /// ablation isolating the performance-modeling benefit).
    pub parallelism_control: bool,
}

impl EngineConfig {
    pub fn new(platform: &Platform, model: &ModelConfig, prompt_len: u64, gen_len: u64) -> Self {
        EngineConfig {
            platform: platform.clone(),
            model: model.clone(),
            prompt_len,
            gen_len,
            parallelism_control: true,
        }
    }
}

/// A framework's simulated run of one cell.
#[derive(Debug, Clone)]
pub struct FrameworkRun {
    pub framework: Framework,
    pub deployment: Deployment,
    pub mem: MemoryPlan,
    pub sim: SimReport,
    /// The parallelism plan, when the controller ran.
    pub controller: Option<ControllerOutput>,
}

impl FrameworkRun {
    /// Ground-truth throughput (tokens/s) from the simulator.
    pub fn throughput(&self) -> f64 {
        self.sim.throughput
    }
}

fn search_deployment(framework: Framework, cfg: &EngineConfig) -> Option<Deployment> {
    match framework {
        Framework::FlexGen => {
            flexgen_search(&cfg.platform, &cfg.model, cfg.prompt_len, cfg.gen_len)
        }
        Framework::ZeroInference => {
            zero_search(&cfg.platform, &cfg.model, cfg.prompt_len, cfg.gen_len)
        }
        Framework::LmOffload => lm_offload_search(
            &cfg.platform,
            &cfg.model,
            cfg.prompt_len,
            cfg.gen_len,
            QuantCostParams::lm_offload_kernels(),
            if cfg.parallelism_control {
                ThreadFactors::Controlled
            } else {
                ThreadFactors::Default
            },
        ),
    }
}

fn thread_factors(framework: Framework, cfg: &EngineConfig) -> ThreadFactors {
    match framework {
        Framework::LmOffload if cfg.parallelism_control => ThreadFactors::Controlled,
        _ => ThreadFactors::Default,
    }
}

/// Search and simulate one framework on one cell. Returns `None` when no
/// feasible deployment exists.
pub fn run_framework(framework: Framework, cfg: &EngineConfig) -> Option<FrameworkRun> {
    let deployment = search_deployment(framework, cfg)?;
    let threads = thread_factors(framework, cfg);
    let provider = quant_aware_provider(
        &cfg.platform,
        &cfg.model,
        &deployment.workload,
        deployment.policy,
        framework.kernels(),
        threads,
    );
    let sim = simulate(&provider, &deployment.workload, cfg.model.num_layers);
    let mem = memory_plan(&cfg.model, &deployment.workload, &cfg.platform, &deployment.policy);
    let controller = (framework == Framework::LmOffload && cfg.parallelism_control).then(|| {
        derive_plan(
            &cfg.platform,
            &cfg.model,
            &deployment.workload,
            &deployment.policy,
        )
    });
    Some(FrameworkRun {
        framework,
        deployment,
        mem,
        sim,
        controller,
    })
}

/// Pipeline-parallel multi-GPU run of one framework (Fig. 9): weak
/// scaling, batch doubling with the GPU count.
pub fn run_pipeline(
    framework: Framework,
    cfg: &EngineConfig,
    num_gpus: u32,
) -> Option<PipelineReport> {
    let deployment = search_deployment(framework, cfg)?;
    // Weak scaling: double the per-GPU batch count with the GPUs.
    let mut w = deployment.workload;
    w = lm_models::Workload::new(
        w.prompt_len,
        w.gen_len,
        w.gpu_batch,
        w.num_batches * num_gpus as u64,
    );
    let provider = quant_aware_provider(
        &cfg.platform,
        &cfg.model,
        &w,
        deployment.policy,
        framework.kernels(),
        thread_factors(framework, cfg),
    );
    Some(simulate_pipeline(
        &provider,
        &w,
        cfg.model.num_layers,
        num_gpus,
        framework == Framework::LmOffload && cfg.parallelism_control,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn cell(gen: u64) -> EngineConfig {
        EngineConfig::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            64,
            gen,
        )
    }

    #[test]
    fn lm_offload_beats_flexgen_on_opt30b() {
        // The §5.2 headline, one cell: LM-Offload > FlexGen.
        let cfg = cell(32);
        let lm = run_framework(Framework::LmOffload, &cfg).unwrap();
        let fg = run_framework(Framework::FlexGen, &cfg).unwrap();
        assert!(
            lm.throughput() > fg.throughput(),
            "LM {} vs FG {}",
            lm.throughput(),
            fg.throughput()
        );
    }

    #[test]
    fn lm_offload_beats_zero_on_short_generation() {
        let cfg = cell(8);
        let lm = run_framework(Framework::LmOffload, &cfg).unwrap();
        let zero = run_framework(Framework::ZeroInference, &cfg).unwrap();
        assert!(lm.throughput() > zero.throughput());
        // §5.2: LM-Offload's block sizes dwarf ZeRO's batches.
        assert!(
            lm.deployment.workload.block_size() >= 4 * zero.deployment.workload.block_size()
        );
    }

    #[test]
    fn parallelism_control_ablation_still_wins_but_less() {
        // Fig. 7: even without parallelism control LM-Offload beats
        // FlexGen; with control it does better still.
        let mut cfg = cell(32);
        let fg = run_framework(Framework::FlexGen, &cfg).unwrap();
        cfg.parallelism_control = false;
        let lm_noctl = run_framework(Framework::LmOffload, &cfg).unwrap();
        cfg.parallelism_control = true;
        let lm_full = run_framework(Framework::LmOffload, &cfg).unwrap();
        assert!(lm_noctl.throughput() > fg.throughput());
        assert!(lm_full.throughput() >= lm_noctl.throughput());
        assert!(lm_noctl.controller.is_none());
        assert!(lm_full.controller.is_some());
    }

    #[test]
    fn pipeline_gap_grows_with_gpus() {
        // Fig. 9's shape: LM-Offload / FlexGen ratio grows from 1 to 4
        // GPUs.
        let mut last_ratio = 0.0;
        for g in [1u32, 2, 4] {
            let platform = presets::multi_gpu_v100(g);
            let cfg = EngineConfig::new(&platform, &models::opt_13b(), 256, 64);
            let lm = run_pipeline(Framework::LmOffload, &cfg, g).unwrap();
            let fg = run_pipeline(Framework::FlexGen, &cfg, g).unwrap();
            let ratio = lm.throughput / fg.throughput;
            assert!(ratio >= 1.0, "g={g}: {ratio}");
            assert!(ratio >= last_ratio, "gap must not shrink: g={g}");
            last_ratio = ratio;
        }
    }
}
