//! `lm-verify` — exhaustive bounded verification of the planning and
//! serving stack (DESIGN.md §15).
//!
//! Two complementary instruments, both deterministic:
//!
//! 1. **Planner-space sweep** ([`lattice`]): enumerate a bounded lattice
//!    of deployment configs (model size × pool bytes × page geometry ×
//!    SLO policy × degrade ladder) and prove at every point that the
//!    lint verdict is consistent with *executable* ground truth — the
//!    planned admissions are actually granted by a real paged pool,
//!    capacity and accounting hold throughout, teardown leaks nothing,
//!    the degrade ladder is monotone in predicted step time, and TTFT
//!    predictions respect the physical floor. A config where the lints
//!    pass but ground truth fails is a **lint-unsoundness witness**
//!    (`LMA291`); a config the lints reject while every invariant holds
//!    is **lint incompleteness** (reported, tolerated).
//!
//! 2. **Protocol model checking** ([`protocol`]): bounded-interleaving
//!    exploration (vendored loom, CHESS-style preemption bound) of the
//!    paged-KV grant/append/COW-fork/drop protocol and the scheduler
//!    admit/preempt/shed/cancel lifecycle, with refcount conservation,
//!    no-double-grant, zero-leak quiescence, and terminal-state
//!    totality asserted on every interleaving, plus transition-coverage
//!    accounting for `LMA292`.
//!
//! The outputs of both fold into one [`VerifyProbe`] judged by
//! `lm-analyze`'s `LMA29x` family; `repro verify` publishes the result
//! as `results/verify.json` and `scripts/verify.sh` gates on it.

#![cfg_attr(test, allow(clippy::unwrap_used))]
#![cfg_attr(not(test), deny(clippy::expect_used))]

pub mod lattice;
pub mod protocol;

pub use lattice::{run_sweep, Mutation, SweepDepth, SweepPoint, SweepReport};
pub use protocol::{
    check_kvpool_protocol, check_scheduler_protocol, kvpool_declared, scheduler_declared,
    ProtocolReport,
};

use lm_analyze::VerifyProbe;
use std::collections::BTreeSet;

/// Minimum lattice points for a sweep to count as coverage (`LMA290`
/// fires below this floor).
pub const CONFIGS_FLOOR: u64 = 200;

/// Fold a finished sweep and the protocol explorations into the probe
/// `lm-analyze`'s `LMA29x` lints judge.
pub fn build_probe(sweep: &SweepReport, protocols: &[ProtocolReport]) -> VerifyProbe {
    let declared: BTreeSet<String> = protocols
        .iter()
        .flat_map(|p| p.declared.iter().cloned())
        .collect();
    let exercised: BTreeSet<String> = protocols
        .iter()
        .flat_map(|p| p.exercised.iter().cloned())
        .collect();
    VerifyProbe {
        axes: sweep.axes.clone(),
        configs_explored: sweep.configs,
        configs_floor: CONFIGS_FLOOR,
        unsoundness_witnesses: sweep.unsoundness.clone(),
        declared_transitions: declared.into_iter().collect(),
        exercised_transitions: exercised.into_iter().collect(),
        interleavings: protocols.iter().map(|p| p.interleavings).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_assembly_unions_transitions_and_sums_interleavings() {
        let sweep = SweepReport {
            axes: vec![("model".into(), 3), ("pool".into(), 4)],
            configs: 288,
            unsoundness: Vec::new(),
            incompleteness: 7,
            consistent: 281,
        };
        let mk = |name: &str, n: u64, decl: &[&str], exer: &[&str]| ProtocolReport {
            name: name.into(),
            interleavings: n,
            truncated: false,
            failure: None,
            declared: decl.iter().map(|s| s.to_string()).collect(),
            exercised: exer.iter().map(|s| s.to_string()).collect(),
        };
        let probe = build_probe(
            &sweep,
            &[
                mk("kvpool", 6_000, &["k:a", "k:b"], &["k:a", "k:b"]),
                mk("scheduler", 5_000, &["s:a"], &["s:a"]),
            ],
        );
        assert_eq!(probe.interleavings, 11_000);
        assert_eq!(probe.configs_explored, 288);
        assert_eq!(
            probe.declared_transitions,
            vec!["k:a".to_string(), "k:b".to_string(), "s:a".to_string()]
        );
        assert_eq!(probe.declared_transitions, probe.exercised_transitions);
    }
}
