//! The unified generation request vocabulary: [`GenerateRequest`] plus
//! the single validation checker shared by [`crate::Engine::run`] and the
//! `lm-serve` admission controller.
//!
//! Historically the engine exposed two batch-synchronous entry points
//! (`generate` and `generate_zigzag`, deleted in 0.2) whose copy-pasted
//! validation preambles `assert!`ed on malformed input — acceptable for
//! offline experiments, fatal for a serving process admitting untrusted
//! traffic. [`crate::Engine::run`] is the sole entry point, and every
//! check lives in [`validate_request`], which returns a typed
//! [`EngineError::InvalidRequest`](crate::EngineError::InvalidRequest)
//! instead of panicking.

use crate::generate::EngineError;
use lm_models::ModelConfig;

/// A validated-on-entry generation request: the single argument of
/// [`crate::Engine::run`]. FlexGen's zig-zag block schedule is not a
/// separate entry point any more — it is just `num_batches > 1`.
///
/// ```
/// use lm_engine::GenerateRequest;
/// let req = GenerateRequest::new(vec![vec![1, 2, 3], vec![4, 5, 6]], 8)
///     .with_batches(2);
/// assert_eq!(req.num_batches, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenerateRequest {
    /// Prompt token ids, one row per sequence. All rows must share a
    /// length; ragged traffic is padded by the `lm-serve` scheduler, not
    /// by the engine.
    pub prompts: Vec<Vec<u32>>,
    /// Tokens to generate per row (beyond the prompt).
    pub gen_len: usize,
    /// GPU batches per zig-zag block; `1` is the plain single-batch
    /// schedule, `> 1` amortises each layer fetch across the block.
    pub num_batches: usize,
}

impl GenerateRequest {
    /// A single-batch request.
    pub fn new(prompts: impl Into<Vec<Vec<u32>>>, gen_len: usize) -> Self {
        GenerateRequest {
            prompts: prompts.into(),
            gen_len,
            num_batches: 1,
        }
    }

    /// Split the prompts into `num_batches` zig-zag batches.
    pub fn with_batches(mut self, num_batches: usize) -> Self {
        self.num_batches = num_batches;
        self
    }

    /// Prompt length shared by every row, if the batch is well-formed.
    pub fn prompt_len(&self) -> Option<usize> {
        let s = self.prompts.first()?.len();
        self.prompts.iter().all(|p| p.len() == s).then_some(s)
    }

    /// Run the shared checker against `cfg` without an engine.
    pub fn validate_for(&self, cfg: &ModelConfig) -> Result<(), EngineError> {
        validate_request(cfg, &self.prompts, self.gen_len, self.num_batches)
    }
}

/// The one request checker: every malformed shape that used to trip an
/// `assert!` in the pre-0.2 entry-point preambles surfaces here
/// as [`EngineError::InvalidRequest`]. The `lm-serve` admission
/// controller calls this per request before leasing a slot, so bad
/// serving traffic is rejected instead of panicking the engine.
pub fn validate_request(
    cfg: &ModelConfig,
    prompts: &[Vec<u32>],
    gen_len: usize,
    num_batches: usize,
) -> Result<(), EngineError> {
    let invalid = |reason: String| Err(EngineError::InvalidRequest { reason });
    if num_batches < 1 {
        return invalid("need at least one batch".into());
    }
    if prompts.is_empty() {
        return invalid("empty batch".into());
    }
    if !prompts.len().is_multiple_of(num_batches) {
        return invalid(format!(
            "prompt count {} must divide into {num_batches} equal batches",
            prompts.len()
        ));
    }
    let s = prompts[0].len();
    if s == 0 {
        return invalid("empty prompt".into());
    }
    if !prompts.iter().all(|p| p.len() == s) {
        return invalid(
            "prompts must share a length (ragged requests are padded by the \
             lm-serve scheduler, not the engine)"
                .into(),
        );
    }
    if (s + gen_len) as u64 > cfg.max_seq_len {
        return invalid(format!(
            "context {s} + {gen_len} exceeds max_seq_len {}",
            cfg.max_seq_len
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    fn reason(err: Result<(), EngineError>) -> String {
        match err {
            Err(EngineError::InvalidRequest { reason }) => reason,
            other => panic!("expected InvalidRequest, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn builder_defaults_to_single_batch() {
        let req = GenerateRequest::new(vec![vec![1, 2]], 4);
        assert_eq!(req.num_batches, 1);
        assert_eq!(req.prompt_len(), Some(2));
        assert_eq!(GenerateRequest::new(vec![vec![1], vec![2, 3]], 1).prompt_len(), None);
    }

    #[test]
    fn every_malformed_shape_is_a_typed_error() {
        let cfg = presets::tiny_test();
        assert!(reason(validate_request(&cfg, &[], 4, 1)).contains("empty batch"));
        assert!(reason(validate_request(&cfg, &[vec![]], 4, 1)).contains("empty prompt"));
        assert!(reason(validate_request(&cfg, &[vec![1], vec![2, 3]], 4, 1))
            .contains("share a length"));
        assert!(reason(validate_request(&cfg, &[vec![1, 2], vec![3, 4]], 4, 0))
            .contains("at least one batch"));
        let three = vec![vec![1u32]; 3];
        assert!(reason(validate_request(&cfg, &three, 4, 2)).contains("divide"));
        let long = vec![vec![7u32; 500]];
        assert!(reason(validate_request(&cfg, &long, 100, 1)).contains("max_seq_len"));
    }

    #[test]
    fn well_formed_requests_pass() {
        let cfg = presets::tiny_test();
        assert!(validate_request(&cfg, &[vec![1, 2], vec![3, 4]], 8, 2).is_ok());
        let req = GenerateRequest::new(vec![vec![1, 2, 3]], 4);
        assert!(req.validate_for(&cfg).is_ok());
    }
}
