//! Self-tests for the vendored loom checker — the instrument `lm-verify`
//! trusts for every protocol verdict, so the instrument itself is
//! calibrated here: a seeded racy counter (a textbook lost update) MUST
//! be found, a correctly locked protocol MUST pass, and the bounded
//! DFS MUST be deterministic run-over-run (the `repro verify` artifact
//! is byte-compared across runs).

#![allow(clippy::unwrap_used)]

use loom::{explore, Exploration, Options};

/// Two threads do a non-atomic read-modify-write on a shared counter
/// (`load` then `store(v + 1)` with a preemption window between). The
/// lost-update interleaving needs exactly one preemption, so even the
/// tightest bound must find the seeded bug.
fn racy_counter() -> Exploration {
    explore(Options::default(), || {
        use loom::sync::atomic::{AtomicUsize, Ordering};
        use loom::sync::Arc;
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    let v = counter.load(Ordering::SeqCst);
                    counter.store(v + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(Ordering::SeqCst),
            2,
            "lost update: both increments read the same base"
        );
    })
}

#[test]
fn seeded_racy_counter_is_found() {
    let outcome = racy_counter();
    let failure = outcome.failure.expect("the checker must find the lost update");
    assert!(
        failure.contains("lost update"),
        "failure must carry the assertion message: {failure}"
    );
    assert!(!outcome.truncated);
}

#[test]
fn safe_mutex_protocol_passes() {
    let outcome = explore(Options::default(), || {
        use loom::sync::{Arc, Mutex};
        let counter = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let counter = Arc::clone(&counter);
                loom::thread::spawn(move || {
                    let mut g = counter.lock();
                    *g += 1;
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 2);
    });
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(
        outcome.executions > 1,
        "a two-thread mutex protocol has more than one interleaving"
    );
}

#[test]
fn exploration_is_deterministic_and_stops_at_first_failure() {
    let a = racy_counter();
    let b = racy_counter();
    assert_eq!(a.executions, b.executions, "DFS order must be reproducible");
    assert_eq!(a.failure, b.failure);
}

#[test]
fn iteration_cap_reports_truncation_instead_of_false_confidence() {
    let outcome = explore(
        Options {
            preemption_bound: 3,
            max_iterations: 2,
        },
        || {
            use loom::sync::{Arc, Mutex};
            let m = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let m = Arc::clone(&m);
                    loom::thread::spawn(move || {
                        *m.lock() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        },
    );
    assert!(outcome.truncated, "2 iterations cannot exhaust this tree");
    assert!(!outcome.passed(), "a truncated search must not claim a pass");
    assert!(outcome.failure.is_none(), "truncation is not a failure");
}

#[test]
fn preemption_bound_zero_still_runs_the_voluntary_schedules() {
    // With no preemptions allowed, only voluntary switches (finish,
    // block) branch; the exploration still runs and passes on safe code.
    let outcome = explore(
        Options {
            preemption_bound: 0,
            max_iterations: 1_000,
        },
        || {
            let h = loom::thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        },
    );
    assert!(outcome.passed(), "{:?}", outcome.failure);
    assert!(outcome.executions >= 1);
}
