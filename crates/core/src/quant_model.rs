//! The paper's quantization performance models (§3.2, Eq. 12-24).
//!
//! Each (de)quantization is decomposed into the three dominant phases the
//! paper profiles (95% of quantization time): **find min/max**,
//! **normalization** (Eq. 10/11) and **post-processing** (packing memcpy).
//! The phases are charged at different rates, exactly as in the paper:
//!
//! - min/max is charged against *frequency* (`cpu_freq`/`gpu_freq`,
//!   Eq. 13/21) — a scalar-reduction rate, scaled by an effective
//!   parallelism factor of the kernel implementation;
//! - normalization against *FLOP/s* with 3 floating-point operations per
//!   element (Eq. 14/22) — except weight **de**quantization, whose
//!   normalization the paper rates against `gpu_freq` ("replacing
//!   cpu_freq with gpu_freq" below Eq. 16), making it the expensive term
//!   that explains Fig. 3/4's weight-quantization slowdowns;
//! - post-processing against memory bandwidth (Eq. 15/23).
//!
//! Dequantization has no min/max phase: those statistics were stored at
//! quantization time (Eq. 16/24).

use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};
use serde::{Deserialize, Serialize};

/// Implementation quality of the (de)quantization kernels.
///
/// The frequency-rated phases run at `freq × scalar_parallelism` elements
/// per second; flops/bandwidth-rated phases at `peak × kernel_efficiency`.
/// Two presets capture the two runtimes the paper measures:
/// FlexGen's torch-level group-wise kernels (slow — the large quant bars
/// of Fig. 4) and LM-Offload's optimised kernels ("effective
/// quantization", §5.2), calibrated in EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantCostParams {
    pub gpu_scalar_parallelism: f64,
    pub cpu_scalar_parallelism: f64,
    pub kernel_efficiency: f64,
}

impl QuantCostParams {
    /// FlexGen's kernels, as profiled in the §3.1 motivation study.
    pub fn flexgen_kernels() -> Self {
        QuantCostParams {
            gpu_scalar_parallelism: 8.0,
            cpu_scalar_parallelism: 4.0,
            kernel_efficiency: 0.5,
        }
    }

    /// LM-Offload's optimised kernels.
    pub fn lm_offload_kernels() -> Self {
        QuantCostParams {
            gpu_scalar_parallelism: 64.0,
            cpu_scalar_parallelism: 16.0,
            kernel_efficiency: 0.8,
        }
    }
}

/// The quantization cost model for one (platform, model, workload).
#[derive(Debug, Clone)]
pub struct QuantModel {
    pub platform: Platform,
    pub model: ModelConfig,
    pub workload: Workload,
    pub params: QuantCostParams,
}

impl QuantModel {
    pub fn new(
        platform: &Platform,
        model: &ModelConfig,
        workload: &Workload,
        params: QuantCostParams,
    ) -> Self {
        QuantModel {
            platform: platform.clone(),
            model: model.clone(),
            workload: *workload,
            params,
        }
    }

    fn gpu_minmax_rate(&self) -> f64 {
        self.platform.gpu.freq_hz * self.params.gpu_scalar_parallelism
    }

    fn cpu_minmax_rate(&self) -> f64 {
        self.platform.cpu.freq_hz * self.params.cpu_scalar_parallelism
    }

    fn gpu_elem_flops(&self) -> f64 {
        self.platform.gpu.elementwise_flops * self.params.kernel_efficiency
    }

    fn cpu_flops(&self) -> f64 {
        self.platform.cpu.flops * self.params.kernel_efficiency
    }

    fn gpu_membw(&self) -> f64 {
        self.platform.gpu.mem_bw * self.params.kernel_efficiency
    }

    fn cpu_membw(&self) -> f64 {
        self.platform.cpu.mem_bw * self.params.kernel_efficiency
    }

    // ---- Weights (Eq. 12-16) ------------------------------------------

    /// Eq. 12-15 — one-time weight quantization on the CPU for the whole
    /// model, `wc` being the fraction of weights on CPU.
    pub fn quan_pf_wgt_total(&self, wc: f64) -> f64 {
        let num = (self.model.layer_params() as f64) * wc;
        let minmax = num / self.cpu_minmax_rate(); // Eq. 13
        let norm = num * 3.0 / self.cpu_flops(); // Eq. 14
        let postprocess = DType::F16.bytes_for(num as u64) as f64 / self.cpu_membw(); // Eq. 15
        minmax + norm + postprocess
    }

    /// Eq. 16 — weight dequantization per layer load on the GPU. The
    /// normalization is rated against `gpu_freq` (see module docs) and the
    /// post-processing against GPU memory bandwidth.
    pub fn dequan_wgt_per_layer(&self, wc: f64) -> f64 {
        let num = (self.model.weights_per_layer() as f64) * wc;
        let de_norm = num * 3.0 / (self.platform.gpu.freq_hz * self.params.gpu_scalar_parallelism);
        let de_postprocess = DType::F16.bytes_for(num as u64) as f64 / self.gpu_membw();
        de_norm + de_postprocess
    }

    // ---- KV cache (Eq. 17-24) -----------------------------------------

    /// Per-element KV quantization cost on the GPU (Eq. 20-23 reduced to
    /// a rate): min/max at frequency, 3 FLOPs of normalization, one fp16
    /// element of packing traffic.
    pub fn kv_quant_per_elem(&self) -> f64 {
        1.0 / self.gpu_minmax_rate()
            + 3.0 / self.gpu_elem_flops()
            + 2.0 / self.gpu_membw()
    }

    /// Per-element KV dequantization cost on the GPU (Eq. 24): no min/max
    /// phase.
    pub fn kv_dequant_per_elem(&self) -> f64 {
        3.0 / self.gpu_elem_flops() + 2.0 / self.gpu_membw()
    }

    /// Per-element KV quantization cost on the *CPU* — paid inside the
    /// offloaded attention when the cache is stored compressed in host
    /// memory (FlexGen's `compress_cache` with CPU attention).
    pub fn kv_quant_per_elem_cpu(&self) -> f64 {
        1.0 / self.cpu_minmax_rate() + 3.0 / self.cpu_flops() + 2.0 / self.cpu_membw()
    }

    /// Per-element KV dequantization cost on the CPU (same path).
    pub fn kv_dequant_per_elem_cpu(&self) -> f64 {
        3.0 / self.cpu_flops() + 2.0 / self.cpu_membw()
    }

    /// Eq. 20 — prefill KV quantization for one layer (whole block),
    /// using the Eq. 17 size.
    pub fn quan_pf_cache_per_layer(&self) -> f64 {
        let elems = lm_models::footprint::pf_kv_cache_elems(&self.model, &self.workload) as f64;
        elems * self.kv_quant_per_elem()
    }

    /// Eq. 7's addition — quantizing one decode step's new KV for one
    /// layer and one GPU batch.
    pub fn quan_new_cache_per_batch(&self) -> f64 {
        let elems = 2.0 * self.model.hidden as f64 * self.workload.gpu_batch as f64;
        elems * self.kv_quant_per_elem()
    }

    /// Eq. 6's addition — dequantizing the old KV cache for one layer and
    /// one GPU batch at decode step `i`.
    pub fn dequan_old_cache_per_batch(&self, token: u64) -> f64 {
        let elems = 2.0
            * (self.workload.prompt_len + token + 1) as f64
            * self.model.hidden as f64
            * self.workload.gpu_batch as f64;
        elems * self.kv_dequant_per_elem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn motivation(params: QuantCostParams) -> QuantModel {
        QuantModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::motivation(),
            params,
        )
    }

    #[test]
    fn weight_quantization_is_one_time_and_large() {
        // §3.1 Observation 2: weight compression happens once at init.
        let m = motivation(QuantCostParams::flexgen_kernels());
        let t = m.quan_pf_wgt_total(1.0);
        assert!(t > 1.0, "whole-model weight quantization is seconds-scale: {t}");
        // Scales linearly with the CPU share.
        assert!((m.quan_pf_wgt_total(0.5) / t - 0.5).abs() < 1e-9);
    }

    #[test]
    fn weight_dequant_dominated_by_freq_rated_norm() {
        // The asymmetry driving Fig. 3: per-layer weight dequant on
        // FlexGen kernels is tens of milliseconds — comparable to the
        // transfer it accompanies.
        let m = motivation(QuantCostParams::flexgen_kernels());
        let t = m.dequan_wgt_per_layer(0.45);
        assert!(t > 0.02 && t < 0.2, "per-layer dequant {t}s");
    }

    #[test]
    fn kv_dequant_cheaper_than_kv_quant_per_elem() {
        // Dequantization skips the min/max phase (Eq. 24 vs Eq. 20).
        let m = motivation(QuantCostParams::flexgen_kernels());
        assert!(m.kv_dequant_per_elem() < m.kv_quant_per_elem());
    }

    #[test]
    fn lm_offload_kernels_strictly_faster() {
        let slow = motivation(QuantCostParams::flexgen_kernels());
        let fast = motivation(QuantCostParams::lm_offload_kernels());
        assert!(fast.dequan_wgt_per_layer(0.5) < slow.dequan_wgt_per_layer(0.5));
        assert!(fast.kv_quant_per_elem() < slow.kv_quant_per_elem());
        assert!(fast.quan_pf_wgt_total(1.0) < slow.quan_pf_wgt_total(1.0));
    }

    #[test]
    fn old_cache_dequant_grows_with_token_index() {
        // §3.1: "such (de)compression overhead continuously increases" as
        // tokens are generated.
        let m = motivation(QuantCostParams::flexgen_kernels());
        assert!(m.dequan_old_cache_per_batch(100) > m.dequan_old_cache_per_batch(0));
        let slope = m.dequan_old_cache_per_batch(1) - m.dequan_old_cache_per_batch(0);
        let elems_per_pos = 2.0 * 7168.0 * 64.0;
        assert!((slope - elems_per_pos * m.kv_dequant_per_elem()).abs() < 1e-12);
    }

    #[test]
    fn kv_overheads_small_relative_to_fp16_transfer_savings() {
        // The economics that make KV quantization the winner in Fig. 3:
        // per-batch dequant cost is far below the transfer time saved by
        // moving Int4 instead of F16.
        let m = motivation(QuantCostParams::flexgen_kernels());
        let platform = presets::single_gpu_a100();
        let elems = 2u64 * 128 * 7168 * 64;
        let f16 = platform.h2d_time(DType::F16.bytes_for(elems));
        let i4 = platform.h2d_time(DType::Int4.bytes_for(elems));
        let saving = f16 - i4;
        let overhead =
            m.dequan_old_cache_per_batch(63) + m.quan_new_cache_per_batch();
        assert!(
            overhead < saving * 0.5,
            "overhead {overhead} vs saving {saving}"
        );
    }
}
