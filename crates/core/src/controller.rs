//! The parallelism controller: connects Algorithm 3's search
//! (`lm-parallelism`) to a concrete deployment — building the attention
//! dependency graph for the policy's block shape, profiling it against
//! the platform's scaling model, and deriving the thread plan that the
//! runtime factors (`ThreadFactors`) summarise for the cost model.

use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};
use lm_parallelism::{
    attention_graph, try_find_optimal_parallelism, CpuScalingModel, ParallelismPlan,
    ProfileTable, SearchConfig, SearchError, TransferTask,
};
use lm_sim::{AttentionPlacement, BaseCostModel, Policy};

/// Head-group granularity PyTorch-style dispatch exposes inside one
/// attention call: grouped-head BMM strips. Seven groups reproduce the
/// paper's machine (inter-op 7 + 5 transfer tasks = 12, §5.4).
pub const DEFAULT_HEAD_GROUPS: usize = 7;

/// Single-thread sustained rates used to synthesise the offline profile
/// (§4.2): one core's FLOP/s and stream bandwidth.
const SINGLE_THREAD_FLOPS: f64 = 20e9;
const SINGLE_THREAD_BYTES: f64 = 12e9;

/// A derived parallelism configuration for a deployment.
#[derive(Debug, Clone)]
pub struct ControllerOutput {
    pub plan: ParallelismPlan,
    /// Estimated step time under the PyTorch default setting, for the
    /// Fig. 8 comparison.
    pub default_step_time: f64,
    /// Estimated compute-task time under the default setting.
    pub default_compute_time: f64,
}

/// Build the five transfer tasks with their per-step volumes from the
/// base cost model of the deployment.
pub fn transfer_tasks(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
) -> Vec<TransferTask> {
    let base = BaseCostModel::new(platform, model, workload, *policy);
    let mid = workload.gen_len / 2;
    let nb = workload.num_batches;
    let kv_elems = base.kv_elems_at(mid);
    let (kv_up, kv_down) = match policy.attention {
        AttentionPlacement::Cpu => (0, 0),
        AttentionPlacement::Gpu => (
            policy.kv_dtype.bytes_for(kv_elems) * nb,
            policy.kv_dtype.bytes_for(base.new_kv_elems()) * nb,
        ),
    };
    let act = DType::F16.bytes_for(model.hidden * workload.gpu_batch) * nb;
    vec![
        TransferTask {
            name: "load_weight".into(),
            bytes: base.weight_bytes_per_layer(),
        },
        TransferTask {
            name: "load_cache".into(),
            bytes: kv_up,
        },
        TransferTask {
            name: "load_activation".into(),
            bytes: act,
        },
        TransferTask {
            name: "store_cache".into(),
            bytes: kv_down,
        },
        TransferTask {
            name: "store_activation".into(),
            bytes: act,
        },
    ]
}

/// Run the controller: build the compute graph, synthesise the offline
/// profile, and search for the optimal parallelism setting (Algorithm 3).
/// Panics on an infeasible deployment; see [`try_derive_plan`].
pub fn derive_plan(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
) -> ControllerOutput {
    match try_derive_plan(platform, model, workload, policy) {
        Ok(out) => out,
        Err(e) => panic!("parallelism search failed: {e}"),
    }
}

/// Fallible [`derive_plan`]: an infeasible deployment (e.g. a platform
/// with too few CPU threads for compute plus the five reserved transfer
/// threads) is reported as a [`SearchError`] instead of a panic.
pub fn try_derive_plan(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
) -> Result<ControllerOutput, SearchError> {
    let graph = attention_graph(
        workload.block_size(),
        workload.prompt_len + workload.gen_len / 2,
        model.hidden,
        DEFAULT_HEAD_GROUPS,
    );
    let scaling = CpuScalingModel::from_cpu(&platform.cpu);
    let profile = ProfileTable::synthesize(
        &graph,
        &scaling,
        SINGLE_THREAD_FLOPS,
        SINGLE_THREAD_BYTES,
        platform.cpu.total_threads(),
    );
    let cfg = SearchConfig::for_platform(platform);
    let transfers = transfer_tasks(platform, model, workload, policy);
    let plan = try_find_optimal_parallelism(&graph, &profile, &scaling, &cfg, &transfers)?;

    // Score the PyTorch default for comparison: all hyperthreads inter-op,
    // all physical threads intra-op, transfers one thread each.
    let (default_compute_time, default_step_time) = lm_parallelism::estimate_step_time(
        &graph,
        &profile,
        &scaling,
        &cfg,
        &transfers,
        platform.cpu.total_cores(),
        platform.cpu.total_threads(),
        &[1; 5],
    );

    Ok(ControllerOutput {
        plan,
        default_step_time,
        default_compute_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_models::Workload;

    fn output() -> ControllerOutput {
        let platform = presets::single_gpu_a100();
        derive_plan(
            &platform,
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &Policy::flexgen_default(),
        )
    }

    #[test]
    fn plan_reproduces_section_5_4_shape() {
        let out = output();
        // 12 inter-op total (7 compute + 5 transfers), intra-op near the
        // knee — the paper reports 12/16.
        assert_eq!(out.plan.inter_op_total, 12);
        assert!(
            (4..=16).contains(&out.plan.intra_op_compute),
            "intra {}",
            out.plan.intra_op_compute
        );
    }

    #[test]
    fn controlled_beats_default_by_fig8_margins() {
        let out = output();
        // Fig. 8: 32% compute reduction, 38% end-to-end.
        let compute_gain = 1.0 - out.plan.est_compute_time / out.default_compute_time;
        assert!(
            compute_gain > 0.15,
            "compute gain only {:.0}%",
            compute_gain * 100.0
        );
        let step_gain = 1.0 - out.plan.est_step_time / out.default_step_time;
        assert!(step_gain > 0.10, "step gain only {:.0}%", step_gain * 100.0);
    }

    #[test]
    fn try_derive_plan_rejects_thread_starved_platform() {
        let mut platform = presets::single_gpu_a100();
        // Shrink the host to fewer threads than compute + 5 reserved
        // transfer threads can ever fit in.
        platform.cpu.sockets = 1;
        platform.cpu.cores_per_socket = 2;
        platform.cpu.threads_per_core = 1;
        let err = try_derive_plan(
            &platform,
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &Policy::flexgen_default(),
        )
        .expect_err("2 threads cannot host the six tasks");
        assert!(
            matches!(err, SearchError::NoFeasibleSetting { max_threads: 2 }),
            "{err}"
        );
    }

    #[test]
    fn cpu_attention_policy_has_no_cache_transfer_volume() {
        let platform = presets::single_gpu_a100();
        let ts = transfer_tasks(
            &platform,
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &Policy::flexgen_default(),
        );
        assert_eq!(ts.len(), 5);
        assert_eq!(ts[1].bytes, 0, "load_cache");
        assert_eq!(ts[3].bytes, 0, "store_cache");
        assert!(ts[0].bytes > 0, "load_weight");
    }

    #[test]
    fn gpu_attention_policy_moves_cache() {
        let platform = presets::single_gpu_a100();
        let mut p = Policy::flexgen_default();
        p.attention = lm_sim::AttentionPlacement::Gpu;
        let ts = transfer_tasks(
            &platform,
            &models::opt_30b(),
            &Workload::parallelism_study(),
            &p,
        );
        assert!(ts[1].bytes > ts[3].bytes, "old cache up > new cache down");
    }
}
