//! The six decode-phase tasks of Algorithm 1 and the cost-provider
//! abstraction the simulator executes against.
//!
//! Frameworks differ in how they *choose* policies; the simulator is the
//! shared ground truth that executes any policy. A [`CostProvider`] maps
//! each task instance to a duration; `lm-offload` layers the paper's
//! quantization overheads (Eq. 3-7) on top of the base transfer/compute
//! costs via [`TaskExtras`].

use serde::{Deserialize, Serialize};

use lm_trace::TaskKind;

/// Additive per-task overheads in seconds — how quantization costs enter
/// the six-task model (Eq. 4, 6, 7): `load_weight += dequan_wgt`,
/// `load_cache += dequan_old_cache`, `store_cache += quan_new_cache`.
/// `load_cache`/`store_cache` extras may grow with the decode step, so
/// they are per-step slopes plus constants.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TaskExtras {
    /// Constant addition to load_weight per layer (weight dequantization).
    pub load_weight: f64,
    /// load_cache addition at decode step i: `base + slope·(s+i)/(s+1)`
    /// is overkill; the provider computes exact sizes, so this is the
    /// per-KV-element dequant cost instead (seconds per cached element).
    pub dequant_per_kv_elem: f64,
    /// Quantization cost per newly generated KV element (seconds/element).
    pub quant_per_kv_elem: f64,
    /// CPU-side dequantization cost per old-KV element when the cache is
    /// stored compressed and attention runs on the CPU (FlexGen's
    /// compress_cache path: the offloaded attention must decompress in
    /// host memory).
    pub cpu_kv_dequant_per_elem: f64,
    /// CPU-side quantization cost per new-KV element in the same path.
    pub cpu_kv_quant_per_elem: f64,
    /// One-time addition to initialisation (weight quantization, Eq. 3).
    pub init: f64,
    /// Per-layer addition to prefill (prefill KV quantization, Eq. 5).
    pub prefill_per_layer: f64,
}

/// A provider of task durations. All durations are seconds.
///
/// Granularity: `load_weight` is per *layer* (weights are shared by every
/// batch in the zig-zag block); the cache/activation/compute tasks are per
/// *(layer, batch)*. `token` is the 0-based decode step.
pub trait CostProvider {
    /// Time to bring one layer's streamed weights to the GPU (including
    /// any dequantization serialised into the task, per Eq. 4).
    fn load_weight(&self, token: u64) -> f64;
    /// Time to load one batch's old KV cache (zero when attention runs on
    /// the CPU).
    fn load_cache(&self, token: u64) -> f64;
    /// Time to load one batch's activations.
    fn load_activation(&self, token: u64) -> f64;
    /// Time to store one batch's new KV entries (incl. quantization).
    fn store_cache(&self, token: u64) -> f64;
    /// Time to store one batch's activations.
    fn store_activation(&self, token: u64) -> f64;
    /// CPU part of the compute task (offloaded attention; zero otherwise).
    fn compute_cpu(&self, token: u64) -> f64;
    /// GPU part of the compute task (projections, MLP, and attention when
    /// it is not offloaded).
    fn compute_gpu(&self, token: u64) -> f64;

    /// Prefill time for one layer (whole block).
    fn prefill_layer(&self) -> f64;
    /// One-time initialisation (loading weights from disk, quantizing
    /// them — Eq. 3).
    fn init_time(&self) -> f64;

    /// Convenience: duration of `kind` at `token`.
    fn cost(&self, kind: TaskKind, token: u64) -> f64 {
        match kind {
            TaskKind::LoadWeight => self.load_weight(token),
            TaskKind::LoadCache => self.load_cache(token),
            TaskKind::LoadActivation => self.load_activation(token),
            TaskKind::StoreCache => self.store_cache(token),
            TaskKind::StoreActivation => self.store_activation(token),
            TaskKind::ComputeCpu => self.compute_cpu(token),
            TaskKind::ComputeGpu => self.compute_gpu(token),
        }
    }
}

/// A [`CostProvider`] wrapper modelling a *persistently* degraded
/// interconnect: transfer durations stretch by the inverse of the
/// observed bandwidth multiplier while compute and prefill costs pass
/// through untouched. The degradation controller scores fallback
/// policies against this wrapper (equivalently: a platform whose link
/// bandwidths are scaled by the observed factors) to pick the policy
/// the analytic model ranks cheapest *on the degraded hardware*.
#[derive(Debug, Clone)]
pub struct DegradedLink<P> {
    pub inner: P,
    /// Effective H2D bandwidth multiplier in (0, 1].
    pub h2d_factor: f64,
    /// Effective D2H bandwidth multiplier in (0, 1].
    pub d2h_factor: f64,
}

impl<P> DegradedLink<P> {
    pub fn new(inner: P, h2d_factor: f64, d2h_factor: f64) -> Self {
        assert!(
            h2d_factor > 0.0 && h2d_factor <= 1.0 && d2h_factor > 0.0 && d2h_factor <= 1.0,
            "bandwidth factors must be in (0, 1]"
        );
        DegradedLink {
            inner,
            h2d_factor,
            d2h_factor,
        }
    }
}

impl<P: CostProvider> CostProvider for DegradedLink<P> {
    fn load_weight(&self, token: u64) -> f64 {
        self.inner.load_weight(token) / self.h2d_factor
    }
    fn load_cache(&self, token: u64) -> f64 {
        self.inner.load_cache(token) / self.h2d_factor
    }
    fn load_activation(&self, token: u64) -> f64 {
        self.inner.load_activation(token) / self.h2d_factor
    }
    fn store_cache(&self, token: u64) -> f64 {
        self.inner.store_cache(token) / self.d2h_factor
    }
    fn store_activation(&self, token: u64) -> f64 {
        self.inner.store_activation(token) / self.d2h_factor
    }
    fn compute_cpu(&self, token: u64) -> f64 {
        self.inner.compute_cpu(token)
    }
    fn compute_gpu(&self, token: u64) -> f64 {
        self.inner.compute_gpu(token)
    }
    fn prefill_layer(&self) -> f64 {
        self.inner.prefill_layer()
    }
    fn init_time(&self) -> f64 {
        self.inner.init_time()
    }
}

/// Per-step analytic decode latency for one layer, Eq. 2:
/// `T_gen = max(load_weight, load_cache, load_activation, store_cache,
/// store_activation, compute)` — refined so that tasks sharing a physical
/// resource *sum* before the max: all three load tasks occupy the H2D
/// link, both stores the D2H link, and the compute halves their
/// processors. (The paper's per-task max is the limit where each task has
/// its own channel; a single PCIe link serialises the loads, which is
/// also how the event-driven simulator behaves.)
pub fn t_gen(provider: &impl CostProvider, token: u64, num_batches: u64) -> f64 {
    let nb = num_batches as f64;
    let h2d = provider.load_weight(token)
        + nb * (provider.load_cache(token) + provider.load_activation(token));
    let d2h = nb * (provider.store_cache(token) + provider.store_activation(token));
    let cpu = nb * provider.compute_cpu(token);
    let gpu = nb * provider.compute_gpu(token);
    h2d.max(d2h).max(cpu).max(gpu)
}

/// Whole-inference analytic latency, Eq. 1:
/// `T = T_init + T_pf·l + Σ_i T_gen(i)·l` (the paper's `T_gen·(n-1)·l`
/// with the step dependence kept explicit, since KV costs grow with `i`).
pub fn total_latency(
    provider: &impl CostProvider,
    num_layers: u32,
    gen_len: u64,
    num_batches: u64,
    include_init: bool,
) -> f64 {
    let l = num_layers as f64;
    let prefill = provider.prefill_layer() * l;
    let decode: f64 = (0..gen_len.saturating_sub(1))
        .map(|i| t_gen(provider, i, num_batches) * l)
        .sum();
    let init = if include_init { provider.init_time() } else { 0.0 };
    init + prefill + decode
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A provider with fixed costs for exercising the aggregation logic.
    struct Fixed;
    impl CostProvider for Fixed {
        fn load_weight(&self, _: u64) -> f64 {
            0.10
        }
        fn load_cache(&self, t: u64) -> f64 {
            0.01 * (1.0 + t as f64)
        }
        fn load_activation(&self, _: u64) -> f64 {
            0.001
        }
        fn store_cache(&self, _: u64) -> f64 {
            0.002
        }
        fn store_activation(&self, _: u64) -> f64 {
            0.001
        }
        fn compute_cpu(&self, _: u64) -> f64 {
            0.004
        }
        fn compute_gpu(&self, _: u64) -> f64 {
            0.003
        }
        fn prefill_layer(&self) -> f64 {
            0.5
        }
        fn init_time(&self) -> f64 {
            30.0
        }
    }

    #[test]
    fn t_gen_is_max_over_shared_resources() {
        // Token 0, 4 batches: H2D = 0.10 + 4·(0.01 + 0.001) = 0.144
        // dominates D2H (0.012), CPU (0.016) and GPU (0.012).
        assert!((t_gen(&Fixed, 0, 4) - 0.144).abs() < 1e-12);
        // Token 20: H2D = 0.10 + 4·(0.21 + 0.001) = 0.944.
        assert!((t_gen(&Fixed, 20, 4) - 0.944).abs() < 1e-12);
    }

    #[test]
    fn total_latency_composition() {
        // l=2 layers, n=3 tokens (2 decode steps), 1 batch.
        let no_init = total_latency(&Fixed, 2, 3, 1, false);
        let with_init = total_latency(&Fixed, 2, 3, 1, true);
        let prefill = 0.5 * 2.0;
        // H2D dominates each step: 0.10 + cache(i) + 0.001.
        let decode = ((0.10 + 0.01 + 0.001) + (0.10 + 0.02 + 0.001)) * 2.0;
        assert!((no_init - (prefill + decode)).abs() < 1e-12);
        assert!((with_init - no_init - 30.0).abs() < 1e-12);
    }

    #[test]
    fn single_token_generation_has_no_decode() {
        let t = total_latency(&Fixed, 4, 1, 2, false);
        assert!((t - 0.5 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn cost_dispatch_matches_methods() {
        for kind in TaskKind::ALL {
            let direct = Fixed.cost(kind, 3);
            assert!(direct >= 0.0);
        }
        assert_eq!(Fixed.cost(TaskKind::LoadWeight, 0), 0.10);
        assert_eq!(Fixed.cost(TaskKind::ComputeCpu, 9), 0.004);
    }

    #[test]
    fn degraded_link_stretches_transfers_only() {
        let d = DegradedLink::new(Fixed, 0.5, 0.25);
        assert!((d.load_weight(0) - 0.20).abs() < 1e-12);
        assert!((d.load_cache(0) - 0.02).abs() < 1e-12);
        assert!((d.store_cache(0) - 0.008).abs() < 1e-12);
        assert_eq!(d.compute_cpu(0), Fixed.compute_cpu(0));
        assert_eq!(d.compute_gpu(0), Fixed.compute_gpu(0));
        assert_eq!(d.prefill_layer(), Fixed.prefill_layer());
        // Identity factors pass everything through untouched.
        let id = DegradedLink::new(Fixed, 1.0, 1.0);
        for kind in TaskKind::ALL {
            assert_eq!(id.cost(kind, 2), Fixed.cost(kind, 2));
        }
        // A degraded link raises the analytic step latency.
        assert!(t_gen(&d, 0, 4) > t_gen(&Fixed, 0, 4));
    }

    #[test]
    #[should_panic(expected = "bandwidth factors")]
    fn degraded_link_rejects_zero_factor() {
        let _ = DegradedLink::new(Fixed, 0.0, 1.0);
    }
}
