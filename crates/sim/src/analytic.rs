//! The base analytic cost model: FlexGen's six-task accounting (Eq. 1-2)
//! for an arbitrary [`Policy`], *without* quantization overheads.
//!
//! `lm-offload` extends this with the paper's quantization cost models by
//! filling [`TaskExtras`]; the fields here already honour the policy's
//! dtypes for transfer *sizes* (a 4-bit KV cache moves 4× fewer bytes),
//! which is the benefit side of the quantization ledger.

use crate::policy::{AttentionPlacement, Policy};
use crate::tasks::{total_latency, CostProvider, TaskExtras};
use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};

/// Sustained disk→host bandwidth for `T_init` (weights from HDD to CPU
/// memory, step 1.1 of Figure 2).
pub const DISK_BW: f64 = 2e9;

/// Per-task framework dispatch overhead (kernel launches, stream sync) —
/// the constant that separates a Python-framework runtime from raw
/// hardware speeds.
pub const TASK_OVERHEAD: f64 = 1e-4;

/// The base cost model for one (platform, model, workload, policy).
#[derive(Debug, Clone)]
pub struct BaseCostModel {
    pub platform: Platform,
    pub model: ModelConfig,
    pub workload: Workload,
    pub policy: Policy,
    /// Multiplier on effective CPU FLOP/s for offloaded attention.
    ///
    /// The constructor default (0.01) is the *planning belief* FlexGen's
    /// cost model holds — about 2x optimistic versus the measured 0.005
    /// of the PyTorch CPU-attention path ("inaccurately estimating the
    /// performance impact of asynchronous execution", §2.2). Ground-truth
    /// providers overwrite it from `lm_offload::ThreadFactors`.
    pub cpu_attention_factor: f64,
    /// Multiplier on link bandwidth capturing transfer-staging quality
    /// (thread assignment to load/store tasks).
    pub link_factor: f64,
    /// Additive quantization overheads (Eq. 3-7), zero by default.
    pub extras: TaskExtras,
}

impl BaseCostModel {
    pub fn new(
        platform: &Platform,
        model: &ModelConfig,
        workload: &Workload,
        policy: Policy,
    ) -> Self {
        policy.validate().expect("invalid policy");
        model.validate().expect("invalid model");
        BaseCostModel {
            platform: platform.clone(),
            model: model.clone(),
            workload: *workload,
            policy,
            cpu_attention_factor: 0.01,
            link_factor: 1.0,
            extras: TaskExtras::default(),
        }
    }

    /// Streamed weight bytes per layer (the `1-wg` share at the weights'
    /// at-rest precision).
    pub fn weight_bytes_per_layer(&self) -> u64 {
        let full = self
            .policy
            .weights_dtype
            .bytes_for(self.model.weights_per_layer());
        ((1.0 - self.policy.wg) * full as f64) as u64
    }

    /// KV-cache entries held per batch per layer at decode step `i`
    /// (prompt + generated so far + the current token).
    pub fn kv_elems_at(&self, token: u64) -> u64 {
        2 * (self.workload.prompt_len + token + 1) * self.model.hidden * self.workload.gpu_batch
    }

    /// Newly produced KV elements per batch per layer per step.
    pub fn new_kv_elems(&self) -> u64 {
        2 * self.model.hidden * self.workload.gpu_batch
    }

    /// Activation bytes per batch per layer boundary (always fp16 in
    /// flight).
    pub fn activation_bytes(&self) -> u64 {
        ((1.0 - self.policy.hg)
            * DType::F16.bytes_for(self.model.hidden * self.workload.gpu_batch) as f64)
            as u64
    }

    fn h2d(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.platform.h2d_time(bytes) / self.link_factor
        }
    }

    fn d2h(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            0.0
        } else {
            self.platform.d2h_time(bytes) / self.link_factor
        }
    }

    /// Attention FLOPs per batch per layer at step `i`: `QKᵀ` and `A·V`
    /// against `s+i+1` cached positions.
    pub fn attention_flops(&self, token: u64) -> f64 {
        4.0 * (self.workload.prompt_len + token + 1) as f64
            * self.model.hidden as f64
            * self.workload.gpu_batch as f64
    }

    /// Projection + MLP FLOPs per batch per layer (always on GPU).
    pub fn gpu_linear_flops(&self) -> f64 {
        let h1 = self.model.hidden as f64;
        let h2 = self.model.ffn_hidden as f64;
        let b = self.workload.gpu_batch as f64;
        2.0 * (4.0 * h1 * h1 + self.model.mlp_matrices() as f64 * h1 * h2) * b
    }

    /// Effective CPU FLOP/s for offloaded attention under the current
    /// thread-setting quality.
    pub fn cpu_attention_flops(&self) -> f64 {
        self.platform.cpu_flops() * self.cpu_attention_factor
    }

    /// Generated tokens per full run.
    pub fn tokens(&self) -> u64 {
        self.workload.tokens_generated()
    }

    /// End-to-end analytic latency (Eq. 1), excluding `T_init` by default
    /// (steady-state serving reuses resident weights).
    pub fn latency(&self, include_init: bool) -> f64 {
        total_latency(
            self,
            self.model.num_layers,
            self.workload.gen_len,
            self.workload.num_batches,
            include_init,
        )
    }

    /// Analytic inference throughput in tokens/second (the paper's
    /// `bls·n / T` objective).
    pub fn throughput(&self) -> f64 {
        self.tokens() as f64 / self.latency(false)
    }
}

impl CostProvider for BaseCostModel {
    fn load_weight(&self, _token: u64) -> f64 {
        // Weights for one layer, shared by the whole block.
        self.h2d(self.weight_bytes_per_layer()) + self.extras.load_weight + TASK_OVERHEAD
    }

    fn load_cache(&self, token: u64) -> f64 {
        match self.policy.attention {
            AttentionPlacement::Cpu => 0.0,
            AttentionPlacement::Gpu => {
                let elems = ((1.0 - self.policy.cg) * self.kv_elems_at(token) as f64) as u64;
                let bytes = self.policy.kv_dtype.bytes_for(elems);
                self.h2d(bytes) + self.extras.dequant_per_kv_elem * elems as f64 + TASK_OVERHEAD
            }
        }
    }

    fn load_activation(&self, _token: u64) -> f64 {
        let b = self.activation_bytes();
        if b == 0 {
            0.0
        } else {
            self.h2d(b) + TASK_OVERHEAD
        }
    }

    fn store_cache(&self, _token: u64) -> f64 {
        match self.policy.attention {
            AttentionPlacement::Cpu => 0.0,
            AttentionPlacement::Gpu => {
                let elems = ((1.0 - self.policy.cg) * self.new_kv_elems() as f64) as u64;
                let bytes = self.policy.kv_dtype.bytes_for(elems);
                self.d2h(bytes) + self.extras.quant_per_kv_elem * elems as f64 + TASK_OVERHEAD
            }
        }
    }

    fn store_activation(&self, _token: u64) -> f64 {
        let b = self.activation_bytes();
        if b == 0 {
            0.0
        } else {
            self.d2h(b) + TASK_OVERHEAD
        }
    }

    fn compute_cpu(&self, token: u64) -> f64 {
        match self.policy.attention {
            AttentionPlacement::Gpu => 0.0,
            AttentionPlacement::Cpu => {
                let quant = self.extras.cpu_kv_dequant_per_elem * self.kv_elems_at(token) as f64
                    + self.extras.cpu_kv_quant_per_elem * self.new_kv_elems() as f64;
                self.attention_flops(token) / self.cpu_attention_flops() + quant + TASK_OVERHEAD
            }
        }
    }

    fn compute_gpu(&self, token: u64) -> f64 {
        let mut flops = self.gpu_linear_flops();
        if self.policy.attention == AttentionPlacement::Gpu {
            flops += self.attention_flops(token);
        }
        flops / self.platform.gpu_flops() + TASK_OVERHEAD
    }

    fn prefill_layer(&self) -> f64 {
        let s = self.workload.prompt_len as f64;
        let bls = self.workload.block_size() as f64;
        let h1 = self.model.hidden as f64;
        // Projections/MLP over s tokens for the whole block, plus the
        // quadratic attention term.
        let linear = self.gpu_linear_flops() * s * self.workload.num_batches as f64;
        let attn = 4.0 * s * s * h1 * bls / 2.0; // causal half
        let compute = (linear + attn) / self.platform.gpu_flops();
        // Prefilled KV leaves the GPU: to CPU memory under both
        // placements (Figure 2 step 1.3).
        let kv_bytes = self
            .policy
            .kv_dtype
            .bytes_for(2 * (self.workload.prompt_len + 1) * self.model.hidden)
            * self.workload.block_size();
        let kv_store = self.d2h(((1.0 - self.policy.cg) * kv_bytes as f64) as u64);
        let weights = self.h2d(self.weight_bytes_per_layer());
        compute.max(kv_store).max(weights) + self.extras.prefill_per_layer + TASK_OVERHEAD
    }

    fn init_time(&self) -> f64 {
        let bytes = self
            .policy
            .weights_dtype
            .bytes_for(self.model.layer_params());
        bytes as f64 / DISK_BW + self.extras.init
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::t_gen;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn motivation(policy: Policy) -> BaseCostModel {
        BaseCostModel::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::motivation(),
            policy,
        )
    }

    #[test]
    fn cpu_attention_zeroes_cache_traffic() {
        let m = motivation(Policy::flexgen_default());
        assert_eq!(m.load_cache(5), 0.0);
        assert_eq!(m.store_cache(5), 0.0);
        assert!(m.compute_cpu(5) > 0.0);
    }

    #[test]
    fn gpu_attention_cache_traffic_grows_with_token() {
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let m = motivation(p);
        assert!(m.load_cache(10) > m.load_cache(0));
        assert_eq!(m.compute_cpu(3), 0.0);
        assert!(m.compute_gpu(3) > 0.0);
    }

    #[test]
    fn quantized_kv_moves_fewer_bytes() {
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let f16 = motivation(p);
        let mut p4 = p;
        p4.kv_dtype = DType::Int4;
        let i4 = motivation(p4);
        // 4x fewer bytes -> load_cache nearly 4x cheaper (minus overheads).
        assert!(i4.load_cache(50) < f16.load_cache(50) * 0.35);
    }

    #[test]
    fn wg_reduces_weight_load() {
        let mut p = Policy::flexgen_default();
        let all_stream = motivation(p);
        p.wg = 0.55;
        let partial = motivation(p);
        let ratio = partial.weight_bytes_per_layer() as f64
            / all_stream.weight_bytes_per_layer() as f64;
        assert!((ratio - 0.45).abs() < 0.01);
        assert!(partial.load_weight(0) < all_stream.load_weight(0));
    }

    #[test]
    fn motivation_no_quant_is_weight_bound_with_cpu_attention() {
        // §3.1: with attention offloading and no quantization, the weight
        // stream dominates T_gen (activations add only a few percent).
        let m = motivation(Policy::flexgen_default());
        let t = t_gen(&m, 64, m.workload.num_batches);
        let lw = m.load_weight(64);
        assert!(
            t >= lw && t < lw * 1.10,
            "weights should dominate: t_gen {t} vs load_weight {lw}"
        );
    }

    #[test]
    fn gpu_attention_without_quant_is_kv_bound_late() {
        // Table 1 (without attention offloading): KV traffic dwarfs
        // weights late in generation.
        let mut p = Policy::flexgen_default();
        p.attention = AttentionPlacement::Gpu;
        let m = motivation(p);
        let nb = m.workload.num_batches as f64;
        assert!(m.load_cache(100) * nb > m.load_weight(100) * 2.0);
    }

    #[test]
    fn throughput_positive_and_scale_sane() {
        let m = motivation(Policy::flexgen_default());
        let tput = m.throughput();
        // Shape-level sanity: tens to thousands of tokens/s.
        assert!(tput > 5.0 && tput < 20_000.0, "tput {tput}");
    }

    #[test]
    fn init_time_scales_with_dtype() {
        let f16 = motivation(Policy::flexgen_default());
        let mut p = Policy::flexgen_default();
        p.weights_dtype = DType::Int4;
        let i4 = motivation(p);
        assert!((f16.init_time() / i4.init_time() - 4.0).abs() < 0.1);
    }

    #[test]
    fn latency_includes_init_only_on_request() {
        let m = motivation(Policy::flexgen_default());
        assert!(m.latency(true) > m.latency(false));
        assert!((m.latency(true) - m.latency(false) - m.init_time()).abs() < 1e-9);
    }
}
