//! Figure 9 — multi-GPU weak scaling with pipeline parallelism:
//! OPT-13B and LLaMA-13B, s=256, n=64, batch doubling with GPU count,
//! LM-Offload versus FlexGen on the V100/POWER9 platform.

use lm_hardware::presets;
use lm_models::presets as models;
use lm_offload::{run_pipeline, EngineConfig, Framework};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Row {
    pub model: String,
    pub num_gpus: u32,
    pub flexgen_tput: f64,
    pub lm_offload_tput: f64,
    pub speedup: f64,
}

/// Run the weak-scaling sweep for both models over 1-4 GPUs.
pub fn run() -> Vec<Fig9Row> {
    let mut out = Vec::new();
    for model in [models::opt_13b(), models::llama_13b()] {
        for g in 1..=4u32 {
            let platform = presets::multi_gpu_v100(g);
            let cfg = EngineConfig::new(&platform, &model, 256, 64);
            let lm = run_pipeline(Framework::LmOffload, &cfg, g);
            let fg = run_pipeline(Framework::FlexGen, &cfg, g);
            if let (Some(lm), Some(fg)) = (lm, fg) {
                out.push(Fig9Row {
                    model: model.name.clone(),
                    num_gpus: g,
                    flexgen_tput: fg.throughput,
                    lm_offload_tput: lm.throughput,
                    speedup: lm.throughput / fg.throughput,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lm_offload_wins_all_cases() {
        // "LM-Offload outperforms FlexGen in all cases."
        for r in run() {
            assert!(r.speedup > 1.0, "{} g={}: {}", r.model, r.num_gpus, r.speedup);
        }
    }

    #[test]
    fn gap_grows_with_gpu_count() {
        // "the performance gap ... increases as the number of GPUs
        // increases from 1 to 4."
        let rows = run();
        for model in ["OPT-13B", "LLaMA-13B"] {
            let series: Vec<&Fig9Row> = rows.iter().filter(|r| r.model == model).collect();
            assert_eq!(series.len(), 4);
            assert!(
                series[3].speedup > series[0].speedup,
                "{model}: {} -> {}",
                series[0].speedup,
                series[3].speedup
            );
        }
    }

    #[test]
    fn weak_scaling_throughput_grows_for_lm_offload() {
        let rows = run();
        let series: Vec<f64> = rows
            .iter()
            .filter(|r| r.model == "OPT-13B")
            .map(|r| r.lm_offload_tput)
            .collect();
        for w in series.windows(2) {
            assert!(w[1] > w[0], "throughput must grow under weak scaling");
        }
    }
}
