//! End-to-end fault injection across the offloading pipeline: the
//! acceptance tests for the robustness subsystem.
//!
//! - Faults off (or on but quiescent) must be **zero-cost**: the engine
//!   produces token-identical output to a build without injection.
//! - A fault-injected run must complete through retry/backpressure with
//!   nonzero counters and no panics.
//! - The same fault seed must replay the same event sequence.
//! - Unrecoverable pressure must degrade — the controller re-scores the
//!   fallback ladder with the analytic model — and still finish.

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_fault::{FaultConfig, FaultInjector, FaultProfile, RetryPolicy};
use lm_hardware::presets as hw;
use lm_models::{presets, Workload};
use lm_offload::{generate_with_degradation, DegradationController, QuantCostParams};
use lm_sim::Policy;

fn prompts() -> Vec<Vec<u32>> {
    vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6]]
}

/// Faults disabled vs. enabled-but-quiescent: bit-identical generations.
/// This is the zero-cost-off guarantee — every probe on the hot path is
/// an inlined `None`/no-fire check, never a behaviour change.
#[test]
fn quiescent_injector_is_token_identical() {
    let cfg = presets::tiny_test();
    let fault = FaultInjector::new(FaultConfig::quiescent(123));
    let clean = Engine::new(&cfg, 42, EngineOptions::default()).unwrap();
    let quiet = Engine::new(
        &cfg,
        42,
        EngineOptions {
            fault: fault.clone(),
            ..EngineOptions::default()
        },
    )
    .unwrap();

    let a = clean.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
    let b = quiet.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
    assert_eq!(a.tokens, b.tokens);
    assert_eq!(a.weight_bytes_streamed, b.weight_bytes_streamed);
    assert_eq!(a.kv_bytes_at_rest, b.kv_bytes_at_rest);

    let s = fault.stats();
    assert_eq!(s.total_faults(), 0, "quiescent injector fired: {s:?}");
}

/// A serial (prefetch off) faulted run: survivable pressure spikes and
/// stalls fire, generation completes with unchanged output, and the
/// whole event log replays bit-for-bit under the same seed. The serial
/// path is the one place exact event-sequence equality is well-defined —
/// with prefetch on, probe interleaving depends on thread timing.
#[test]
fn same_seed_replays_the_same_event_sequence() {
    let cfg = presets::tiny_test();
    let run = |seed: u64| {
        let fault = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 0.5,
            pool_pressure_bytes: 4096, // survivable: well under pool slack
            stall_rate: 0.3,
            stall_ms: 1,
            ..FaultConfig::quiescent(seed)
        });
        let engine = Engine::new(
            &cfg,
            42,
            EngineOptions {
                prefetch: false,
                fault: fault.clone(),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gen = engine.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
        (gen.tokens, fault.events(), fault.stats())
    };

    let (tokens_a, events_a, stats_a) = run(9);
    let (tokens_b, events_b, stats_b) = run(9);
    let (_, events_c, _) = run(10);

    // Survivable faults leave the output untouched...
    let clean = Engine::new(&cfg, 42, EngineOptions::default()).unwrap();
    assert_eq!(tokens_a, clean.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap().tokens);
    assert_eq!(tokens_a, tokens_b);

    // ...while actually firing, deterministically per seed.
    assert!(stats_a.pool_pressure_spikes > 0, "{stats_a:?}");
    assert!(stats_a.transfer_stalls > 0, "{stats_a:?}");
    assert_eq!(events_a, events_b, "same seed must replay the same events");
    assert_eq!(stats_a, stats_b);
    assert_ne!(events_a, events_c, "different seeds should differ");
}

/// Dropped prefetches are re-fetched on demand: the consumer notices the
/// missing layer and falls back to a synchronous fetch, so output is
/// unchanged and only the drop counters show anything happened.
#[test]
fn prefetch_drops_are_refetched_without_changing_tokens() {
    let cfg = presets::tiny_test();
    let fault = FaultInjector::new(FaultConfig {
        prefetch_drop_rate: 0.6,
        ..FaultConfig::quiescent(5)
    });
    let faulted = Engine::new(
        &cfg,
        42,
        EngineOptions {
            fault: fault.clone(),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let clean = Engine::new(&cfg, 42, EngineOptions::default()).unwrap();

    let a = faulted.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
    let b = clean.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
    assert_eq!(a.tokens, b.tokens);
    assert!(fault.stats().prefetch_drops > 0);
}

/// The full degradation path: a pressure episode sized to outlast the
/// retry budget makes the initial policy infeasible; the controller
/// re-runs the analytic model over the fallback ladder and generation
/// finishes at the degraded policy.
#[test]
fn unrecoverable_pressure_degrades_and_completes() {
    let cfg = presets::tiny_test();

    let probe = Engine::new(&cfg, 7, EngineOptions::default()).unwrap();
    let layer_bytes = probe.layer_fetch_bytes(0);
    drop(probe);
    let device_capacity = 2 * layer_bytes + 512;

    let retry = RetryPolicy::default();
    let mut fc = FaultConfig::profile(21, FaultProfile::Moderate);
    fc.pool_pressure_rate = 1.0;
    fc.pool_pressure_bytes = device_capacity as u64;
    fc.pool_pressure_burst = retry.max_attempts as u64;
    let fault = FaultInjector::new(fc);

    let options = EngineOptions {
        device_capacity,
        fault: fault.clone(),
        retry,
        ..EngineOptions::default()
    };

    let controller = DegradationController::new(
        &hw::single_gpu_a100(),
        &presets::opt_30b(),
        &Workload::motivation(),
        QuantCostParams::lm_offload_kernels(),
    );
    let out = generate_with_degradation(
        &controller,
        &cfg,
        11,
        &options,
        Policy::flexgen_default(),
        &prompts(),
        6,
    )
    .expect("degradation must recover the run");

    assert!(!out.switches.is_empty(), "a policy switch must have happened");
    assert_eq!(out.generation.tokens[0].len(), 6);
    assert_eq!(out.generation.tokens[1].len(), 6);
    let s = fault.stats();
    assert!(s.degradations > 0, "{s:?}");
    assert!(s.pool_pressure_spikes > 0, "{s:?}");
    // The run finished under a cheaper policy than it started with.
    assert!(out.policy.weights_dtype.bits() < Policy::flexgen_default().weights_dtype.bits());
}
