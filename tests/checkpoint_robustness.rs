//! Robustness of the checkpoint reader: arbitrary and truncated inputs
//! must produce errors, never panics or huge allocations — the property
//! that makes a disk tier safe to point at untrusted paths.

use lm_engine::{write_checkpoint, Checkpoint};
use lm_models::presets;
use proptest::prelude::*;

fn tmp(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("lmoffload-fuzz-{tag}-{}.ckpt", std::process::id()))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random bytes never panic the reader.
    #[test]
    fn random_bytes_are_rejected_gracefully(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let path = tmp("rand");
        std::fs::write(&path, &data).unwrap();
        let result = std::panic::catch_unwind(|| Checkpoint::open(&path).map(|_| ()));
        std::fs::remove_file(&path).ok();
        prop_assert!(matches!(result, Ok(Err(_)) | Ok(Ok(()))), "reader panicked");
    }

    /// Truncating a valid checkpoint anywhere yields an error on open or
    /// on the first layer read — never a panic, never silent corruption
    /// being accepted as a full model.
    #[test]
    fn truncations_fail_cleanly(cut_pct in 1u32..99) {
        let cfg = presets::tiny_test();
        let path = tmp("trunc");
        write_checkpoint(&cfg, 5, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        let cut = (full.len() as u64 * cut_pct as u64 / 100) as usize;
        std::fs::write(&path, &full[..cut]).unwrap();

        let outcome = std::panic::catch_unwind(|| -> Result<(), lm_engine::CheckpointError> {
            match Checkpoint::open(&path) {
                Err(_) => Ok(()),
                Ok(mut ck) => {
                    // Header may have survived; every layer must then be
                    // readable or error out.
                    for i in 0..ck.num_layers() {
                        ck.load_layer(i)?;
                    }
                    Ok(())
                }
            }
        });
        std::fs::remove_file(&path).ok();
        match outcome {
            Ok(Ok(())) => {
                // Fully readable truncation can only happen if the cut was
                // beyond all layer data (trailing bytes) — the offset table
                // lives in the header, so this means nothing was lost.
                prop_assert!(cut_pct > 90, "cut at {cut_pct}% read back fully");
            }
            Ok(Err(_)) => {} // clean error: the desired outcome
            Err(_) => prop_assert!(false, "reader panicked at {cut_pct}%"),
        }
    }
}

#[test]
fn header_field_corruption_is_detected() {
    let cfg = presets::tiny_test();
    let path = tmp("hdr");
    write_checkpoint(&cfg, 5, &path).unwrap();
    let mut bytes = std::fs::read(&path).unwrap();
    // Corrupt the family tag (offset 8..12) to an unknown value.
    bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();
    assert!(Checkpoint::open(&path).is_err());
    std::fs::remove_file(&path).ok();
}
