//! Group-wise min-max quantization — a faithful implementation of the
//! paper's Algorithm 2 and Equations 10/11.
//!
//! The workload has four phases, exactly as the paper profiles them:
//! 1. **Pad** — extend the tensor so the group size divides it (lines 5-6);
//! 2. **Find min/max** — per group (lines 9-10);
//! 3. **Normalize** — `x_q = round((x-min)/(max-min)·(2^b-1))`, clamped
//!    (lines 12-14, Eq. 10);
//! 4. **Pack/reshape** — bit-pack to the target width (lines 16-18).
//!
//! Dequantization applies Eq. 11: `x = x_q/(2^b-1)·(max-min) + min`, reusing
//! the stored per-group min/max, so there is no min/max phase — matching
//! the cost asymmetry the performance model exploits (Eq. 16/24).

pub mod pack;

use crate::shape::Shape;
use crate::tensor::Tensor;
use bytes::Bytes;
use rayon::prelude::*;

/// Quantization parameters: target bit width and group size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantConfig {
    /// Bits per element after quantization (4 or 8; FlexGen's default is 4
    /// with group size 64).
    pub bits: u8,
    /// Elements per quantization group sharing one (min, max) pair.
    pub group_size: usize,
}

impl QuantConfig {
    /// FlexGen's default: 4-bit, groups of 64.
    pub fn int4() -> Self {
        QuantConfig {
            bits: 4,
            group_size: 64,
        }
    }

    /// 8-bit variant.
    pub fn int8() -> Self {
        QuantConfig {
            bits: 8,
            group_size: 64,
        }
    }

    /// Number of quantization levels minus one (`2^b - 1` in Eq. 10/11).
    pub fn levels(&self) -> f32 {
        ((1u32 << self.bits) - 1) as f32
    }

    fn validate(&self) {
        assert!(
            self.bits == 4 || self.bits == 8,
            "only 4- and 8-bit quantization supported, got {}",
            self.bits
        );
        assert!(self.group_size > 0, "group_size must be positive");
    }
}

/// A group-wise quantized tensor: packed codes plus per-group `(min, max)`
/// metadata, remembering the original shape for exact reconstruction of
/// padding.
#[derive(Debug, Clone)]
pub struct QuantizedTensor {
    shape: Shape,
    config: QuantConfig,
    /// Packed codes, `bits`-wide each, padded tail included.
    packed: Bytes,
    /// Per-group minimum.
    mins: Vec<f32>,
    /// Per-group range (`max - min`).
    ranges: Vec<f32>,
    /// Element count after padding to a multiple of `group_size`.
    padded_len: usize,
}

impl QuantizedTensor {
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn config(&self) -> QuantConfig {
        self.config
    }

    pub fn num_groups(&self) -> usize {
        self.mins.len()
    }

    /// Total bytes at rest: packed codes plus f32 metadata per group.
    pub fn bytes(&self) -> usize {
        self.packed.len() + (self.mins.len() + self.ranges.len()) * std::mem::size_of::<f32>()
    }

    /// Compression ratio versus f32 storage of the original tensor.
    pub fn compression_ratio(&self) -> f64 {
        (self.shape.numel() * std::mem::size_of::<f32>()) as f64 / self.bytes() as f64
    }

    /// Worst-case absolute reconstruction error: half a quantization step
    /// of the widest group.
    pub fn error_bound(&self) -> f32 {
        let widest = self.ranges.iter().copied().fold(0.0f32, f32::max);
        0.5 * widest / self.config.levels()
    }
}

/// Quantize a tensor (Algorithm 2). Groups are formed along the flattened
/// row-major order, which matches grouping along the last dimension when
/// `group_size` divides it (the common case for `[.., hidden]` tensors).
pub fn quantize(t: &Tensor, config: QuantConfig) -> QuantizedTensor {
    config.validate();
    let n = t.numel();
    // Phase 1: pad to a multiple of the group size.
    let padded_len = n.div_ceil(config.group_size) * config.group_size;
    let num_groups = padded_len / config.group_size;
    let levels = config.levels();

    // Phases 2-3, parallel over groups (independent, no sharing).
    let results: Vec<(f32, f32, Vec<u8>)> = (0..num_groups)
        .into_par_iter()
        .map(|g| {
            let start = g * config.group_size;
            let end = (start + config.group_size).min(n);
            let group = &t.data()[start..end];
            // Phase 2: find min and max within the group (lines 9-10).
            let mut min = f32::INFINITY;
            let mut max = f32::NEG_INFINITY;
            for &x in group {
                min = min.min(x);
                max = max.max(x);
            }
            if group.is_empty() {
                // Whole group is padding.
                min = 0.0;
                max = 0.0;
            }
            let range = max - min;
            let inv = if range > 0.0 { levels / range } else { 0.0 };
            // Phase 3: min-max normalize per Eq. 10, then clamp (lines 12-14).
            let mut codes = Vec::with_capacity(config.group_size);
            for &x in group {
                let q = ((x - min) * inv).round();
                codes.push(q.clamp(0.0, levels) as u8);
            }
            codes.resize(config.group_size, 0); // padded tail elements
            (min, range, codes)
        })
        .collect();

    let mut mins = Vec::with_capacity(num_groups);
    let mut ranges = Vec::with_capacity(num_groups);
    let mut all_codes = Vec::with_capacity(padded_len);
    for (min, range, codes) in results {
        mins.push(min);
        ranges.push(range);
        all_codes.extend_from_slice(&codes);
    }

    // Phase 4: pack to the target bit width (lines 16-18).
    let packed = match config.bits {
        4 => pack::pack_nibbles(&all_codes),
        8 => all_codes,
        _ => unreachable!("validated above"),
    };

    QuantizedTensor {
        shape: t.shape().clone(),
        config,
        packed: Bytes::from(packed),
        mins,
        ranges,
        padded_len,
    }
}

/// Dequantize per Eq. 11, dropping padding to restore the original shape.
pub fn dequantize(q: &QuantizedTensor) -> Tensor {
    let n = q.shape.numel();
    let codes: Vec<u8> = match q.config.bits {
        4 => pack::unpack_nibbles(&q.packed, q.padded_len),
        8 => q.packed.to_vec(),
        _ => unreachable!("config validated at quantize time"),
    };
    let levels = q.config.levels();
    let gs = q.config.group_size;

    let mut out = vec![0.0f32; n];
    out.par_chunks_mut(gs).enumerate().for_each(|(g, chunk)| {
        let min = q.mins[g];
        let range = q.ranges[g];
        let scale = range / levels;
        let group_codes = &codes[g * gs..g * gs + chunk.len()];
        for (x, &c) in chunk.iter_mut().zip(group_codes) {
            *x = c as f32 * scale + min;
        }
    });

    Tensor::from_vec(q.shape.clone(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn round_trip_error_within_bound() {
        let t = Tensor::randn([64, 48], 1.0, 33);
        for cfg in [QuantConfig::int4(), QuantConfig::int8()] {
            let q = quantize(&t, cfg);
            let d = dequantize(&q);
            let err = t.max_abs_diff(&d);
            assert!(
                err <= q.error_bound() + 1e-6,
                "{}-bit error {err} > bound {}",
                cfg.bits,
                q.error_bound()
            );
        }
    }

    #[test]
    fn int8_tighter_than_int4() {
        let t = Tensor::randn([1024], 1.0, 5);
        let e4 = t.max_abs_diff(&dequantize(&quantize(&t, QuantConfig::int4())));
        let e8 = t.max_abs_diff(&dequantize(&quantize(&t, QuantConfig::int8())));
        assert!(e8 < e4, "int8 err {e8} should beat int4 err {e4}");
    }

    #[test]
    fn constant_tensor_is_exact() {
        let t = Tensor::full([100], 3.5);
        let q = quantize(&t, QuantConfig::int4());
        assert!(dequantize(&q).allclose(&t, 0.0));
        assert_eq!(q.error_bound(), 0.0);
    }

    #[test]
    fn extremes_are_exact() {
        // Group min and max quantize to codes 0 and 2^b-1 and reconstruct
        // exactly (Eq. 10/11 are exact at the endpoints).
        let t = Tensor::from_vec([4], vec![-2.0, 0.1, 0.9, 2.0]);
        let q = quantize(
            &t,
            QuantConfig {
                bits: 4,
                group_size: 4,
            },
        );
        let d = dequantize(&q);
        assert_eq!(d.at(&[0]), -2.0);
        assert_eq!(d.at(&[3]), 2.0);
    }

    #[test]
    fn padding_respects_shape() {
        // 7 elements with group size 4 → one padded group.
        let t = Tensor::randn([7], 1.0, 8);
        let q = quantize(
            &t,
            QuantConfig {
                bits: 4,
                group_size: 4,
            },
        );
        assert_eq!(q.num_groups(), 2);
        let d = dequantize(&q);
        assert_eq!(d.numel(), 7);
        assert!(t.max_abs_diff(&d) <= q.error_bound() + 1e-6);
    }

    #[test]
    fn int4_compresses_roughly_4x_on_large_groups() {
        let t = Tensor::randn([4096, 64], 1.0, 9);
        let q = quantize(&t, QuantConfig::int4());
        // 4-bit codes = 8x vs f32, minus per-group metadata (8B/64 elems).
        let ratio = q.compression_ratio();
        assert!(ratio > 6.0 && ratio < 8.0, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "only 4- and 8-bit")]
    fn odd_bit_widths_rejected() {
        quantize(
            &Tensor::zeros([4]),
            QuantConfig {
                bits: 3,
                group_size: 4,
            },
        );
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(
            n in 1usize..500,
            gs in 1usize..128,
            bits in prop_oneof![Just(4u8), Just(8u8)],
            seed in 0u64..1000,
            std in 0.01f32..10.0,
        ) {
            let t = Tensor::randn([n], std, seed);
            let cfg = QuantConfig { bits, group_size: gs };
            let q = quantize(&t, cfg);
            let d = dequantize(&q);
            prop_assert_eq!(d.numel(), n);
            let err = t.max_abs_diff(&d);
            // Allow tiny float slack on top of the analytic bound.
            prop_assert!(err <= q.error_bound() * (1.0 + 1e-4) + 1e-6,
                "err {} > bound {}", err, q.error_bound());
        }

        #[test]
        fn prop_quantization_idempotent(n in 1usize..200, seed in 0u64..500) {
            // Dequantized values re-quantize to themselves (fixed point).
            let t = Tensor::randn([n], 1.0, seed);
            let cfg = QuantConfig::int4();
            let d1 = dequantize(&quantize(&t, cfg));
            let d2 = dequantize(&quantize(&d1, cfg));
            prop_assert!(d1.allclose(&d2, 1e-5));
        }
    }
}
