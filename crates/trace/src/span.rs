//! Task spans: one record per executed task instance, whether the time
//! base is virtual (the event-driven simulator) or a wall clock (the
//! real engine, via [`crate::Tracer`]). Includes the resource-exclusivity
//! checker and the ASCII Gantt renderer migrated from `lm-sim::timeline`.

use crate::task::TaskKind;
use serde::{Deserialize, Serialize};

/// One executed task instance. `start`/`end` are seconds since the run
/// origin — virtual seconds in the simulator, [`crate::TraceClock`]
/// seconds in the engine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Span {
    pub kind: TaskKind,
    /// Decode step (0-based).
    pub step: u64,
    /// Layer index.
    pub layer: u32,
    /// Batch index within the block (`None` for per-layer tasks).
    pub batch: Option<u32>,
    pub start: f64,
    pub end: f64,
}

impl Span {
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// The hardware resource this task occupies.
    pub fn resource(&self) -> &'static str {
        self.kind.resource()
    }
}

/// Check the physical invariant: spans on the same resource never overlap.
pub fn resource_overlaps(spans: &[Span]) -> Vec<(Span, Span)> {
    let mut by_resource: std::collections::HashMap<&str, Vec<Span>> = Default::default();
    for &s in spans {
        by_resource.entry(s.resource()).or_default().push(s);
    }
    let mut bad = Vec::new();
    for list in by_resource.values_mut() {
        list.sort_by(|a, b| a.start.total_cmp(&b.start));
        for w in list.windows(2) {
            if w[1].start < w[0].end - 1e-12 {
                bad.push((w[0], w[1]));
            }
        }
    }
    bad
}

/// Render an ASCII Gantt chart of the spans: one row per resource, time
/// binned into `width` columns over `[t0, t1]`.
pub fn render_gantt(spans: &[Span], width: usize) -> String {
    assert!(width >= 10, "need at least 10 columns");
    if spans.is_empty() {
        return String::from("(no spans)");
    }
    let t0 = spans.iter().map(|s| s.start).fold(f64::INFINITY, f64::min);
    let t1 = spans.iter().map(|s| s.end).fold(0.0f64, f64::max);
    let dt = ((t1 - t0) / width as f64).max(f64::MIN_POSITIVE);

    let glyph = |k: TaskKind| match k {
        TaskKind::LoadWeight => 'W',
        TaskKind::LoadCache => 'C',
        TaskKind::LoadActivation => 'a',
        TaskKind::StoreCache => 'c',
        TaskKind::StoreActivation => 's',
        TaskKind::ComputeCpu => '#',
        TaskKind::ComputeGpu => '%',
    };

    let mut out = String::new();
    out.push_str(&format!(
        "t0 = {t0:.3}s, t1 = {t1:.3}s, column = {:.3}ms\n",
        dt * 1e3
    ));
    for resource in ["H2D", "D2H", "CPU", "GPU"] {
        let mut row = vec!['.'; width];
        for s in spans.iter().filter(|s| s.resource() == resource) {
            let a = (((s.start - t0) / dt) as usize).min(width - 1);
            let b = (((s.end - t0) / dt).ceil() as usize).clamp(a + 1, width);
            for cell in &mut row[a..b] {
                *cell = glyph(s.kind);
            }
        }
        out.push_str(&format!("{resource:>4} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str("     W=load_weight C=load_cache a=load_act c=store_cache s=store_act #=cpu %=gpu\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span {
            kind,
            step: 0,
            layer: 0,
            batch: None,
            start,
            end,
        }
    }

    #[test]
    fn resources_map_correctly() {
        assert_eq!(span(TaskKind::LoadWeight, 0.0, 1.0).resource(), "H2D");
        assert_eq!(span(TaskKind::StoreCache, 0.0, 1.0).resource(), "D2H");
        assert_eq!(span(TaskKind::ComputeCpu, 0.0, 1.0).resource(), "CPU");
        assert_eq!(span(TaskKind::ComputeGpu, 0.0, 1.0).resource(), "GPU");
    }

    #[test]
    fn overlap_detection() {
        let ok = vec![
            span(TaskKind::LoadWeight, 0.0, 1.0),
            span(TaskKind::LoadCache, 1.0, 2.0),
            span(TaskKind::ComputeGpu, 0.5, 1.5), // different resource: fine
        ];
        assert!(resource_overlaps(&ok).is_empty());
        let bad = vec![
            span(TaskKind::LoadWeight, 0.0, 1.0),
            span(TaskKind::LoadCache, 0.5, 1.5), // same H2D link
        ];
        assert_eq!(resource_overlaps(&bad).len(), 1);
    }

    #[test]
    fn gantt_renders_all_rows() {
        let spans = vec![
            span(TaskKind::LoadWeight, 0.0, 0.5),
            span(TaskKind::ComputeCpu, 0.5, 1.0),
            span(TaskKind::ComputeGpu, 1.0, 1.2),
        ];
        let g = render_gantt(&spans, 40);
        assert!(g.contains("H2D |"));
        assert!(g.contains('W'));
        assert!(g.contains('#'));
        assert!(g.contains('%'));
        assert_eq!(g.lines().count(), 6);
    }

    #[test]
    fn empty_spans_handled() {
        assert_eq!(render_gantt(&[], 40), "(no spans)");
    }

    #[test]
    fn span_serde_round_trip() {
        let s = span(TaskKind::StoreActivation, 1.25, 2.5);
        let v = serde::Serialize::serialize(&s);
        let back: Span = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back.kind, s.kind);
        assert_eq!(back.start, s.start);
        assert_eq!(back.end, s.end);
        assert_eq!(back.batch, None);
    }
}
