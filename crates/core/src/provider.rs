//! The quantization-aware cost provider: the ground truth the simulator
//! executes, regardless of which framework *chose* the policy.
//!
//! Builds a [`BaseCostModel`] (transfer sizes already honour the policy's
//! dtypes) and folds the Eq. 3-7 quantization overheads into the six
//! tasks via [`TaskExtras`]:
//!
//! - Eq. 3: `T_init += quan_pf_wgt`
//! - Eq. 4: `load_weight += dequan_wgt`
//! - Eq. 5: `T_pf += quan_pf_cache`
//! - Eq. 6: `load_cache += dequan_old_cache`
//! - Eq. 7: `store_cache += quan_new_cache`

use crate::quant_model::{QuantCostParams, QuantModel};
use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_sim::{AttentionPlacement, BaseCostModel, Policy, TaskExtras};

/// Thread-setting quality applied to the base model's CPU/link factors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadFactors {
    /// Default PyTorch threading (oversubscribed, cache-thrashing).
    Default,
    /// LM-Offload's parallelism control (Algorithm 3's plan).
    Controlled,
}

impl ThreadFactors {
    /// (cpu_attention_factor, link_factor).
    ///
    /// Calibration (EXPERIMENTS.md): the paper's measured FlexGen
    /// throughputs imply the PyTorch CPU-attention path sustains only
    /// ~10 GFLOP/s on the dual Xeon under default threading (launch-bound
    /// per-head GEMVs — the very pathology §4 exists to fix), i.e. a
    /// factor of ~0.005 of the platform's sustained CPU FLOP/s.
    /// Parallelism control recovers the Fig. 8 gaps: compute −32%
    /// (0.005 → 0.0074) and transfer staging −20% (0.8 → 1.0).
    pub fn factors(self) -> (f64, f64) {
        match self {
            ThreadFactors::Default => (0.005, 0.80),
            ThreadFactors::Controlled => (0.0074, 1.0),
        }
    }
}

/// Build the ground-truth cost provider for a policy.
///
/// `params` is the kernel quality of the runtime executing the policy;
/// `threads` is its thread-setting quality.
pub fn quant_aware_provider(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: Policy,
    params: QuantCostParams,
    threads: ThreadFactors,
) -> BaseCostModel {
    let mut base = BaseCostModel::new(platform, model, workload, policy);
    let (cpu_factor, link_factor) = threads.factors();
    base.cpu_attention_factor = cpu_factor;
    base.link_factor = link_factor;

    let quant = QuantModel::new(platform, model, workload, params);
    let wc = 1.0 - policy.wg;
    let mut extras = TaskExtras::default();

    if policy.weights_dtype.is_quantized() {
        extras.init = quant.quan_pf_wgt_total(wc); // Eq. 3
        extras.load_weight = quant.dequan_wgt_per_layer(wc); // Eq. 4
    }
    if policy.kv_dtype.is_quantized() {
        match policy.attention {
            AttentionPlacement::Gpu => {
                extras.prefill_per_layer = quant.quan_pf_cache_per_layer(); // Eq. 5
                extras.dequant_per_kv_elem = quant.kv_dequant_per_elem(); // Eq. 6
                extras.quant_per_kv_elem = quant.kv_quant_per_elem(); // Eq. 7
            }
            AttentionPlacement::Cpu => {
                // Compressed cache consumed by CPU attention: the
                // (de)quantization moves into the compute task, in host
                // memory (the "always performs worse" bars of Fig. 3's
                // attention-offloading cluster).
                extras.cpu_kv_dequant_per_elem = quant.kv_dequant_per_elem_cpu();
                extras.cpu_kv_quant_per_elem = quant.kv_quant_per_elem_cpu();
            }
        }
    }
    base.extras = extras;
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_models::DType;
    use lm_sim::tasks::CostProvider;

    fn build(policy: Policy, threads: ThreadFactors) -> BaseCostModel {
        quant_aware_provider(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::motivation(),
            policy,
            QuantCostParams::flexgen_kernels(),
            threads,
        )
    }

    #[test]
    fn fp16_policy_has_no_quant_extras() {
        let m = build(Policy::flexgen_default(), ThreadFactors::Default);
        assert_eq!(m.extras, TaskExtras::default());
    }

    #[test]
    fn quantized_weights_add_init_and_load_costs() {
        let mut p = Policy::flexgen_default();
        p.weights_dtype = DType::Int4;
        p.wg = 0.5;
        let with = build(p, ThreadFactors::Default);
        let mut p16 = p;
        p16.weights_dtype = DType::F16;
        let without = build(p16, ThreadFactors::Default);
        assert!(with.extras.init > 0.0);
        assert!(with.extras.load_weight > 0.0);
        assert_eq!(without.extras.init, 0.0);
        // Init = quarter-size disk read plus the one-time quantization
        // (Eq. 3): strictly more than the bare Int4 disk read.
        assert!(with.init_time() > without.init_time() / 4.0);
    }

    #[test]
    fn kv_quant_extras_follow_attention_placement() {
        let mut p = Policy::flexgen_default();
        p.kv_dtype = DType::Int4;
        // CPU attention: the (de)quant moves into the CPU compute task.
        let cpu = build(p, ThreadFactors::Default);
        assert_eq!(cpu.extras.dequant_per_kv_elem, 0.0);
        assert!(cpu.extras.cpu_kv_dequant_per_elem > 0.0);
        assert!(cpu.extras.cpu_kv_quant_per_elem > 0.0);
        p.attention = AttentionPlacement::Gpu;
        let gpu = build(p, ThreadFactors::Default);
        assert!(gpu.extras.dequant_per_kv_elem > 0.0);
        assert!(gpu.extras.quant_per_kv_elem > 0.0);
        assert!(gpu.extras.prefill_per_layer > 0.0);
        assert_eq!(gpu.extras.cpu_kv_dequant_per_elem, 0.0);
    }

    #[test]
    fn kv_quant_with_cpu_attention_slows_the_compute_task() {
        // Fig. 3's attention-offloading cluster: a compressed cache makes
        // the offloaded attention strictly slower.
        let mut p = Policy::flexgen_default();
        let plain = build(p, ThreadFactors::Default);
        p.kv_dtype = DType::Int4;
        let compressed = build(p, ThreadFactors::Default);
        assert!(compressed.compute_cpu(8) > plain.compute_cpu(8));
        assert!(compressed.throughput() < plain.throughput());
    }

    #[test]
    fn controlled_threads_speed_up_cpu_attention() {
        let d = build(Policy::flexgen_default(), ThreadFactors::Default);
        let c = build(Policy::flexgen_default(), ThreadFactors::Controlled);
        assert!(c.compute_cpu(8) < d.compute_cpu(8));
        assert!(c.load_weight(8) < d.load_weight(8));
    }

    #[test]
    fn fig3_with_attention_offloading_quantization_hurts() {
        // §3.1 Observation 1, first half: with attention offloading,
        // weight quantization lowers throughput (41 -> 32 tokens/s in the
        // paper).
        let no_quant = build(Policy::flexgen_default(), ThreadFactors::Default);
        let mut p = Policy::flexgen_default();
        p.weights_dtype = DType::Int4;
        let quant = build(p, ThreadFactors::Default);
        assert!(
            quant.throughput() < no_quant.throughput(),
            "quant {} vs no-quant {}",
            quant.throughput(),
            no_quant.throughput()
        );
    }

    #[test]
    fn fig3_without_attention_offloading_kv_quant_wins() {
        // §3.1 Observation 1, second half + Observation 2: without
        // attention offloading, KV-cache quantization alone is the best
        // strategy (82 vs 46/35/55 tokens/s in the paper).
        let mut base = Policy::flexgen_default();
        base.attention = AttentionPlacement::Gpu;

        let no_quant = build(base, ThreadFactors::Default).throughput();
        let mut kv = base;
        kv.kv_dtype = DType::Int4;
        let kv_only = build(kv, ThreadFactors::Default).throughput();
        let mut wgt = base;
        wgt.weights_dtype = DType::Int4;
        let wgt_only = build(wgt, ThreadFactors::Default).throughput();
        let mut both = base;
        both.kv_dtype = DType::Int4;
        both.weights_dtype = DType::Int4;
        let both_q = build(both, ThreadFactors::Default).throughput();

        assert!(kv_only > no_quant * 1.3, "kv {kv_only} vs none {no_quant}");
        assert!(wgt_only < no_quant, "wgt {wgt_only} vs none {no_quant}");
        assert!(both_q < kv_only, "both {both_q} vs kv {kv_only}");
        assert!(both_q > wgt_only, "both {both_q} vs wgt {wgt_only}");
    }
}
