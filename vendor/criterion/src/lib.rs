//! Offline stand-in for `criterion` (see `vendor/README.md`).
//!
//! Keeps the benches compiling and runnable without the statistics
//! engine: each `Bencher::iter` body runs `sample_size` times and a
//! single mean wall-clock time is printed. Because timing overhead is
//! nontrivial, benches are skipped unless `LM_BENCH_RUN=1` is set —
//! `cargo bench` then completes instantly in CI while still
//! type-checking every bench.

use std::time::Instant;

pub use std::hint::black_box;

/// Declared throughput; recorded for display only.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
    BytesDecimal(u64),
}

/// Identifier for parameterised benchmarks.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

pub struct Bencher {
    iters: u64,
    total_nanos: u128,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.total_nanos = start.elapsed().as_nanos();
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, id: String, f: impl FnOnce(&mut Bencher)) {
        if !self.criterion.enabled {
            return;
        }
        let mut b = Bencher {
            iters: self.sample_size.max(1),
            total_nanos: 0,
        };
        f(&mut b);
        let mean_ns = b.total_nanos as f64 / b.iters as f64;
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) | Some(Throughput::BytesDecimal(n)) => {
                format!("  ({:.1} MiB/s)", n as f64 / (mean_ns / 1e9) / (1 << 20) as f64)
            }
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / (mean_ns / 1e9))
            }
            None => String::new(),
        };
        println!(
            "{}/{}: {:.3} ms/iter over {} iters{}",
            self.name,
            id,
            mean_ns / 1e6,
            b.iters,
            extra
        );
    }

    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(&mut self) {}
}

pub struct Criterion {
    enabled: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            enabled: std::env::var("LM_BENCH_RUN").map(|v| v == "1").unwrap_or(false),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            criterion: self,
        }
    }

    pub fn bench_function(&mut self, id: impl std::fmt::Display, f: impl FnOnce(&mut Bencher)) {
        let id = id.to_string();
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::var("LM_BENCH_RUN").map(|v| v == "1").unwrap_or(false) {
                $($group();)+
            } else {
                println!("benches compiled; set LM_BENCH_RUN=1 to execute");
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_when_enabled() {
        let mut c = Criterion { enabled: true };
        let mut hits = 0usize;
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| hits += 1));
        g.finish();
        assert_eq!(hits, 3);
    }

    #[test]
    fn group_skips_when_disabled() {
        let mut c = Criterion { enabled: false };
        let mut hits = 0usize;
        c.benchmark_group("t").bench_function("count", |b| b.iter(|| hits += 1));
        assert_eq!(hits, 0);
    }
}
