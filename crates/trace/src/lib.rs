//! # lm-trace
//!
//! Unified tracing and metrics for every execution layer of the
//! LM-Offload reproduction (DESIGN.md §9): the engine, the event-driven
//! simulator, the parallelism executor, and the fault injector all speak
//! one span vocabulary, so a single timeline shows what the system
//! actually did — and the drift report shows how far that is from what
//! the analytic model (Eq. 1-24) *said* it would do.
//!
//! Pieces:
//!
//! - [`task`]: the six decode tasks of Algorithm 1 ([`TaskKind`]) and
//!   their hardware-resource mapping — migrated here from `lm-sim` so
//!   every crate shares one vocabulary;
//! - [`span`]: the [`Span`] record (virtual or wall-clock), the
//!   resource-exclusivity checker and the ASCII Gantt renderer;
//! - [`clock`]: [`TraceClock`], a run-origin monotonic clock shared by
//!   the tracer and the fault injector so their events align;
//! - [`tracer`]: the [`Tracer`] — zero-cost when disabled (a `None`
//!   check per probe, like `lm-fault`'s injector), hierarchical scopes,
//!   per-thread lock-cheap buffers, task spans, instants;
//! - [`metrics`]: counters, gauges, and log-scale histograms with
//!   p50/p95/p99 summaries, snapshotted to JSON;
//! - [`expo`]: Prometheus/OpenMetrics text exposition of a metrics
//!   snapshot, with a parser closing the round-trip;
//! - [`flight`]: the bounded flight recorder — a ring of recent events
//!   frozen into a post-mortem [`FlightDump`] on first failure;
//! - [`perfetto`]: Chrome/Perfetto `trace.json` export (open in
//!   <https://ui.perfetto.dev>);
//! - [`drift`]: per-task predicted-vs-observed ratios — the number that
//!   says whether the cost model still describes the pipeline — plus
//!   the serve-path metric audit ([`ServeDriftReport`]).
//!
//! ```
//! use lm_trace::{TaskKind, Tracer};
//!
//! let tracer = Tracer::new();
//! {
//!     let _phase = tracer.scope("decode");
//!     let _span = tracer.task_span(TaskKind::LoadWeight, 0, 3, None);
//!     // ... stream layer 3's weights for token 0 ...
//! }
//! let report = tracer.snapshot();
//! assert_eq!(report.spans.len(), 1);
//! assert_eq!(report.scopes[0].name, "decode");
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod clock;
pub mod drift;
pub mod expo;
pub mod flight;
pub mod metrics;
pub mod perfetto;
pub mod span;
pub mod task;
pub mod tracer;

pub use clock::TraceClock;
pub use drift::{
    drift_report, serve_drift_report, DriftReport, MetricDrift, ServeDriftReport, TaskDrift,
};
pub use expo::ExpoError;
pub use flight::{FlightDump, FlightEvent, FlightRecorder};
pub use metrics::{HistogramSummary, MetricsRegistry, MetricsSnapshot};
pub use perfetto::PerfettoTrace;
pub use span::{render_gantt, resource_overlaps, Span};
pub use task::TaskKind;
pub use tracer::{InstantEvent, ScopeEvent, ScopeGuard, TaskSpanGuard, TraceReport, Tracer};
