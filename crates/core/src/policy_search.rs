//! LM-Offload's quantization-aware policy search.
//!
//! Same exhaustive search machinery as FlexGen's (`lm_baselines::search`),
//! but scored with the *full* cost model — base transfer/compute costs
//! plus the Eq. 3-7 quantization overheads — over the extended space that
//! includes 4-bit weights and KV cache. This is the §3 contribution: the
//! models make the extra dimensions safe to search.

use crate::provider::{quant_aware_provider, ThreadFactors};
use crate::quant_model::QuantCostParams;
use lm_baselines::flexgen::{Deployment, BATCH_CANDIDATES, NUM_BATCH_CANDIDATES};
use lm_baselines::search::{grid_search, SearchSpace};
use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_sim::{fits, Policy};

/// LM-Offload's evaluator: quantization-aware analytic throughput, `None`
/// when infeasible.
pub fn lm_offload_evaluator(
    platform: &Platform,
    model: &ModelConfig,
    workload: &Workload,
    policy: &Policy,
    params: QuantCostParams,
    threads: ThreadFactors,
) -> Option<f64> {
    if !fits(model, workload, platform, policy) {
        return None;
    }
    let cost = quant_aware_provider(platform, model, workload, *policy, params, threads);
    Some(cost.throughput())
}

/// Run LM-Offload's policy search: quantization-aware space, full cost
/// model, block shape sweep.
pub fn lm_offload_search(
    platform: &Platform,
    model: &ModelConfig,
    prompt_len: u64,
    gen_len: u64,
    params: QuantCostParams,
    threads: ThreadFactors,
) -> Option<Deployment> {
    lm_offload_search_in_space(
        &SearchSpace::lm_offload(),
        platform,
        model,
        prompt_len,
        gen_len,
        params,
        threads,
    )
}

/// The search over an arbitrary policy space — used for the extended
/// (Int8 / partial GPU KV) space of `SearchSpace::lm_offload_extended`,
/// which the performance models price without any new machinery.
#[allow(clippy::too_many_arguments)]
pub fn lm_offload_search_in_space(
    space: &SearchSpace,
    platform: &Platform,
    model: &ModelConfig,
    prompt_len: u64,
    gen_len: u64,
    params: QuantCostParams,
    threads: ThreadFactors,
) -> Option<Deployment> {
    let mut best: Option<Deployment> = None;
    for &bsz in &BATCH_CANDIDATES {
        for &nb in &NUM_BATCH_CANDIDATES {
            let w = Workload::new(prompt_len, gen_len, bsz, nb);
            if let Some((policy, tput)) = grid_search(space, |p| {
                lm_offload_evaluator(platform, model, &w, p, params, threads)
            }) {
                let better = best
                    .map(|b| tput > b.predicted_throughput)
                    .unwrap_or(true);
                if better {
                    best = Some(Deployment {
                        policy,
                        workload: w,
                        predicted_throughput: tput,
                    });
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_baselines::flexgen::flexgen_search;
    use lm_hardware::presets;
    use lm_models::presets as models;
    use lm_models::DType;

    fn search(model: &ModelConfig, gen: u64) -> Deployment {
        lm_offload_search(
            &presets::single_gpu_a100(),
            model,
            64,
            gen,
            QuantCostParams::lm_offload_kernels(),
            ThreadFactors::Controlled,
        )
        .expect("feasible deployment")
    }

    #[test]
    fn opt30b_uses_quantized_weights() {
        // Table 3: LM-Offload's OPT-30B policies quantize weights to keep
        // more of them resident (§5.2 "better utilizing GPU memory
        // capacity ... through effective quantization").
        let d = search(&models::opt_30b(), 32);
        assert_eq!(d.policy.weights_dtype, DType::Int4, "{:?}", d.policy);
    }

    #[test]
    fn predicted_throughput_beats_flexgens_choice() {
        // The searches share the evaluator machinery; LM-Offload's wider,
        // correctly-priced space can only do better under the ground-truth
        // model.
        let platform = presets::single_gpu_a100();
        let model = models::opt_30b();
        let params = QuantCostParams::lm_offload_kernels();
        let lm = search(&model, 32);
        let fg = flexgen_search(&platform, &model, 64, 32).unwrap();
        // Score FlexGen's policy under the same ground-truth evaluator.
        let fg_truth = lm_offload_evaluator(
            &platform,
            &model,
            &fg.workload,
            &fg.policy,
            params,
            ThreadFactors::Controlled,
        )
        .unwrap();
        assert!(
            lm.predicted_throughput >= fg_truth,
            "lm {} vs fg-under-truth {fg_truth}",
            lm.predicted_throughput
        );
    }

    #[test]
    fn search_monotone_in_model_size() {
        // Bigger models stream more and throughput falls.
        let d30 = search(&models::opt_30b(), 32);
        let d66 = search(&models::opt_66b(), 32);
        assert!(d66.predicted_throughput < d30.predicted_throughput);
    }

    #[test]
    fn extended_space_never_does_worse() {
        // Superset search with the same evaluator: predicted throughput
        // can only improve (and Int8/partial-cg may be chosen when they
        // price better).
        let platform = presets::single_gpu_a100();
        let model = models::opt_30b();
        let params = QuantCostParams::lm_offload_kernels();
        let std = search(&model, 16);
        let ext = lm_offload_search_in_space(
            &lm_baselines::search::SearchSpace::lm_offload_extended(),
            &platform,
            &model,
            64,
            16,
            params,
            ThreadFactors::Controlled,
        )
        .unwrap();
        assert!(ext.predicted_throughput >= std.predicted_throughput * 0.999);
    }

    #[test]
    fn deployment_is_feasible() {
        let platform = presets::single_gpu_a100();
        for model in [models::opt_30b(), models::llama_65b()] {
            let d = lm_offload_search(
                &platform,
                &model,
                64,
                16,
                QuantCostParams::lm_offload_kernels(),
                ThreadFactors::Controlled,
            )
            .unwrap();
            assert!(fits(&model, &d.workload, &platform, &d.policy), "{model:?}");
        }
    }
}
