//! Offline stand-in for the `tokio` crate (see `vendor/README.md` for
//! the vendoring policy). This is **not** the upstream codebase: it is a
//! from-scratch implementation of exactly the subset the `lm-serve`
//! async front end drives, API-compatible so the real crate can be
//! swapped in when a registry is available:
//!
//! - [`runtime::Runtime`] — a multi-threaded work-queue executor with
//!   `new` / `spawn` / `block_on`;
//! - [`task::JoinHandle`] — a future resolving to the spawned task's
//!   output (`Err(JoinError)` if the task panicked);
//! - [`sync::mpsc`] — the bounded channel (`channel`, `Sender::try_send`
//!   / `blocking_send` / `is_closed`, `Receiver::recv` (async) /
//!   `blocking_recv` / `try_recv`), with the same drop semantics the
//!   serving layer's disconnect handling relies on: dropping the
//!   `Receiver` makes every subsequent send fail `Closed`, and dropping
//!   the last `Sender` makes `recv` return `None` once the buffer
//!   drains.
//!
//! Wakers are honoured everywhere (an async `recv` parked on an empty
//! channel is woken by the `send` that fills it), so futures written
//! against this stand-in behave identically under the real tokio.

pub mod runtime;
pub mod sync;
pub mod task;
