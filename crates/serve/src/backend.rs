//! Serving backends: what produces the tokens and what the virtual clock
//! charges for them.
//!
//! The zig-zag equivalence tests (`tests/zigzag_block_schedule.rs`) prove
//! the engine's outputs are independent of batch composition — a
//! sequence generates the same tokens whether it runs alone or inside a
//! block. That licences the backend split used here: `materialize`
//! returns a request's full token stream up front (tokens are a function
//! of the request alone), while the *timing* of their delivery is the
//! scheduler's business, charged through [`ServeBackend::prefill_seconds`]
//! and [`ServeBackend::decode_step_seconds`] from the paper's analytic
//! cost model (Eq. 1-2, applied per-slot with the layer's weight stream
//! shared across the whole block — the amortisation serving exists for).

use crate::request::Request;
use lm_engine::{Engine, EngineError, EngineOptions, GenerateRequest};
use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_sim::{BaseCostModel, CostProvider, Policy};
use rand::{rngs::SmallRng, Rng, SeedableRng};

/// What the scheduler needs from an execution substrate: tokens,
/// per-task costs, and KV footprints.
///
/// `Send + Sync` because [`ServeSession::run_async`]
/// (crate::ServeSession::run_async) drives the scheduler on its own
/// thread while the caller's client code consumes token streams — both
/// backends are plain data or `Arc`-shared state, so the bound costs
/// nothing.
pub trait ServeBackend: Send + Sync {
    /// The model configuration requests are validated against.
    fn model(&self) -> &ModelConfig;

    /// The full token stream of one request run to completion. Must be a
    /// deterministic function of the request alone (batch-composition
    /// independence is what makes continuous batching output-transparent).
    fn materialize(&self, req: &Request) -> Result<Vec<u32>, EngineError>;

    /// Seconds to prefill a freshly admitted group of `batch` sequences
    /// padded to `padded_prompt_len`.
    fn prefill_seconds(&self, padded_prompt_len: usize, batch: usize) -> f64;

    /// Seconds for one decode step over the active slots, where
    /// `contexts[i]` is slot `i`'s current sequence length. Each layer's
    /// weight stream is charged once for the whole block; per-slot cache,
    /// activation and compute costs accumulate on their resources and the
    /// step takes the max (Eq. 2 with a heterogeneous batch).
    fn decode_step_seconds(&self, contexts: &[u64]) -> f64;

    /// At-rest KV bytes one sequence holds at context length `context`
    /// (all layers) — the size of its admission lease.
    fn kv_bytes_at(&self, context: usize) -> usize;
}

/// The analytic backend: OPT-30B-class costs from [`BaseCostModel`] with
/// synthetic, seed-derived token streams. This is the backend the
/// `repro serve` experiment runs — real byte-level execution at 30B scale
/// is exactly what offloading research cannot assume.
pub struct AnalyticBackend {
    cfg: ModelConfig,
    platform: Platform,
    policy: Policy,
    /// Per-slot decode model: `gpu_batch = 1`, `prompt_len = 1`, so
    /// `kv_elems_at(c - 1)` is one sequence's cache at context `c`.
    decode: BaseCostModel,
}

impl AnalyticBackend {
    pub fn new(platform: Platform, cfg: ModelConfig, policy: Policy) -> Self {
        let slot = Workload::new(1, 1, 1, 1);
        let decode = BaseCostModel::new(&platform, &cfg, &slot, policy);
        AnalyticBackend {
            cfg,
            platform,
            policy,
            decode,
        }
    }

    /// The paper's serving target: OPT-30B on a single A100 host under
    /// the FlexGen default policy.
    pub fn opt_30b() -> Self {
        AnalyticBackend::new(
            lm_hardware::presets::single_gpu_a100(),
            lm_models::presets::opt_30b(),
            Policy::flexgen_default(),
        )
    }

    pub fn policy(&self) -> &Policy {
        &self.policy
    }
}

impl ServeBackend for AnalyticBackend {
    fn model(&self) -> &ModelConfig {
        &self.cfg
    }

    fn materialize(&self, req: &Request) -> Result<Vec<u32>, EngineError> {
        let mut rng = SmallRng::seed_from_u64(req.seed);
        Ok((0..req.gen_len)
            .map(|_| rng.gen_range(1u32..self.cfg.vocab_size as u32))
            .collect())
    }

    fn prefill_seconds(&self, padded_prompt_len: usize, batch: usize) -> f64 {
        let w = Workload::new(padded_prompt_len.max(1) as u64, 1, batch.max(1) as u64, 1);
        let m = BaseCostModel::new(&self.platform, &self.cfg, &w, self.policy);
        m.prefill_layer() * self.cfg.num_layers as f64
    }

    fn decode_step_seconds(&self, contexts: &[u64]) -> f64 {
        if contexts.is_empty() {
            return 0.0;
        }
        // One layer fetch serves every slot in the block (the zig-zag
        // amortisation); everything else accumulates per slot.
        let mut h2d = self.decode.load_weight(0);
        let (mut d2h, mut cpu, mut gpu) = (0.0f64, 0.0f64, 0.0f64);
        for &c in contexts {
            let token = c.saturating_sub(1);
            h2d += self.decode.load_cache(token) + self.decode.load_activation(token);
            d2h += self.decode.store_cache(token) + self.decode.store_activation(token);
            cpu += self.decode.compute_cpu(token);
            gpu += self.decode.compute_gpu(token);
        }
        h2d.max(d2h).max(cpu).max(gpu) * self.cfg.num_layers as f64
    }

    fn kv_bytes_at(&self, context: usize) -> usize {
        let elems = 2 * context as u64 * self.cfg.hidden;
        self.policy.kv_dtype.bytes_for(elems) as usize * self.cfg.num_layers as usize
    }
}

/// A backend over the *real* miniature engine: tokens come from actual
/// `Engine::run` execution (so scheduler outputs are checkable against
/// solo runs token-for-token), while step timing reuses the analytic
/// model at the engine's model scale.
pub struct EngineBackend {
    engine: Engine,
    analytic: AnalyticBackend,
}

impl EngineBackend {
    /// Build over an engine with the given options; `strict: true`
    /// reuses the engine's pre-flight model analysis as the serving
    /// pre-flight (admission inherits the `LMA` gate).
    pub fn new(cfg: &ModelConfig, seed: u64, options: EngineOptions) -> Result<Self, EngineError> {
        let engine = Engine::new(cfg, seed, options)?;
        let analytic = AnalyticBackend::new(
            lm_hardware::presets::single_gpu_a100(),
            cfg.clone(),
            Policy::flexgen_default(),
        );
        Ok(EngineBackend { engine, analytic })
    }

    /// The tiny test model — the configuration integration tests serve.
    pub fn tiny_test(seed: u64) -> Result<Self, EngineError> {
        EngineBackend::new(&lm_models::presets::tiny_test(), seed, EngineOptions::default())
    }

    pub fn engine(&self) -> &Engine {
        &self.engine
    }
}

impl ServeBackend for EngineBackend {
    fn model(&self) -> &ModelConfig {
        self.engine.model()
    }

    fn materialize(&self, req: &Request) -> Result<Vec<u32>, EngineError> {
        let gen = self
            .engine
            .run(&GenerateRequest::new(vec![req.prompt.clone()], req.gen_len))?;
        Ok(gen.tokens.into_iter().next().unwrap_or_default())
    }

    fn prefill_seconds(&self, padded_prompt_len: usize, batch: usize) -> f64 {
        self.analytic.prefill_seconds(padded_prompt_len, batch)
    }

    fn decode_step_seconds(&self, contexts: &[u64]) -> f64 {
        self.analytic.decode_step_seconds(contexts)
    }

    fn kv_bytes_at(&self, context: usize) -> usize {
        self.analytic.kv_bytes_at(context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_tokens_are_seed_deterministic() {
        let b = AnalyticBackend::opt_30b();
        let req = Request::new(3, vec![1, 2, 3], 16).with_seed(99);
        let t1 = b.materialize(&req).unwrap();
        let t2 = b.materialize(&req).unwrap();
        assert_eq!(t1, t2);
        assert_eq!(t1.len(), 16);
        assert!(t1.iter().all(|&t| (t as u64) < b.model().vocab_size));
        let other = b.materialize(&req.clone().with_seed(100)).unwrap();
        assert_ne!(t1, other);
    }

    #[test]
    fn shared_weight_stream_makes_batched_steps_cheaper_per_token() {
        let b = AnalyticBackend::opt_30b();
        let solo = b.decode_step_seconds(&[64]);
        let eight = b.decode_step_seconds(&[64; 8]);
        // Eight slots in one step must be far cheaper than eight solo
        // steps — the weight stream is paid once, not eight times.
        assert!(eight < 8.0 * solo * 0.6, "eight {eight} vs solo {solo}");
        assert!(eight >= solo, "more slots cannot be cheaper than one");
        assert_eq!(b.decode_step_seconds(&[]), 0.0);
    }

    #[test]
    fn kv_lease_grows_with_context() {
        let b = AnalyticBackend::opt_30b();
        assert!(b.kv_bytes_at(128) > b.kv_bytes_at(64));
        assert_eq!(b.kv_bytes_at(0), 0);
    }

    #[test]
    fn engine_backend_materializes_real_tokens() {
        let b = EngineBackend::tiny_test(11).unwrap();
        let req = Request::new(0, vec![1, 2, 3, 4], 5);
        let tokens = b.materialize(&req).unwrap();
        assert_eq!(tokens.len(), 5);
        // Same prompt through the engine directly: identical stream.
        let solo = b
            .engine()
            .run(&GenerateRequest::new(vec![vec![1, 2, 3, 4]], 5))
            .unwrap();
        assert_eq!(tokens, solo.tokens[0]);
    }

    #[test]
    fn engine_backend_surfaces_typed_validation_errors() {
        let b = EngineBackend::tiny_test(11).unwrap();
        let req = Request::new(0, vec![7; 500], 100);
        match b.materialize(&req) {
            Err(EngineError::InvalidRequest { reason }) => {
                assert!(reason.contains("max_seq_len"), "{reason}")
            }
            other => panic!("expected InvalidRequest, got ok={}", other.is_ok()),
        }
    }
}
