//! End-to-end overload-resilience tests (DESIGN.md §12): for *any*
//! storm seed and profile the continuous scheduler must return every KV
//! lease to the serve pool and resolve every request exactly once; and
//! a request whose deadline expires while it is still queued must be
//! rejected with a typed deadline reason without ever occupying a slot.
#![allow(clippy::unwrap_used)]

use lm_fault::{FaultConfig, FaultInjector, RetryPolicy, StormProfile};
use lm_serve::{
    synth_traffic, AnalyticBackend, KvMode, RejectReason, Request, ServeBackend, ServeConfig,
    ServeSession,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// RAII-lease invariant under arbitrary storms: whatever mix of
    /// disconnects, crashes, pool pressure and stalls a seed produces,
    /// the pool balance is zero at end of run, every request reaches
    /// exactly one terminal state, and admissions are conserved.
    #[test]
    fn any_storm_seed_reclaims_every_kv_lease(
        seed in any::<u64>(),
        profile_idx in 0usize..StormProfile::ALL.len(),
        n in 4usize..20,
    ) {
        let profile = StormProfile::ALL[profile_idx];
        let backend = AnalyticBackend::opt_30b();
        let traffic = synth_traffic(seed, 4.0, n, backend.model());
        let cfg = ServeConfig {
            fault: FaultInjector::new(FaultConfig::storm(seed, profile)),
            retry: RetryPolicy::fast_test().with_seeded_jitter(seed, 0.5),
            ..ServeConfig::default()
        };
        let out = ServeSession::new(&backend).config(cfg).run(traffic).unwrap().outcome;
        prop_assert_eq!(
            out.kv_leaked_bytes, 0,
            "leaked {} bytes under {} storm seed {}", out.kv_leaked_bytes, profile.name(), seed
        );
        // The page-table RAII invariant, independent of byte accounting:
        // crashes, cancellations and preemptions must unmap every page
        // (shared mappings included) by end of run.
        prop_assert_eq!(
            out.kv_pages_leaked, 0,
            "leaked {} pages under {} storm seed {}", out.kv_pages_leaked, profile.name(), seed
        );
        prop_assert_eq!(out.terminal_count(), n);
        prop_assert!(out.stats.admissions_balanced(), "stats: {:?}", out.stats);
    }
}

/// A deadline that expires while the request is still in the wait queue
/// resolves as a typed deadline rejection — and the request never
/// occupies a slot: no token is ever emitted for it and no admission is
/// charged to it.
#[test]
fn queued_deadline_expiry_rejects_without_ever_taking_a_slot() {
    let backend = AnalyticBackend::opt_30b();
    // One slot only, held for a long generation by a higher-priority
    // request; the doomed request's deadline expires while it waits.
    // Slab mode: `max_slots` is a hard concurrency ceiling only there —
    // the paged planner derives concurrency from page residency and
    // would run both requests at once (and its deadline-rescue path
    // exists precisely to preempt for fresh deadline-holders).
    let cfg = ServeConfig {
        max_slots: 1,
        kv_mode: KvMode::Slab,
        ..ServeConfig::default()
    };
    let hog = Request::new(0, vec![1, 2, 3], 48)
        .with_priority(2)
        .with_arrival_us(0);
    let doomed = Request::new(1, vec![4, 5], 8)
        .with_priority(0)
        .with_arrival_us(0)
        .with_deadline_us(1_000_000); // 1 virtual second: far before the hog finishes
    let mut events = Vec::new();
    let out = ServeSession::new(&backend)
        .config(cfg)
        .run_streaming(vec![hog, doomed], &mut |e| events.push(e))
        .unwrap()
        .outcome;

    assert_eq!(out.responses.len(), 1, "the hog completes");
    assert_eq!(out.responses[0].id, 0);
    assert_eq!(out.rejections.len(), 1);
    let rej = &out.rejections[0];
    assert_eq!(rej.id, 1);
    assert!(
        matches!(rej.reason, RejectReason::DeadlineExpired { .. }),
        "expected a deadline rejection, got {:?}",
        rej.reason
    );
    assert_eq!(out.deadline_misses, 1);
    assert!(
        events.iter().all(|e| e.request_id != 1),
        "the expired request must never emit a token"
    );
    assert_eq!(
        out.stats.admitted, 1,
        "only the hog is ever admitted: {:?}",
        out.stats
    );
}
