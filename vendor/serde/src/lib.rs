//! Offline stand-in for `serde` (see `vendor/README.md`).
//!
//! Instead of upstream serde's visitor machinery, this subset uses a
//! concrete value tree: [`Serialize`] renders a type into a [`Value`]
//! and [`Deserialize`] reads one back. The derive macros (feature
//! `derive`, crate `serde_derive`) generate impls for named-field
//! structs and unit-variant enums — the only shapes this workspace
//! serialises. `serde_json` (also vendored) prints/parses the tree.

use std::collections::{BTreeMap, HashMap};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Object representation: sorted keys give deterministic output.
pub type Map = BTreeMap<String, Value>;

/// The serialised form of any value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Non-negative integers (u64 keeps full precision).
    PosInt(u64),
    /// Negative integers.
    NegInt(i64),
    Float(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::PosInt(u) => Some(*u as f64),
            Value::NegInt(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::PosInt(u) => Some(*u),
            Value::Float(f) if *f >= 0.0 && f.fract() == 0.0 => Some(*f as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::PosInt(u) => i64::try_from(*u).ok(),
            Value::NegInt(i) => Some(*i),
            Value::Float(f) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::PosInt(_) | Value::NegInt(_) => "integer",
            Value::Float(_) => "float",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Index into objects by key (`value["field"]`), serde_json-style:
/// missing keys yield `Value::Null` rather than panicking.
impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        const NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

/// Render `self` into a [`Value`].
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuild `Self` from a [`Value`].
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Helper used by derived impls: fetch and deserialize a struct field.
/// Missing keys deserialize from `Null` so `Option` fields default to
/// `None`, matching upstream serde's treatment with default options.
pub fn field<T: Deserialize>(map: &Map, name: &str) -> Result<T, Error> {
    match map.get(name) {
        Some(v) => T::deserialize(v)
            .map_err(|e| Error::custom(format!("field '{name}': {e}"))),
        None => T::deserialize(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field '{name}'"))),
    }
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!("expected {expected}, got {}", got.kind())))
}

// ---- primitives ------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::PosInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let u = value.as_u64().ok_or_else(|| {
                    Error::custom(format!("expected unsigned integer, got {}", value.kind()))
                })?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let v = *self as i64;
                if v < 0 { Value::NegInt(v) } else { Value::PosInt(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let i = value.as_i64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", value.kind()))
                })?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => type_err("single-character string", other),
        }
    }
}

// ---- containers ------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(v) => v.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(a) => a.iter().map(T::deserialize).collect(),
            other => type_err("array", other),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        self.as_slice().serialize()
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let v = Vec::<T>::deserialize(value)?;
        let n = v.len();
        <[T; N]>::try_from(v)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:expr)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Array(a) if a.len() == $len => {
                        Ok(($($name::deserialize(&a[$idx])?,)+))
                    }
                    other => type_err(concat!("array of length ", $len), other),
                }
            }
        }
    )+};
}
impl_tuple! {
    (A.0 ; 1),
    (A.0, B.1 ; 2),
    (A.0, B.1, C.2 ; 3),
    (A.0, B.1, C.2, D.3 ; 4),
    (A.0, B.1, C.2, D.3, E.4 ; 5),
    (A.0, B.1, C.2, D.3, E.4, F.5 ; 6),
}

impl<V: Serialize, S> Serialize for HashMap<String, V, S> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.serialize());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
                .collect(),
            other => type_err("object", other),
        }
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => type_err("null", other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::deserialize(&12345u64.serialize()).unwrap(), 12345);
        assert_eq!(i32::deserialize(&(-7i32).serialize()).unwrap(), -7);
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(bool::deserialize(&true.serialize()).unwrap(), true);
        assert_eq!(
            String::deserialize(&String::from("hi").serialize()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        assert_eq!(Vec::<(u32, u32)>::deserialize(&v.serialize()).unwrap(), v);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::deserialize(&o.serialize()).unwrap(), None);
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1.5f64);
        assert_eq!(
            HashMap::<String, f64>::deserialize(&m.serialize()).unwrap(),
            m
        );
    }

    #[test]
    fn option_field_absent_is_none() {
        let m = Map::new();
        let x: Option<u32> = field(&m, "absent").unwrap();
        assert_eq!(x, None);
        let e: Result<u32, _> = field(&m, "absent");
        assert!(e.is_err());
    }

    #[test]
    fn big_u64_keeps_precision() {
        let big = u64::MAX - 1;
        assert_eq!(u64::deserialize(&big.serialize()).unwrap(), big);
    }
}
