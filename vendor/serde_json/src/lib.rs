//! Offline stand-in for `serde_json` (see `vendor/README.md`).
//!
//! Prints and parses the vendored serde [`Value`] tree. Floats are
//! written with `{:?}` (shortest representation that round-trips, and
//! keeps a trailing `.0` so a float never silently becomes an int).

pub use serde::Value;

/// Error from parsing or conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.serialize()
}

pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value).map_err(Error::from)
}

pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::deserialize(&value).map_err(Error::from)
}

// ---- printing --------------------------------------------------------

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        // JSON has no Inf/NaN; upstream serde_json writes null.
        out.push_str("null");
    }
}

fn newline_indent(out: &mut String, indent: usize, level: usize) {
    out.push('\n');
    for _ in 0..indent * level {
        out.push(' ');
    }
}

fn write_value(out: &mut String, v: &Value, pretty: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::PosInt(u) => out.push_str(&u.to_string()),
        Value::NegInt(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (idx, item) in items.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, level + 1);
                }
                write_value(out, item, pretty, level + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, level);
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (idx, (k, item)) in map.iter().enumerate() {
                if idx > 0 {
                    out.push(',');
                }
                if let Some(ind) = pretty {
                    newline_indent(out, ind, level + 1);
                }
                write_escaped(out, k);
                out.push(':');
                if pretty.is_some() {
                    out.push(' ');
                }
                write_value(out, item, pretty, level + 1);
            }
            if let Some(ind) = pretty {
                newline_indent(out, ind, level);
            }
            out.push('}');
        }
    }
}

// ---- parsing ---------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(Error::new(format!(
                "unexpected character '{}' at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs unsupported — no caller emits
                            // non-BMP escapes (write_escaped only escapes
                            // control characters).
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one full UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().expect("non-empty checked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(i) = stripped.parse::<i64>() {
                    return Ok(Value::NegInt(-i));
                }
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::PosInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number '{text}'")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_parse_round_trip() {
        let mut m = serde::Map::new();
        m.insert("name".into(), Value::String("opt-6.7b\n".into()));
        m.insert("layers".into(), Value::PosInt(32));
        m.insert("ratio".into(), Value::Float(0.25));
        m.insert("neg".into(), Value::NegInt(-3));
        m.insert(
            "dims".into(),
            Value::Array(vec![Value::PosInt(1), Value::PosInt(2)]),
        );
        let v = Value::Object(m);
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains("\n  \"layers\": 32"));
    }

    #[test]
    fn floats_keep_point_zero() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
    }

    #[test]
    fn typed_round_trip() {
        let xs: Vec<(u32, u32)> = vec![(1, 2), (3, 4)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(u32, u32)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }
}
