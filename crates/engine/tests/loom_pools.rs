//! Model-checking of the `MemPool` lease-accounting protocol
//! (`cargo test -p lm-engine --features loom`).
//!
//! `src/pools.rs` guards `{used, peak, allocs}` with one mutex; leases
//! release their bytes in `Drop`. The invariants the checker enumerates
//! here over every interleaving: `used` never exceeds capacity, a
//! rejected allocation leaves the state untouched, concurrent releases
//! and grants never under- or over-count, and once every lease is dropped
//! the pool drains to exactly zero. The pool itself uses `parking_lot`,
//! which loom cannot instrument, so the test re-states the same
//! lock-then-update protocol over loom's `Mutex`.

#![cfg(feature = "loom")]
#![allow(clippy::unwrap_used)]

use loom::sync::{Arc, Mutex};
use loom::thread;

/// `PoolState` from `src/pools.rs`.
#[derive(Default)]
struct PoolState {
    used: usize,
    peak: usize,
    allocs: u64,
}

struct Pool {
    capacity: usize,
    inner: Mutex<PoolState>,
}

struct Lease {
    pool: Arc<Pool>,
    bytes: usize,
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.pool.inner.lock();
        assert!(st.used >= self.bytes, "pool accounting underflow");
        st.used -= self.bytes;
    }
}

impl Pool {
    fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Pool {
            capacity,
            inner: Mutex::new(PoolState::default()),
        })
    }

    /// `MemPool::alloc` without the fault-injection capacity shrink.
    fn alloc(self: &Arc<Self>, bytes: usize) -> Option<Lease> {
        let mut st = self.inner.lock();
        if st.used + bytes > self.capacity {
            return None;
        }
        st.used += bytes;
        st.peak = st.peak.max(st.used);
        st.allocs += 1;
        Some(Lease {
            pool: Arc::clone(self),
            bytes,
        })
    }
}

#[test]
fn concurrent_alloc_free_never_overcommits_and_drains_to_zero() {
    loom::model(|| {
        let pool = Pool::new(100);
        let handles: Vec<_> = [60usize, 60]
            .into_iter()
            .map(|bytes| {
                let pool = Arc::clone(&pool);
                thread::spawn(move || {
                    // 60 + 60 > 100: at most one grant can be live at a
                    // time; alloc-drop-alloc must see freed bytes again.
                    let first = pool.alloc(bytes).is_some();
                    {
                        let st = pool.inner.lock();
                        assert!(st.used <= 100, "overcommit: {}", st.used);
                    }
                    // The lease (if granted) dropped above; retry must
                    // succeed eventually in at least one interleaving —
                    // here just check it never corrupts the books.
                    let second = pool.alloc(bytes).is_some();
                    (first, second)
                })
            })
            .collect();
        let grants: Vec<(bool, bool)> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        let st = pool.inner.lock();
        assert_eq!(st.used, 0, "every lease must be released");
        assert!(st.peak <= 100, "peak {} exceeded capacity", st.peak);
        let granted: u64 = grants
            .iter()
            .map(|&(a, b)| u64::from(a) + u64::from(b))
            .sum();
        assert_eq!(st.allocs, granted, "grant count drifted");
        // A request can fail only while the other thread's lease is live,
        // so the very first grant (empty pool) always lands somewhere.
        assert!(granted >= 1, "nobody got a grant from an empty pool");
    });
}

#[test]
fn rejected_alloc_leaves_state_untouched() {
    loom::model(|| {
        let pool = Pool::new(100);
        let holder = pool.alloc(80).unwrap();
        let t = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || pool.alloc(30).is_some())
        };
        let granted = t.join().unwrap();
        assert!(!granted, "30 bytes cannot fit beside 80/100");
        let st = pool.inner.lock();
        assert_eq!(st.used, 80, "failed alloc must not leak");
        assert_eq!(st.allocs, 1);
        drop(st);
        drop(holder);
        assert_eq!(pool.inner.lock().used, 0);
    });
}

#[test]
fn lease_release_makes_bytes_reusable_across_threads() {
    loom::model(|| {
        let pool = Pool::new(64);
        let lease = pool.alloc(64).unwrap();
        let t = {
            let pool = Arc::clone(&pool);
            thread::spawn(move || {
                // Move the lease to another thread and free it there —
                // the Drop path the engine exercises when a prefetched
                // layer is released by the loader thread.
                drop(lease);
                pool.alloc(64).is_some()
            })
        };
        assert!(t.join().unwrap(), "freed bytes must be grantable");
        assert_eq!(pool.inner.lock().used, 0);
    });
}
