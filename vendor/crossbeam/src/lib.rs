//! Offline stand-in for `crossbeam` (see `vendor/README.md`).
//!
//! Provides the two pieces the workspace uses: MPMC `channel`s (with a
//! true rendezvous at capacity 0 — the engine's double-buffered
//! prefetcher depends on a zero-capacity hand-off to bound in-flight
//! layers) and `scope` for borrowing scoped threads.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        /// Items popped over the channel's lifetime — lets a rendezvous
        /// sender detect that *its* item was taken.
        popped: u64,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Capacity; `None` = unbounded, `Some(0)` = rendezvous.
        cap: Option<usize>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by `send` on a channel with no receivers.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` on an empty channel with no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            // Wait for room (bounded channels only).
            if let Some(cap) = self.shared.cap {
                let effective = cap.max(1);
                while st.queue.len() >= effective {
                    if st.receivers == 0 {
                        return Err(SendError(value));
                    }
                    st = self.shared.not_full.wait(st).unwrap();
                }
            }
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            let handoff_target = st.popped + 1;
            self.shared.not_empty.notify_one();
            if self.shared.cap == Some(0) {
                // Rendezvous: block until a receiver takes the item (or
                // every receiver disappears — then the send has failed,
                // but the value is gone; crossbeam would return it, no
                // caller in this workspace inspects the returned value).
                while st.popped < handoff_target && st.receivers > 0 {
                    st = self.shared.not_full.wait(st).unwrap();
                }
                if st.popped < handoff_target {
                    // Receivers vanished with our item still queued.
                    return Err(SendError(st.queue.pop_back().expect("item still queued")));
                }
            }
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = st.queue.pop_front() {
                    st.popped += 1;
                    self.shared.not_full.notify_all();
                    return Ok(value);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.queue.pop_front() {
                Some(value) => {
                    st.popped += 1;
                    self.shared.not_full.notify_all();
                    Ok(value)
                }
                None => Err(RecvError),
            }
        }
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                popped: 0,
                senders: 1,
                receivers: 1,
            }),
            cap,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A bounded MPMC channel; capacity 0 gives rendezvous semantics
    /// (`send` returns only after a `recv` has taken the item).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// An unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }
}

/// Scoped threads in crossbeam's calling convention: the closure passed
/// to [`Scope::spawn`] receives a scope handle again. Upstream that
/// handle allows nested spawns; no call site in this workspace uses it
/// (every spawned closure is `|_| ...`), so here it is the placeholder
/// [`SpawnedScope`].
pub struct Scope<'scope, 'env> {
    /// Held by value: `&thread::Scope` is `Copy`, and `thread::Scope::
    /// spawn` demands a receiver with exactly the `'scope` lifetime, so
    /// the wrapper must not reborrow it through a shorter-lived `&self`.
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Placeholder handed to spawned closures in place of a nested scope.
pub struct SpawnedScope {
    _private: (),
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&SpawnedScope) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        self.inner.spawn(move || f(&SpawnedScope { _private: () }))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned.
/// All spawned threads are joined before this returns. A panicking child
/// propagates as a panic (upstream crossbeam reports it through the
/// `Err` variant; every caller in this workspace `expect`s the result,
/// so the observable behaviour — a panic — is the same).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn std::any::Any + Send + 'static>>
where
    F: FnOnce(&Scope<'_, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::channel;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn unbounded_mpmc_delivers_everything() {
        let (tx, rx) = channel::unbounded::<usize>();
        let total = 1000;
        let seen = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..4 {
                let rx = rx.clone();
                let seen = &seen;
                s.spawn(move |_| {
                    while rx.recv().is_ok() {
                        seen.fetch_add(1, Ordering::SeqCst);
                    }
                });
            }
            for i in 0..total {
                tx.send(i).unwrap();
            }
            drop(tx);
            drop(rx);
        })
        .unwrap();
        assert_eq!(seen.load(Ordering::SeqCst), total);
    }

    #[test]
    fn rendezvous_blocks_until_taken() {
        // With capacity 0, the sender cannot run ahead: after send(i)
        // returns, the receiver must already have taken item i.
        let (tx, rx) = channel::bounded::<usize>(0);
        let in_flight = std::sync::Arc::new(AtomicUsize::new(0));
        let worst = std::sync::Arc::new(AtomicUsize::new(0));
        let fi = std::sync::Arc::clone(&in_flight);
        let fw = std::sync::Arc::clone(&worst);
        let producer = std::thread::spawn(move || {
            for i in 0..100 {
                fi.fetch_add(1, Ordering::SeqCst);
                tx.send(i).unwrap();
                let now = fi.load(Ordering::SeqCst);
                fw.fetch_max(now, Ordering::SeqCst);
            }
        });
        for expect in 0..100 {
            let got = rx.recv().unwrap();
            in_flight.fetch_sub(1, Ordering::SeqCst);
            assert_eq!(got, expect);
            std::thread::sleep(Duration::from_micros(50));
        }
        producer.join().unwrap();
        // The producer may have *started* producing item i+1 while i is
        // being consumed (that's double buffering), but never further.
        assert!(worst.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn recv_errors_when_senders_gone() {
        let (tx, rx) = channel::bounded::<u8>(4);
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_when_receivers_gone() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
