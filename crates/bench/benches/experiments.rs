//! One Criterion benchmark per table/figure regeneration — the "harness
//! that regenerates the paper's rows/series" timed end to end. Table 3
//! and Figs. 7/9 run single representative cells here (the full sweeps
//! run in the `repro` binary).

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, Criterion};
use lm_bench::experiments::*;
use lm_models::presets as models;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1", |b| b.iter(table1::run));
    g.bench_function("table3_cell_opt30b_len8", |b| {
        b.iter(|| table3::run_cell(&models::opt_30b(), 8))
    });
    g.bench_function("table4", |b| b.iter(table4::run));
    g.bench_function("table5", |b| b.iter(table5::run));
    g.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3", |b| b.iter(fig3::run));
    g.bench_function("fig4_breakdown", |b| b.iter(fig3::run_breakdown));
    g.bench_function("fig5", |b| b.iter(fig5::run));
    g.bench_function("fig7_cell_opt30b", |b| {
        b.iter(|| fig7::run_cell(&models::opt_30b(), 8))
    });
    g.bench_function("fig8", |b| b.iter(fig8::run));
    g.bench_function("fig9", |b| b.iter(fig9::run));
    g.finish();
}

criterion_group!(benches, bench_tables, bench_figures);
criterion_main!(benches);
