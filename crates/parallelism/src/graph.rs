//! Operator dependency graphs (Figure 6): the compute task of attention
//! decomposed into operators with explicit dependencies.

use serde::{Deserialize, Serialize};

/// Kinds of operators appearing in the offloaded attention compute task.
/// Names follow the autograd-style labels the paper quotes
/// (`AddmmBackward`, `BmmBackward`, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense projection (Q/K/V/output): `Addmm`.
    Addmm,
    /// Batched matmul (QKᵀ scores, attention·V): `Bmm`.
    Bmm,
    /// Softmax over scores.
    Softmax,
    /// KV-cache concatenation.
    Concat,
    /// Elementwise glue (scale, mask, view, copy).
    Elementwise,
    /// Host↔device transfer staging copy.
    Transfer,
}

/// One operator node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OpNode {
    pub name: String,
    pub kind: OpKind,
    /// Work in FLOPs (drives the execution-time estimate).
    pub flops: f64,
    /// Bytes touched (drives the memory-bound estimate and bundling).
    pub bytes: f64,
}

/// A DAG of operators. Edges point from producer to consumer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpGraph {
    pub nodes: Vec<OpNode>,
    /// `edges[i]` = indices of nodes consuming node `i`'s output.
    pub edges: Vec<Vec<usize>>,
}

/// A structurally invalid edge request on an [`OpGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An endpoint index is not a node of the graph.
    IndexOutOfBounds { from: usize, to: usize, len: usize },
    /// `from == to`: an operator cannot depend on its own output.
    SelfEdge(usize),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::IndexOutOfBounds { from, to, len } => {
                write!(f, "bad node index: edge {from}->{to} on a {len}-node graph")
            }
            GraphError::SelfEdge(n) => write!(f, "self-dependency on node {n}"),
        }
    }
}

impl std::error::Error for GraphError {}

impl OpGraph {
    pub fn new() -> Self {
        OpGraph::default()
    }

    /// Add a node, returning its index.
    pub fn add(&mut self, name: impl Into<String>, kind: OpKind, flops: f64, bytes: f64) -> usize {
        self.nodes.push(OpNode {
            name: name.into(),
            kind,
            flops,
            bytes,
        });
        self.edges.push(Vec::new());
        self.nodes.len() - 1
    }

    /// Add a dependency: `to` consumes `from`'s output. Rejects edges to
    /// nonexistent nodes and self-edges instead of panicking — the entry
    /// point for graphs assembled from untrusted input (deserialized
    /// plans, generated sweeps).
    pub fn try_depend(&mut self, from: usize, to: usize) -> Result<(), GraphError> {
        if from >= self.nodes.len() || to >= self.nodes.len() {
            return Err(GraphError::IndexOutOfBounds {
                from,
                to,
                len: self.nodes.len(),
            });
        }
        if from == to {
            return Err(GraphError::SelfEdge(from));
        }
        if !self.edges[from].contains(&to) {
            self.edges[from].push(to);
        }
        Ok(())
    }

    /// Add a dependency: `to` consumes `from`'s output.
    ///
    /// Panics on bad indices or self-edges; builders working with indices
    /// they just created use this, everything else should prefer
    /// [`OpGraph::try_depend`].
    pub fn depend(&mut self, from: usize, to: usize) {
        match self.try_depend(from, to) {
            Ok(()) => {}
            Err(GraphError::IndexOutOfBounds { .. }) => panic!("bad node index"),
            Err(GraphError::SelfEdge(_)) => panic!("self-dependency"),
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// In-degree of every node.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.len()];
        for outs in &self.edges {
            for &t in outs {
                deg[t] += 1;
            }
        }
        deg
    }

    /// Predecessors of every node (inverse adjacency).
    pub fn predecessors(&self) -> Vec<Vec<usize>> {
        let mut preds = vec![Vec::new(); self.len()];
        for (from, outs) in self.edges.iter().enumerate() {
            for &t in outs {
                preds[t].push(from);
            }
        }
        preds
    }

    /// Total FLOPs across all nodes.
    pub fn total_flops(&self) -> f64 {
        self.nodes.iter().map(|n| n.flops).sum()
    }

    /// Total bytes across all nodes.
    pub fn total_bytes(&self) -> f64 {
        self.nodes.iter().map(|n| n.bytes).sum()
    }
}

/// Build the decode-phase attention dependency graph of Figure 6 for a
/// block of `bls` sequences at sequence length `seq`, hidden size `h1`,
/// with the per-head work split into `head_groups` independent strips
/// (PyTorch dispatches grouped-head BMMs as independent operators, which
/// is where inter-op parallelism inside one attention call comes from).
pub fn attention_graph(bls: u64, seq: u64, h1: u64, head_groups: usize) -> OpGraph {
    assert!(head_groups >= 1, "need at least one head group");
    let mut g = OpGraph::new();
    let b = bls as f64;
    let s = seq as f64;
    let h = h1 as f64;
    let f32b = 4.0;

    // Q/K/V projections: three independent Addmm ops, 2·b·h² FLOPs each.
    let q = g.add("q_proj", OpKind::Addmm, 2.0 * b * h * h, (b * h + h * h) * f32b);
    let k = g.add("k_proj", OpKind::Addmm, 2.0 * b * h * h, (b * h + h * h) * f32b);
    let v = g.add("v_proj", OpKind::Addmm, 2.0 * b * h * h, (b * h + h * h) * f32b);

    // KV-cache concatenation (append new K/V).
    let cat = g.add("kv_concat", OpKind::Concat, 0.0, 2.0 * b * h * f32b);
    g.depend(k, cat);
    g.depend(v, cat);

    // Per-head-group score/softmax/mix pipelines, independent of each other.
    let group_flops_scores = 2.0 * b * s * h / head_groups as f64;
    let group_bytes_scores = (b * s * h / head_groups as f64) * f32b;
    let mut mixes = Vec::with_capacity(head_groups);
    for gi in 0..head_groups {
        let scores = g.add(
            format!("bmm_qk[{gi}]"),
            OpKind::Bmm,
            group_flops_scores,
            group_bytes_scores,
        );
        g.depend(q, scores);
        g.depend(cat, scores);
        let sm = g.add(
            format!("softmax[{gi}]"),
            OpKind::Softmax,
            3.0 * b * s * h / (head_groups as f64 * (h / s).max(1.0)),
            (b * s) * f32b / head_groups as f64,
        );
        g.depend(scores, sm);
        let mix = g.add(
            format!("bmm_av[{gi}]"),
            OpKind::Bmm,
            group_flops_scores,
            group_bytes_scores,
        );
        g.depend(sm, mix);
        g.depend(cat, mix);
        mixes.push(mix);
    }

    // Output projection joins all head groups.
    let out = g.add("out_proj", OpKind::Addmm, 2.0 * b * h * h, (b * h + h * h) * f32b);
    for m in mixes {
        g.depend(m, out);
    }
    g
}

/// Build the compute graph of a whole zig-zag block's decode step: one
/// independent per-batch attention graph per GPU batch. This is what the
/// *default* inter-op pool actually sees — operators from every batch
/// queue together — and therefore what the Fig. 5 characterisation sweeps
/// over. (Algorithm 3 sizes inter-op from the per-batch graph, which is
/// the unit it grants threads to.)
pub fn attention_block_graph(
    gpu_batch: u64,
    num_batches: u64,
    seq: u64,
    h1: u64,
    head_groups: usize,
) -> OpGraph {
    assert!(num_batches >= 1, "need at least one batch");
    let mut out = OpGraph::new();
    for b in 0..num_batches {
        let sub = attention_graph(gpu_batch, seq, h1, head_groups);
        let offset = out.len();
        for node in sub.nodes {
            out.add(format!("b{b}:{}", node.name), node.kind, node.flops, node.bytes);
        }
        for (from, outs) in sub.edges.into_iter().enumerate() {
            for to in outs {
                out.depend(offset + from, offset + to);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_graph_replicates_batches() {
        let per = attention_graph(8, 16, 64, 3);
        let block = attention_block_graph(8, 4, 16, 64, 3);
        assert_eq!(block.len(), 4 * per.len());
        assert!((block.total_flops() - 4.0 * per.total_flops()).abs() < 1e-6);
        // Batches are independent: width multiplies.
        let a = crate::kahn::analyze(&block).unwrap();
        let a1 = crate::kahn::analyze(&per).unwrap();
        assert_eq!(a.max_concurrency(), 4 * a1.max_concurrency());
    }

    #[test]
    fn attention_graph_structure() {
        let g = attention_graph(64, 128, 512, 4);
        // 3 projections + concat + 4*(scores, softmax, mix) + out = 17.
        assert_eq!(g.len(), 17);
        let deg = g.in_degrees();
        // Projections are sources.
        assert_eq!(deg[0], 0);
        assert_eq!(deg[1], 0);
        assert_eq!(deg[2], 0);
        // Output projection has one incoming edge per head group.
        assert_eq!(*deg.last().unwrap(), 4);
    }

    #[test]
    fn depend_deduplicates() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Elementwise, 1.0, 1.0);
        let b = g.add("b", OpKind::Elementwise, 1.0, 1.0);
        g.depend(a, b);
        g.depend(a, b);
        assert_eq!(g.edges[a].len(), 1);
        assert_eq!(g.in_degrees()[b], 1);
    }

    #[test]
    #[should_panic(expected = "self-dependency")]
    fn self_edges_rejected() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Bmm, 1.0, 1.0);
        g.depend(a, a);
    }

    #[test]
    fn try_depend_reports_structured_errors() {
        let mut g = OpGraph::new();
        let a = g.add("a", OpKind::Bmm, 1.0, 1.0);
        let b = g.add("b", OpKind::Bmm, 1.0, 1.0);
        assert_eq!(g.try_depend(a, a), Err(GraphError::SelfEdge(a)));
        assert_eq!(
            g.try_depend(a, 7),
            Err(GraphError::IndexOutOfBounds { from: a, to: 7, len: 2 })
        );
        assert!(g.try_depend(a, b).is_ok());
        assert_eq!(g.edges[a], vec![b]);
        // Errors render with enough context to act on.
        let msg = GraphError::IndexOutOfBounds { from: 9, to: 1, len: 2 }.to_string();
        assert!(msg.contains("9->1") && msg.contains("2-node"), "{msg}");
    }

    #[test]
    fn predecessors_invert_edges() {
        let g = attention_graph(8, 16, 64, 2);
        let preds = g.predecessors();
        for (from, outs) in g.edges.iter().enumerate() {
            for &t in outs {
                assert!(preds[t].contains(&from));
            }
        }
    }

    #[test]
    fn flops_scale_with_block() {
        let small = attention_graph(8, 16, 64, 2);
        let big = attention_graph(16, 16, 64, 2);
        assert!((big.total_flops() / small.total_flops() - 2.0).abs() < 1e-9);
    }
}
