//! Async-runtime lints (`LMA30x`).
//!
//! `lm-serve`'s `ServeSession::run_async` drives the same deterministic
//! scheduler core with a wall-clock driver and per-request bounded token
//! channels. Three misconfigurations survive type checking but can never
//! work at runtime, so they are rejected at session pre-flight the same
//! way `LMA25x` rejects an infeasible slot plan:
//!
//! - a zero-capacity token channel (`LMA300`): the bounded mpsc cannot
//!   hold one token, so every delivery exhausts the backpressure grace
//!   and every stream dies as a spurious disconnect;
//! - a wall-clock SLO at or below the cost model's physical TTFT floor
//!   (`LMA301`): virtual time already cannot meet it, and wall jitter
//!   only adds — the monitor would actuate on every boundary;
//! - a non-finite or non-positive time scale (`LMA302`): the wall→
//!   virtual mapping `virtual_us = wall_us · scale` degenerates and the
//!   pacer either never advances or never sleeps.
//!
//! Like every other probe in this crate, [`AsyncProbe`] is a plain
//! value: `lm-serve` samples it from a live session, mutation tests
//! corrupt one field at a time, and `repro analyze` checks the default
//! async configuration — without this crate depending on the serving
//! crate.

use crate::diag::{Diagnostic, LintCode, Report};
use serde::{Deserialize, Serialize};

/// Observations sampled from one async serving session configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncProbe {
    /// Capacity of each request's bounded token channel.
    pub channel_capacity: u64,
    /// Virtual microseconds per wall microsecond (`1.0` = real time).
    pub time_scale: f64,
    /// Configured p99 TTFT objective, seconds; `None` when the session
    /// runs without an SLO policy.
    pub ttft_p99_slo_s: Option<f64>,
    /// Physical service floor under the session's admission plan: one
    /// worst-case group prefill plus one full-occupancy decode step,
    /// seconds — the same arithmetic `LMA260` judges the virtual path
    /// by.
    pub floor_ttft_s: f64,
}

/// Run every async-runtime lint over a sampled probe.
pub fn lint_async(probe: &AsyncProbe) -> Report {
    let mut out = Vec::new();

    // LMA300: capacity zero means try_send can never succeed — the
    // scheduler would burn the whole backpressure grace per token and
    // then cancel the stream as disconnected.
    if probe.channel_capacity == 0 {
        out.push(Diagnostic::error(
            LintCode::Lma300AsyncZeroChannelCapacity,
            "async.channel_capacity".to_string(),
            "per-request token channel has capacity 0: no token can ever \
             be delivered, every stream would resolve as a spurious \
             disconnect"
                .to_string(),
        ));
    }

    // LMA301: the same floor argument as LMA260, restated for wall
    // clocks: if the modelled best case already misses the objective,
    // wall jitter (which only ever adds) certainly will.
    if let Some(slo_s) = probe.ttft_p99_slo_s {
        if slo_s <= probe.floor_ttft_s || !slo_s.is_finite() {
            out.push(Diagnostic::error(
                LintCode::Lma301AsyncSloBelowFloor,
                "async.ttft_p99_s".to_string(),
                format!(
                    "wall-clock p99 TTFT objective {:.3}s is at or below \
                     the physical service floor {:.3}s (one prefill + one \
                     step); wall jitter only adds latency",
                    slo_s, probe.floor_ttft_s
                ),
            ));
        }
    }

    // LMA302: the pacer computes `wall_elapsed · time_scale` virtual
    // microseconds; zero, negative, NaN or infinite scales make that
    // mapping meaningless (the clock never catches up, or jumps past
    // every deadline instantly).
    if !probe.time_scale.is_finite() || probe.time_scale <= 0.0 {
        out.push(Diagnostic::error(
            LintCode::Lma302AsyncBadTimeScale,
            "async.time_scale".to_string(),
            format!(
                "time scale {} cannot map wall time onto the modelled \
                 clock (must be finite and > 0)",
                probe.time_scale
            ),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound() -> AsyncProbe {
        AsyncProbe {
            channel_capacity: 32,
            time_scale: 1.0,
            ttft_p99_slo_s: Some(400.0),
            floor_ttft_s: 12.0,
        }
    }

    #[test]
    fn sound_async_config_is_clean() {
        let r = lint_async(&sound());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn zero_channel_capacity_caught() {
        let mut p = sound();
        p.channel_capacity = 0;
        let r = lint_async(&p);
        assert!(r.has(LintCode::Lma300AsyncZeroChannelCapacity), "{r}");
        assert!(!r.is_clean());
        // Capacity one is the smallest workable channel.
        p.channel_capacity = 1;
        assert!(lint_async(&p).is_clean());
    }

    #[test]
    fn wall_slo_below_floor_caught() {
        let mut p = sound();
        p.ttft_p99_slo_s = Some(10.0);
        let r = lint_async(&p);
        assert!(r.has(LintCode::Lma301AsyncSloBelowFloor), "{r}");
        assert!(!r.is_clean());
        // Exactly at the floor is still unmeetable (<=, like LMA260).
        p.ttft_p99_slo_s = Some(12.0);
        assert!(lint_async(&p).has(LintCode::Lma301AsyncSloBelowFloor));
        // Non-finite objectives land in the same bucket.
        p.ttft_p99_slo_s = Some(f64::NAN);
        assert!(lint_async(&p).has(LintCode::Lma301AsyncSloBelowFloor));
    }

    #[test]
    fn no_slo_means_no_floor_check() {
        let mut p = sound();
        p.ttft_p99_slo_s = None;
        p.floor_ttft_s = 1e9; // would fail any objective
        assert!(lint_async(&p).is_clean());
    }

    #[test]
    fn bad_time_scale_caught() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let mut p = sound();
            p.time_scale = bad;
            let r = lint_async(&p);
            assert!(r.has(LintCode::Lma302AsyncBadTimeScale), "scale {bad}: {r}");
            assert!(!r.is_clean());
        }
        // Any finite positive scale — however extreme — is legal: it
        // only compresses or stretches wall time.
        let mut p = sound();
        p.time_scale = 1e6;
        assert!(lint_async(&p).is_clean());
    }

    #[test]
    fn async_probe_serializes() {
        let json = serde_json::to_string(&sound()).expect("serialize");
        assert!(json.contains("channel_capacity"), "{json}");
        let back: AsyncProbe = serde_json::from_str(&json).expect("round trip");
        assert_eq!(back.channel_capacity, 32);
        assert_eq!(back.ttft_p99_slo_s, Some(400.0));
    }
}
