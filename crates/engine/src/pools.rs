//! Bounded memory pools emulating the two memory tiers of the offloading
//! runtime: "device" (GPU-like, small) and "host" (CPU, large). Every
//! tensor the engine materialises is charged to a pool; exceeding a
//! pool's capacity is a hard error, which is how the tests prove the
//! engine really runs within the device budget it claims.

use parking_lot::Mutex;
use std::sync::Arc;

/// A bounded byte-accounted memory pool.
#[derive(Debug)]
pub struct MemPool {
    name: String,
    capacity: usize,
    inner: Mutex<PoolState>,
}

#[derive(Debug, Default)]
struct PoolState {
    used: usize,
    peak: usize,
    allocs: u64,
}

/// Error returned when an allocation would exceed the pool's capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolExhausted {
    pub pool: String,
    pub requested: usize,
    pub used: usize,
    pub capacity: usize,
}

impl std::fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pool '{}' exhausted: requested {} with {}/{} in use",
            self.pool, self.requested, self.used, self.capacity
        )
    }
}

impl std::error::Error for PoolExhausted {}

/// An RAII lease of pool bytes: freed on drop.
#[derive(Debug)]
pub struct Lease {
    pool: Arc<MemPool>,
    bytes: usize,
}

impl Lease {
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let mut st = self.pool.inner.lock();
        debug_assert!(st.used >= self.bytes, "pool accounting underflow");
        st.used -= self.bytes;
    }
}

impl MemPool {
    pub fn new(name: impl Into<String>, capacity: usize) -> Arc<Self> {
        Arc::new(MemPool {
            name: name.into(),
            capacity,
            inner: Mutex::new(PoolState::default()),
        })
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn used(&self) -> usize {
        self.inner.lock().used
    }

    /// High-water mark of usage.
    pub fn peak(&self) -> usize {
        self.inner.lock().peak
    }

    pub fn alloc_count(&self) -> u64 {
        self.inner.lock().allocs
    }

    /// Reserve `bytes`, returning an RAII lease or an error when the pool
    /// cannot hold them.
    pub fn alloc(self: &Arc<Self>, bytes: usize) -> Result<Lease, PoolExhausted> {
        let mut st = self.inner.lock();
        if st.used + bytes > self.capacity {
            return Err(PoolExhausted {
                pool: self.name.clone(),
                requested: bytes,
                used: st.used,
                capacity: self.capacity,
            });
        }
        st.used += bytes;
        st.peak = st.peak.max(st.used);
        st.allocs += 1;
        Ok(Lease {
            pool: Arc::clone(self),
            bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_drop_balance() {
        let p = MemPool::new("device", 100);
        let a = p.alloc(60).unwrap();
        assert_eq!(p.used(), 60);
        let b = p.alloc(40).unwrap();
        assert_eq!(p.used(), 100);
        drop(a);
        assert_eq!(p.used(), 40);
        drop(b);
        assert_eq!(p.used(), 0);
        assert_eq!(p.peak(), 100);
        assert_eq!(p.alloc_count(), 2);
    }

    #[test]
    fn overflow_rejected_without_state_change() {
        let p = MemPool::new("device", 100);
        let _a = p.alloc(80).unwrap();
        let err = p.alloc(21).unwrap_err();
        assert_eq!(err.used, 80);
        assert_eq!(err.capacity, 100);
        assert_eq!(p.used(), 80, "failed alloc must not leak");
        // Exactly-fitting allocation still works.
        let _b = p.alloc(20).unwrap();
        assert_eq!(p.used(), 100);
    }

    #[test]
    fn zero_byte_lease_is_fine() {
        let p = MemPool::new("x", 0);
        let l = p.alloc(0).unwrap();
        assert_eq!(l.bytes(), 0);
    }

    #[test]
    fn error_formats_usefully() {
        let p = MemPool::new("device", 10);
        let e = p.alloc(11).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("device") && msg.contains("11"));
    }

    #[test]
    fn leases_are_send_across_threads() {
        let p = MemPool::new("device", 1000);
        let lease = p.alloc(500).unwrap();
        let p2 = Arc::clone(&p);
        std::thread::spawn(move || {
            assert_eq!(p2.used(), 500);
            drop(lease);
        })
        .join()
        .unwrap();
        assert_eq!(p.used(), 0);
    }
}
