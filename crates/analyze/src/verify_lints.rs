//! Verification lints (`LMA29x`).
//!
//! `lm-verify` sweeps a bounded lattice of deployment configs and
//! model-checks the paged-KV and scheduler protocols; these lints judge
//! the *verification run itself*, sampled as a plain [`VerifyProbe`]:
//!
//! - the sweep lattice must not be degenerate (`LMA290`): an axis that
//!   collapsed to fewer than two distinct values, or a total point
//!   count below the declared floor, makes "zero witnesses" vacuous —
//!   the sweep proved nothing about the axis it never varied;
//! - a lint-unsoundness witness (`LMA291`) is a config where the
//!   planner lints passed but an executable ground-truth invariant
//!   failed. One witness means the lint family is unsound at that
//!   point and must be tightened before the verdicts can be trusted;
//! - every transition a protocol state machine *declares* must be
//!   *exercised* by the bounded exploration (`LMA292`): a grant path
//!   the interleavings never reached carries unverified invariants.
//!
//! As with the other probe-based lints, the probe is a plain value:
//! `lm-verify` fills it from a finished sweep + exploration, mutation
//! tests corrupt fields directly, and `repro analyze` publishes a row
//! for the default mini-sweep — without this crate depending on the
//! verifier.

use crate::diag::{Diagnostic, LintCode, Report};
use serde::{Deserialize, Serialize};

/// One lint-unsoundness witness: the sweep point and the invariant that
/// failed there while the lints stayed clean.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct UnsoundnessWitness {
    /// Human-readable sweep-point identity (model, pool bytes, page
    /// geometry, SLO policy, ladder).
    pub config: String,
    /// The executable invariant that failed (e.g. `pool_capacity`).
    pub invariant: String,
    /// Offending values inline.
    pub detail: String,
}

/// Observations sampled from one `lm-verify` run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VerifyProbe {
    /// `(axis name, distinct values swept)` for every lattice axis.
    pub axes: Vec<(String, u64)>,
    /// Lattice points actually explored.
    pub configs_explored: u64,
    /// Minimum point count for the sweep to count as coverage.
    pub configs_floor: u64,
    /// Configs where lints passed but ground truth failed.
    pub unsoundness_witnesses: Vec<UnsoundnessWitness>,
    /// Transitions the protocol state machines declare.
    pub declared_transitions: Vec<String>,
    /// Transitions the bounded exploration actually drove.
    pub exercised_transitions: Vec<String>,
    /// Interleavings (executions) the protocol exploration ran.
    pub interleavings: u64,
}

/// Run every verification lint over a sampled probe.
pub fn lint_verify(probe: &VerifyProbe) -> Report {
    let mut out = Vec::new();

    // LMA290: a degenerate lattice. Every axis must actually vary and
    // the point count must clear the floor, otherwise downstream "zero
    // witnesses" claims are vacuously true.
    let flat_axes: Vec<&str> = probe
        .axes
        .iter()
        .filter(|(_, n)| *n < 2)
        .map(|(name, _)| name.as_str())
        .collect();
    if !flat_axes.is_empty() || probe.configs_explored < probe.configs_floor {
        out.push(Diagnostic::error(
            LintCode::Lma290SweepDomainDegenerate,
            "verify.sweep".to_string(),
            format!(
                "lattice explored {} of >= {} required configs; axes with \
                 fewer than two values: {:?}",
                probe.configs_explored, probe.configs_floor, flat_axes
            ),
        ));
    }

    // LMA291: unsoundness witnesses. One finding per witness so every
    // offending config is visible in the report.
    for w in &probe.unsoundness_witnesses {
        out.push(Diagnostic::error(
            LintCode::Lma291LintUnsoundnessWitness,
            format!("verify.witness[{}]", w.config),
            format!(
                "lints passed but invariant `{}` failed: {}",
                w.invariant, w.detail
            ),
        ));
    }

    // LMA292: transition coverage. Declared-but-unexercised transitions
    // carry unverified invariants; exercised-but-undeclared transitions
    // mean the declared table itself is stale (equally an error — the
    // table is the spec the exploration is checked against).
    let missing: Vec<&str> = probe
        .declared_transitions
        .iter()
        .filter(|t| !probe.exercised_transitions.contains(t))
        .map(|t| t.as_str())
        .collect();
    let undeclared: Vec<&str> = probe
        .exercised_transitions
        .iter()
        .filter(|t| !probe.declared_transitions.contains(t))
        .map(|t| t.as_str())
        .collect();
    if !missing.is_empty() || !undeclared.is_empty() || probe.interleavings == 0 {
        out.push(Diagnostic::error(
            LintCode::Lma292UncheckedProtocolTransition,
            "verify.protocol".to_string(),
            format!(
                "after {} interleavings, declared-but-unexercised \
                 transitions {:?}; exercised-but-undeclared {:?}",
                probe.interleavings, missing, undeclared
            ),
        ));
    }

    Report::new(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sound() -> VerifyProbe {
        VerifyProbe {
            axes: vec![
                ("model".into(), 3),
                ("pool_bytes".into(), 4),
                ("page_tokens".into(), 4),
                ("slo".into(), 3),
                ("ladder".into(), 2),
            ],
            configs_explored: 288,
            configs_floor: 200,
            unsoundness_witnesses: Vec::new(),
            declared_transitions: vec!["admit/fresh".into(), "append/cow-fork".into()],
            exercised_transitions: vec!["admit/fresh".into(), "append/cow-fork".into()],
            interleavings: 12_000,
        }
    }

    #[test]
    fn sound_probe_is_clean() {
        let r = lint_verify(&sound());
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.warning_count(), 0, "{r}");
    }

    #[test]
    fn flat_axis_caught() {
        let mut p = sound();
        p.axes[1].1 = 1;
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma290SweepDomainDegenerate), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn point_count_below_floor_caught() {
        let mut p = sound();
        p.configs_explored = p.configs_floor - 1;
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma290SweepDomainDegenerate), "{r}");
    }

    #[test]
    fn unsoundness_witness_caught() {
        let mut p = sound();
        p.unsoundness_witnesses.push(UnsoundnessWitness {
            config: "opt-30b/pool=8GiB/page=16".into(),
            invariant: "pool_capacity".into(),
            detail: "granted 257 of 256 pages".into(),
        });
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma291LintUnsoundnessWitness), "{r}");
        assert!(!r.is_clean());
        let text = r.to_string();
        assert!(text.contains("pool_capacity") && text.contains("opt-30b"), "{text}");
    }

    #[test]
    fn each_witness_gets_its_own_finding() {
        let mut p = sound();
        for i in 0..3 {
            p.unsoundness_witnesses.push(UnsoundnessWitness {
                config: format!("cfg-{i}"),
                invariant: "slots_feasible".into(),
                detail: "admission failed at slot 12".into(),
            });
        }
        let r = lint_verify(&p);
        assert_eq!(r.error_count(), 3, "{r}");
    }

    #[test]
    fn unexercised_transition_caught() {
        let mut p = sound();
        p.exercised_transitions.pop();
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma292UncheckedProtocolTransition), "{r}");
        assert!(!r.is_clean());
    }

    #[test]
    fn undeclared_transition_caught() {
        let mut p = sound();
        p.exercised_transitions.push("append/ghost".into());
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma292UncheckedProtocolTransition), "{r}");
    }

    #[test]
    fn zero_interleavings_caught() {
        let mut p = sound();
        p.interleavings = 0;
        let r = lint_verify(&p);
        assert!(r.has(LintCode::Lma292UncheckedProtocolTransition), "{r}");
    }

    #[test]
    fn probe_serializes() {
        let json = serde_json::to_string(&sound()).expect("serialize");
        assert!(json.contains("unsoundness_witnesses"), "{json}");
    }
}
