//! Offline stand-in for the `bytes` crate (see `vendor/README.md`).
//!
//! `Bytes` here is a cheaply clonable, immutable byte buffer backed by
//! `Arc<[u8]>` — the zero-copy-slicing machinery of the real crate is
//! not needed by this workspace.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes { data: v.into() }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn round_trips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(&*b, &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
