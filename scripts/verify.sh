#!/usr/bin/env bash
# Full verification gate: release build, workspace tests, lint-clean.
# Run from anywhere; operates on the repo the script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "verify: OK"
