//! SLO policy for the continuous-batching scheduler: a first-order TTFT
//! predictor driven by the same performance model that times the run,
//! and the actuators the scheduler pulls when the prediction says the
//! p99 TTFT objective is about to be violated.
//!
//! Three actuators, tried in order of increasing cost:
//!
//! 1. **Shedding** (admission-time): a request whose *predicted* first
//!    token lands after its effective deadline is rejected up front with
//!    [`RejectReason::WouldMissDeadline`](crate::RejectReason) instead
//!    of queueing doomed work.
//! 2. **Preemption** (boundary-time): the lowest-priority running slot
//!    is evicted — its RAII KV lease drops back into the pool — so a
//!    higher-priority waiter admits sooner. The preempted request
//!    re-queues and later resumes from its generated prefix (token
//!    streams are deterministic, so nothing is re-emitted).
//! 3. **Degradation** (boundary-time): when there is nothing useful to
//!    preempt, the scheduler climbs one rung of a [`DegradeLadder`] —
//!    the model-guided fallback policies of `lm_offload::degrade` —
//!    trading per-token quality/placement for step latency.
//!
//! Everything here is pure arithmetic over the virtual clock: SLO
//! decisions replay bit-identically from the traffic seed.

use crate::request::micros;
use serde::{Deserialize, Serialize};

/// The serving objective and which actuators may fire for it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloPolicy {
    /// Target p99 time-to-first-token, in virtual seconds.
    pub ttft_p99_s: f64,
    /// Master switch: `false` records predicted violations in lm-trace
    /// but never acts on them (observe mode).
    pub enforce: bool,
    /// Allow preempting the lowest-priority running slot.
    pub preempt: bool,
    /// Allow deadline-aware admission shedding.
    pub shed: bool,
    /// Synthetic admission deadline applied when shedding: a request
    /// with no deadline of its own is shed if its predicted first token
    /// lands more than this many seconds after arrival. Keep below
    /// `ttft_p99_s` (the log-scale trace histograms carry ~9% bucket
    /// error, so enforcement needs margin to show up in measured p99).
    pub shed_slack_s: f64,
}

impl SloPolicy {
    /// Record predicted violations, act on none of them.
    pub fn observe(ttft_p99_s: f64) -> Self {
        SloPolicy {
            ttft_p99_s,
            enforce: false,
            preempt: false,
            shed: false,
            shed_slack_s: 0.8 * ttft_p99_s,
        }
    }

    /// Enforce with every actuator armed.
    pub fn enforcing(ttft_p99_s: f64) -> Self {
        SloPolicy {
            ttft_p99_s,
            enforce: true,
            preempt: true,
            shed: true,
            shed_slack_s: 0.8 * ttft_p99_s,
        }
    }

    /// The SLO target in virtual microseconds.
    pub fn ttft_p99_us(&self) -> u64 {
        micros(self.ttft_p99_s)
    }
}

/// One rung of a degradation ladder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradeRung {
    /// Human-readable policy name (e.g. `"w4"`, `"cpu-attn+w4"`).
    pub name: String,
    /// Multiplier on prefill/decode step time relative to the *baseline*
    /// (rung 0) policy — absolute, not incremental. A model-guided
    /// ladder yields factors ≤ 1 (degraded placements exist to be
    /// faster under pressure); factors are clamped to be monotone
    /// non-increasing by the scheduler.
    pub step_time_factor: f64,
}

/// A source of fallback execution policies, ordered mildest-first.
/// `lm-core` implements this over `DegradationController::fallback_ladder`
/// so the serving layer degrades along the same model-guided rungs as
/// the offload engine; tests use [`StaticLadder`].
pub trait DegradeLadder: Send + Sync {
    /// The `level`-th fallback (1-based; level 0 is the baseline policy
    /// and is not a rung). `None` once the ladder is exhausted.
    fn rung(&self, level: usize) -> Option<DegradeRung>;
}

/// A fixed in-memory ladder, for tests and synthetic experiments.
#[derive(Debug, Clone, Default)]
pub struct StaticLadder {
    pub rungs: Vec<DegradeRung>,
}

impl StaticLadder {
    /// A geometric ladder: `n` rungs, each scaling step time by `factor`
    /// more than the last (factor < 1 speeds steps up, as a model-guided
    /// degraded placement would under memory pressure).
    pub fn geometric(n: usize, factor: f64) -> Self {
        StaticLadder {
            rungs: (1..=n)
                .map(|i| DegradeRung {
                    name: format!("static-rung-{i}"),
                    step_time_factor: factor.powi(i as i32),
                })
                .collect(),
        }
    }
}

impl DegradeLadder for StaticLadder {
    fn rung(&self, level: usize) -> Option<DegradeRung> {
        if level == 0 {
            return None;
        }
        self.rungs.get(level - 1).cloned()
    }
}

/// A per-boundary snapshot of the scheduler's state, from which the
/// analytic model predicts TTFT for every queued request (the serving
/// analogue of the paper's Eq. 1–24 latency composition: queueing wait
/// expressed in decode rounds, plus one prefill, plus one step).
#[derive(Debug, Clone, PartialEq)]
pub struct TtftModel {
    /// Total slot count `k` from the admission plan.
    pub slots: usize,
    /// Slots currently idle.
    pub free_slots: usize,
    /// Decode steps remaining per *active* slot, ascending — the next
    /// slot to free is `remaining_sorted[0]`.
    pub remaining_sorted: Vec<u64>,
    /// Mean generation length of the workload, in decode steps; sizes
    /// the wait for slots that must turn over more than once.
    pub mean_gen_steps: f64,
    /// Model-estimated prefill seconds for one admission group.
    pub prefill_s: f64,
    /// Model-estimated decode step seconds at current occupancy.
    pub step_s: f64,
}

impl TtftModel {
    /// Predicted time from *now* until queue position `pos` (0-based, in
    /// priority order) delivers its first token.
    ///
    /// Position `pos < free_slots` admits immediately: one prefill plus
    /// one decode step. Otherwise it waits for the `(pos - free)`-th
    /// slot release: the first `k` such waiters bind to the active
    /// slots' remaining work in ascending order — a waiter that binds to
    /// a slot only *being filled this boundary* (by one of the first
    /// `free_slots` queue positions) waits that admission's full mean
    /// generation — and each further wave of `k` waiters adds one mean
    /// generation length of turnover.
    pub fn predict_rel_ttft_us(&self, pos: usize) -> u64 {
        let serve = self.prefill_s + self.step_s;
        if pos < self.free_slots {
            return micros(serve);
        }
        let k = self.slots.max(1);
        let after = pos - self.free_slots;
        let rounds = (after / k) as f64;
        let idx = after % k;
        let wait_steps = self
            .remaining_sorted
            .get(idx)
            .map(|r| *r as f64)
            .unwrap_or(self.mean_gen_steps)
            + rounds * self.mean_gen_steps;
        micros(wait_steps * self.step_s + serve)
    }

    /// Nearest-rank p99 of the predicted TTFTs over `queued` waiting
    /// requests (relative to now). `None` with an empty queue.
    pub fn predicted_p99_us(&self, queued: usize) -> Option<u64> {
        if queued == 0 {
            return None;
        }
        let rank = ((queued as f64) * 0.99).ceil() as usize; // 1-based
        let pos = rank.saturating_sub(1).min(queued - 1);
        Some(self.predict_rel_ttft_us(pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TtftModel {
        TtftModel {
            slots: 2,
            free_slots: 0,
            remaining_sorted: vec![3, 10],
            mean_gen_steps: 8.0,
            prefill_s: 1.0,
            step_s: 0.5,
        }
    }

    #[test]
    fn free_slots_predict_immediate_service() {
        let m = TtftModel {
            free_slots: 2,
            ..model()
        };
        assert_eq!(m.predict_rel_ttft_us(0), micros(1.5));
        assert_eq!(m.predict_rel_ttft_us(1), micros(1.5));
        // Position 2 must wait for the soonest slot release (3 steps).
        assert_eq!(m.predict_rel_ttft_us(2), micros(3.0 * 0.5 + 1.5));
    }

    #[test]
    fn waiters_behind_fresh_admissions_pay_a_full_generation() {
        // Both slots free, nothing active: position 2 binds to a slot
        // that position 0 fills *now*, so it waits one mean generation —
        // not zero (the optimism the serve drift audit caught).
        let m = TtftModel {
            free_slots: 2,
            remaining_sorted: vec![],
            ..model()
        };
        assert_eq!(m.predict_rel_ttft_us(1), micros(1.5));
        assert_eq!(m.predict_rel_ttft_us(2), micros(8.0 * 0.5 + 1.5));
        assert_eq!(m.predict_rel_ttft_us(3), micros(8.0 * 0.5 + 1.5));
        // Next wave: one more full turnover.
        assert_eq!(m.predict_rel_ttft_us(4), micros(16.0 * 0.5 + 1.5));
    }

    #[test]
    fn waiters_bind_to_slot_releases_then_rounds() {
        let m = model();
        // pos 0 → soonest release (3 steps); pos 1 → 10 steps.
        assert_eq!(m.predict_rel_ttft_us(0), micros(3.0 * 0.5 + 1.5));
        assert_eq!(m.predict_rel_ttft_us(1), micros(10.0 * 0.5 + 1.5));
        // pos 2 → second turnover of the fast slot: +1 mean gen length.
        assert_eq!(m.predict_rel_ttft_us(2), micros((3.0 + 8.0) * 0.5 + 1.5));
    }

    #[test]
    fn prediction_is_monotone_in_queue_position() {
        let m = model();
        let mut prev = 0;
        for pos in 0..40 {
            let t = m.predict_rel_ttft_us(pos);
            assert!(t >= prev, "pos {pos}: {t} < {prev}");
            // Within a wave positions bind to *ascending* remaining work,
            // and each wave adds a full mean generation, so global
            // monotonicity holds whenever remaining_sorted is ascending
            // and mean_gen_steps >= the largest remaining gap.
            prev = t;
        }
    }

    #[test]
    fn p99_is_nearest_rank_over_the_queue() {
        let m = model();
        assert_eq!(m.predicted_p99_us(0), None);
        // One waiter: p99 is that waiter.
        assert_eq!(m.predicted_p99_us(1), Some(m.predict_rel_ttft_us(0)));
        // 100 waiters: rank ceil(99) = 99 → 0-based pos 98.
        assert_eq!(m.predicted_p99_us(100), Some(m.predict_rel_ttft_us(98)));
    }

    #[test]
    fn policy_constructors_arm_the_right_actuators() {
        let obs = SloPolicy::observe(2.0);
        assert!(!obs.enforce && !obs.preempt && !obs.shed);
        let enf = SloPolicy::enforcing(2.0);
        assert!(enf.enforce && enf.preempt && enf.shed);
        assert!(enf.shed_slack_s < enf.ttft_p99_s);
        assert_eq!(enf.ttft_p99_us(), 2_000_000);
    }

    #[test]
    fn static_ladder_levels_are_one_based_and_finite() {
        let l = StaticLadder::geometric(3, 0.8);
        assert_eq!(l.rung(0), None);
        assert!((l.rung(1).unwrap().step_time_factor - 0.8).abs() < 1e-12);
        assert!((l.rung(3).unwrap().step_time_factor - 0.512).abs() < 1e-12);
        assert_eq!(l.rung(4), None);
    }

    #[test]
    fn slo_policy_round_trips_serde() {
        let p = SloPolicy::enforcing(1.25);
        let v = Serialize::serialize(&p);
        let back: SloPolicy = Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, p);
    }
}
