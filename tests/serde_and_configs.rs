//! Serialisation and configuration-surface tests: everything a downstream
//! user would persist (platforms, models, policies, plans, reports) must
//! round-trip through serde, and the preset surfaces must stay coherent.

#![allow(clippy::unwrap_used)]
use lm_hardware::{presets as hw, Platform};
use lm_models::{presets as models, ModelConfig, Workload};
use lm_offload::{derive_plan, run_framework, EngineConfig, Framework, Table3Row};
use lm_sim::{AttentionPlacement, Policy};

#[test]
fn platform_round_trips_through_json() {
    for p in [hw::single_gpu_a100(), hw::multi_gpu_v100(4), hw::test_platform()] {
        let json = serde_json::to_string(&p).unwrap();
        let back: Platform = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}

#[test]
fn model_config_round_trips_through_json() {
    for m in models::all_presets() {
        let json = serde_json::to_string(&m).unwrap();
        let back: ModelConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}

#[test]
fn policy_and_workload_round_trip() {
    let p = Policy {
        wg: 0.55,
        cg: 0.0,
        hg: 1.0,
        weights_dtype: lm_models::DType::Int4,
        kv_dtype: lm_models::DType::Int8,
        attention: AttentionPlacement::Gpu,
    };
    let back: Policy = serde_json::from_str(&serde_json::to_string(&p).unwrap()).unwrap();
    assert_eq!(p, back);
    let w = Workload::motivation();
    let back: Workload = serde_json::from_str(&serde_json::to_string(&w).unwrap()).unwrap();
    assert_eq!(w, back);
}

#[test]
fn parallelism_plan_round_trips() {
    let platform = hw::single_gpu_a100();
    let out = derive_plan(
        &platform,
        &models::opt_30b(),
        &Workload::parallelism_study(),
        &Policy::flexgen_default(),
    );
    let json = serde_json::to_string(&out.plan).unwrap();
    let back: lm_parallelism::ParallelismPlan = serde_json::from_str(&json).unwrap();
    assert_eq!(back.inter_op_total, out.plan.inter_op_total);
    assert_eq!(back.transfer_threads, out.plan.transfer_threads);
}

#[test]
fn table3_row_survives_json_round_trip_with_values() {
    let platform = hw::single_gpu_a100();
    let cfg = EngineConfig::new(&platform, &models::opt_30b(), 64, 8);
    let run = run_framework(Framework::FlexGen, &cfg).unwrap();
    let row = Table3Row::from_run(&run, "OPT-30B", 8);
    let back: Table3Row = serde_json::from_str(&serde_json::to_string(&row).unwrap()).unwrap();
    assert_eq!(back.framework, "FlexGen");
    assert_eq!(back.bsz, row.bsz);
    assert!((back.tput - row.tput).abs() < 1e-9);
}

#[test]
fn preset_lookup_is_total_over_all_presets() {
    for m in models::all_presets() {
        let found = models::by_name(&m.name).expect("every preset must be findable");
        assert_eq!(found, m);
    }
}

#[test]
fn efficiency_defaults_are_sane_fractions() {
    let e = lm_hardware::Efficiency::default();
    for (name, v) in [
        ("link", e.link),
        ("gpu_compute", e.gpu_compute),
        ("cpu_compute", e.cpu_compute),
        ("gpu_membw", e.gpu_membw),
        ("cpu_membw", e.cpu_membw),
        ("quant_kernel", e.quant_kernel),
    ] {
        assert!((0.0..=1.0).contains(&v), "{name} = {v}");
    }
}
