//! Full text pipeline: train a byte-level BPE tokenizer, write a
//! checkpoint to disk, load it through the T_init path, and generate —
//! text in, text out, through the real offloading engine.
//!
//! Run with: `cargo run --release --example chat_pipeline [prompt text]`

#![allow(clippy::unwrap_used)]
use lm_engine::{write_checkpoint, Engine, EngineOptions, GenerateRequest, Sampler};
use lm_models::presets;
use lm_text::Bpe;

fn main() {
    let prompt = std::env::args()
        .skip(1)
        .collect::<Vec<_>>()
        .join(" ");
    let prompt = if prompt.is_empty() {
        "the theory of the theatre".to_string()
    } else {
        prompt
    };

    // 1. Tokenizer: byte-level BPE trained on a toy corpus.
    let corpus = "the theory of the thermal theatre is the theme of the thesis; \
                  the theory holds that the theatre heats the theme and the \
                  thermal thesis themes the theatre";
    let bpe = Bpe::train(corpus.as_bytes(), 384);
    println!(
        "tokenizer: vocab {} ({:.1}x compression on the corpus)",
        bpe.vocab_size(),
        bpe.bytes_per_token(corpus.as_bytes())
    );

    // 2. Model sized to the tokenizer.
    let mut cfg = presets::tiny_test();
    cfg.vocab_size = bpe.vocab_size() as u64;

    // 3. Checkpoint on disk, loaded through T_init.
    let path = std::env::temp_dir().join("lmoffload-chat-demo.ckpt");
    write_checkpoint(&cfg, 2024, &path).expect("write checkpoint");
    let (engine, init) = Engine::from_checkpoint(
        &cfg,
        &path,
        EngineOptions {
            sampler: Sampler::TopK { k: 8, seed: 7 },
            ..Default::default()
        },
    )
    .expect("load checkpoint");
    println!(
        "T_init: {:.1} ms for {:.1} MiB from disk",
        init.init_seconds * 1e3,
        init.bytes_read as f64 / (1 << 20) as f64
    );

    // 4. Text -> tokens -> engine -> tokens -> text.
    let ids = bpe.encode_str(&prompt);
    println!("prompt: {prompt:?} -> {} tokens", ids.len());
    let g = engine.run(&GenerateRequest::new(vec![ids], 24)).expect("generation");
    let text = bpe.decode_lossy(&g.tokens[0]);
    println!(
        "output ({} tokens, {:.1} tok/s): {text:?}",
        g.tokens[0].len(),
        g.throughput
    );
    println!("(synthetic weights: the text is gibberish by construction —");
    println!(" the pipeline, memory accounting and schedules are the point)");
    std::fs::remove_file(&path).ok();
}
