//! Fault-plan configuration: which fault classes fire, how often, and
//! how hard.

use serde::{Deserialize, Serialize};

/// Preset severity levels for quick wiring from CLI flags and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultProfile {
    /// Rare, survivable faults — retries alone should absorb them.
    Light,
    /// Frequent-enough faults that retry, backpressure, and occasional
    /// degradation all get exercised.
    Moderate,
    /// Sustained pressure: degradation is expected, not exceptional.
    Severe,
}

/// Rates and magnitudes for every fault class. All rates are per-probe
/// probabilities in [0, 1]; a class is disabled by setting its rate to
/// zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed defining the entire fault pattern.
    pub seed: u64,
    /// P(disk read errors) per (key, attempt).
    pub disk_error_rate: f64,
    /// P(disk read is torn) per (key, attempt).
    pub torn_read_rate: f64,
    /// P(link degraded) per bandwidth window.
    pub link_degrade_rate: f64,
    /// Bandwidth multiplier while degraded (0 < f < 1).
    pub link_degrade_factor: f64,
    /// P(transfer stalls) per transfer.
    pub stall_rate: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: u64,
    /// P(pool pressure spike) per probe.
    pub pool_pressure_rate: f64,
    /// Bytes transiently claimed by a pressure spike.
    pub pool_pressure_bytes: u64,
    /// Length of the pressure episode in allocation probes: spikes only
    /// fire on the first `pool_pressure_burst` probes, modelling a
    /// co-tenant's transient memory grab that later subsides. `0` means
    /// no bound — pressure persists for the whole run.
    pub pool_pressure_burst: u64,
    /// P(prefetched item dropped) per item.
    pub prefetch_drop_rate: f64,
}

impl FaultConfig {
    /// A profile's standard rates with the given seed.
    pub fn profile(seed: u64, profile: FaultProfile) -> Self {
        match profile {
            FaultProfile::Light => FaultConfig {
                seed,
                disk_error_rate: 0.02,
                torn_read_rate: 0.01,
                link_degrade_rate: 0.02,
                link_degrade_factor: 0.5,
                stall_rate: 0.01,
                stall_ms: 2,
                pool_pressure_rate: 0.01,
                pool_pressure_bytes: 1 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.01,
            },
            FaultProfile::Moderate => FaultConfig {
                seed,
                disk_error_rate: 0.10,
                torn_read_rate: 0.05,
                link_degrade_rate: 0.10,
                link_degrade_factor: 0.25,
                stall_rate: 0.05,
                stall_ms: 5,
                pool_pressure_rate: 0.05,
                pool_pressure_bytes: 8 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.05,
            },
            FaultProfile::Severe => FaultConfig {
                seed,
                disk_error_rate: 0.25,
                torn_read_rate: 0.15,
                link_degrade_rate: 0.35,
                link_degrade_factor: 0.10,
                stall_rate: 0.15,
                stall_ms: 10,
                pool_pressure_rate: 0.20,
                pool_pressure_bytes: 32 << 20,
                pool_pressure_burst: 0,
                prefetch_drop_rate: 0.15,
            },
        }
    }

    /// All rates zero — an enabled injector that never fires (counters
    /// and the event log still work; useful for tests of the plumbing).
    pub fn quiescent(seed: u64) -> Self {
        FaultConfig {
            seed,
            disk_error_rate: 0.0,
            torn_read_rate: 0.0,
            link_degrade_rate: 0.0,
            link_degrade_factor: 1.0,
            stall_rate: 0.0,
            stall_ms: 0,
            pool_pressure_rate: 0.0,
            pool_pressure_bytes: 0,
            pool_pressure_burst: 0,
            prefetch_drop_rate: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_order_by_severity() {
        let l = FaultConfig::profile(1, FaultProfile::Light);
        let m = FaultConfig::profile(1, FaultProfile::Moderate);
        let s = FaultConfig::profile(1, FaultProfile::Severe);
        assert!(l.disk_error_rate < m.disk_error_rate);
        assert!(m.disk_error_rate < s.disk_error_rate);
        assert!(l.link_degrade_factor > m.link_degrade_factor);
        assert!(m.link_degrade_factor > s.link_degrade_factor);
    }

    #[test]
    fn config_serialises() {
        let c = FaultConfig::profile(77, FaultProfile::Severe);
        let v = serde::Serialize::serialize(&c);
        let back: FaultConfig = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, c);
    }
}
