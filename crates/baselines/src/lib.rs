//! # lm-baselines
//!
//! The two state-of-the-art comparators of the paper's evaluation:
//!
//! - [`flexgen`]: FlexGen's zig-zag block scheduling and policy search —
//!   deliberately *quantization-blind* (it scores candidates with the base
//!   cost model at fp16 only), which is the gap LM-Offload's performance
//!   models close;
//! - [`zero`]: ZeRO-Inference's all-or-nothing placement with default
//!   4-bit weight quantization and no block schedule;
//! - [`search`]: the shared exhaustive policy grid search (the exact,
//!   deterministic stand-in for FlexGen's linear program — DESIGN.md §5),
//!   parameterised by an evaluator closure so each framework brings its
//!   own cost beliefs.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod flexgen;
pub mod search;
pub mod zero;

pub use flexgen::{flexgen_evaluator, flexgen_search, Deployment};
pub use search::{grid_search, SearchSpace};
pub use zero::{zero_policy, zero_search};
