//! Figure 7 — "Effective Quantization": LM-Offload with thread-level
//! parallelism control *disabled* versus FlexGen, isolating the benefit
//! of the §3 performance models (the paper reports +90-121% for the 30B
//! models).

use crate::experiments::table3::table3_models;
use lm_hardware::presets;
use lm_models::ModelConfig;
use lm_offload::{run_framework, EngineConfig, Framework};
use serde::{Deserialize, Serialize};

#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Row {
    pub model: String,
    pub gen_len: u64,
    pub flexgen_tput: f64,
    pub lm_offload_noctl_tput: f64,
    /// Improvement percentage of LM-Offload (no parallelism control).
    pub gain_pct: f64,
}

/// Run one cell.
pub fn run_cell(model: &ModelConfig, gen_len: u64) -> Option<Fig7Row> {
    let platform = presets::single_gpu_a100();
    let mut cfg = EngineConfig::new(&platform, model, 64, gen_len);
    cfg.parallelism_control = false;
    let lm = run_framework(Framework::LmOffload, &cfg)?;
    let fg = run_framework(Framework::FlexGen, &cfg)?;
    let gain = (lm.throughput() / fg.throughput() - 1.0) * 100.0;
    Some(Fig7Row {
        model: model.name.clone(),
        gen_len,
        flexgen_tput: fg.throughput(),
        lm_offload_noctl_tput: lm.throughput(),
        gain_pct: gain,
    })
}

/// Run the figure for all Table 3 models.
pub fn run(gen_lengths: &[u64]) -> Vec<Fig7Row> {
    let mut out = Vec::new();
    for model in table3_models() {
        for &len in gen_lengths {
            if let Some(row) = run_cell(&model, len) {
                out.push(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets as models;

    #[test]
    fn modeling_alone_beats_flexgen_substantially() {
        // Paper: "LM-Offload outperforms FlexGen by 90%-121% in all
        // configurations for 30 billion parameter LLMs" with control
        // disabled. Require a clear double-digit gain.
        let row = run_cell(&models::opt_30b(), 32).unwrap();
        assert!(row.gain_pct > 25.0, "gain only {:.0}%", row.gain_pct);
    }

    #[test]
    fn benefits_persist_at_larger_scale() {
        // "the performance benefits of LM-Offload remain consistent as
        // the model size increases."
        let small = run_cell(&models::opt_30b(), 16).unwrap();
        let large = run_cell(&models::opt_66b(), 16).unwrap();
        assert!(large.gain_pct > 0.0, "66B gain {:.0}%", large.gain_pct);
        assert!(small.gain_pct > 0.0);
    }
}
