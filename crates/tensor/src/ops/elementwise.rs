//! Elementwise and row-wise kernels: activations, softmax, normalisation.

use crate::tensor::Tensor;
use rayon::prelude::*;

/// In-place numerically-stable softmax over the last dimension of a rank-2
/// tensor (each row sums to 1).
pub fn softmax_rows(t: &mut Tensor) {
    assert_eq!(t.rank(), 2, "softmax_rows requires a rank-2 tensor");
    let cols = t.dim(1);
    t.data_mut().par_chunks_mut(cols).for_each(softmax_slice);
}

/// Numerically-stable softmax of one slice in place.
pub fn softmax_slice(row: &mut [f32]) {
    let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for x in row.iter_mut() {
        *x = (*x - max).exp();
        sum += *x;
    }
    if sum > 0.0 {
        let inv = 1.0 / sum;
        for x in row.iter_mut() {
            *x *= inv;
        }
    }
}

/// GELU activation (tanh approximation, as used by OPT).
pub fn gelu(t: &mut Tensor) {
    t.data_mut().par_iter_mut().for_each(|x| {
        let v = *x;
        let inner = 0.797_884_6 * (v + 0.044715 * v * v * v);
        *x = 0.5 * v * (1.0 + inner.tanh());
    });
}

/// ReLU activation.
pub fn relu(t: &mut Tensor) {
    t.data_mut().par_iter_mut().for_each(|x| *x = x.max(0.0));
}

/// SiLU/Swish activation (as used by LLaMA's SwiGLU MLP).
pub fn silu(t: &mut Tensor) {
    t.data_mut().par_iter_mut().for_each(|x| {
        let v = *x;
        *x = v / (1.0 + (-v).exp());
    });
}

/// `a += b`, elementwise; shapes must match.
pub fn add_assign(a: &mut Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "add_assign shape mismatch");
    a.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(x, &y)| *x += y);
}

/// `a *= b`, elementwise; shapes must match (used by SwiGLU gating).
pub fn mul_assign(a: &mut Tensor, b: &Tensor) {
    assert_eq!(a.shape(), b.shape(), "mul_assign shape mismatch");
    a.data_mut()
        .par_iter_mut()
        .zip(b.data().par_iter())
        .for_each(|(x, &y)| *x *= y);
}

/// Scale every element by `s`.
pub fn scale(t: &mut Tensor, s: f32) {
    t.data_mut().par_iter_mut().for_each(|x| *x *= s);
}

/// Add a bias vector to every row of a rank-2 tensor.
pub fn add_bias(t: &mut Tensor, bias: &[f32]) {
    assert_eq!(t.rank(), 2, "add_bias requires a rank-2 tensor");
    let cols = t.dim(1);
    assert_eq!(bias.len(), cols, "bias length mismatch");
    t.data_mut().par_chunks_mut(cols).for_each(|row| {
        for (x, &b) in row.iter_mut().zip(bias) {
            *x += b;
        }
    });
}

/// LayerNorm over the last dimension of a rank-2 tensor with learned
/// `gamma`/`beta` (OPT-style).
pub fn layernorm_rows(t: &mut Tensor, gamma: &[f32], beta: &[f32], eps: f32) {
    assert_eq!(t.rank(), 2, "layernorm_rows requires a rank-2 tensor");
    let cols = t.dim(1);
    assert_eq!(gamma.len(), cols, "gamma length mismatch");
    assert_eq!(beta.len(), cols, "beta length mismatch");
    t.data_mut().par_chunks_mut(cols).for_each(|row| {
        let mean: f32 = row.iter().sum::<f32>() / cols as f32;
        let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / cols as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for ((x, &g), &b) in row.iter_mut().zip(gamma).zip(beta) {
            *x = (*x - mean) * inv * g + b;
        }
    });
}

/// RMSNorm over the last dimension (LLaMA-style; no mean subtraction).
pub fn rmsnorm_rows(t: &mut Tensor, gamma: &[f32], eps: f32) {
    assert_eq!(t.rank(), 2, "rmsnorm_rows requires a rank-2 tensor");
    let cols = t.dim(1);
    assert_eq!(gamma.len(), cols, "gamma length mismatch");
    t.data_mut().par_chunks_mut(cols).for_each(|row| {
        let ms: f32 = row.iter().map(|x| x * x).sum::<f32>() / cols as f32;
        let inv = 1.0 / (ms + eps).sqrt();
        for (x, &g) in row.iter_mut().zip(gamma) {
            *x = *x * inv * g;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut t = Tensor::randn([5, 16], 3.0, 11);
        softmax_rows(&mut t);
        for r in 0..5 {
            let s: f32 = t.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
            assert!(t.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let mut a = Tensor::from_vec([1, 3], vec![1.0, 2.0, 3.0]);
        let mut b = Tensor::from_vec([1, 3], vec![1001.0, 1002.0, 1003.0]);
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        assert!(a.allclose(&b, 1e-6));
    }

    #[test]
    fn gelu_known_values() {
        let mut t = Tensor::from_vec([1, 3], vec![-1.0, 0.0, 1.0]);
        gelu(&mut t);
        assert!((t.at(&[0, 0]) - (-0.1588)).abs() < 1e-3);
        assert_eq!(t.at(&[0, 1]), 0.0);
        assert!((t.at(&[0, 2]) - 0.8412).abs() < 1e-3);
    }

    #[test]
    fn layernorm_normalises() {
        let mut t = Tensor::randn([4, 64], 5.0, 13);
        let gamma = vec![1.0; 64];
        let beta = vec![0.0; 64];
        layernorm_rows(&mut t, &gamma, &beta, 1e-5);
        for r in 0..4 {
            let mean: f32 = t.row(r).iter().sum::<f32>() / 64.0;
            let var: f32 = t.row(r).iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 64.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn rmsnorm_unit_rms() {
        let mut t = Tensor::randn([3, 32], 2.0, 17);
        rmsnorm_rows(&mut t, &[1.0; 32], 1e-6);
        for r in 0..3 {
            let ms: f32 = t.row(r).iter().map(|x| x * x).sum::<f32>() / 32.0;
            assert!((ms - 1.0).abs() < 1e-3, "rms² {ms}");
        }
    }

    #[test]
    fn add_bias_and_add_assign() {
        let mut t = Tensor::zeros([2, 3]);
        add_bias(&mut t, &[1.0, 2.0, 3.0]);
        assert_eq!(t.row(1), &[1.0, 2.0, 3.0]);
        let u = t.clone();
        add_assign(&mut t, &u);
        assert_eq!(t.row(0), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn silu_and_mul_gate() {
        let mut gate = Tensor::from_vec([1, 2], vec![0.0, 10.0]);
        silu(&mut gate);
        assert_eq!(gate.at(&[0, 0]), 0.0);
        assert!((gate.at(&[0, 1]) - 10.0).abs() < 1e-2); // silu(10) ≈ 10
        let up = Tensor::from_vec([1, 2], vec![3.0, 2.0]);
        mul_assign(&mut gate, &up);
        assert_eq!(gate.at(&[0, 0]), 0.0);
    }

    proptest! {
        #[test]
        fn prop_softmax_rows_are_distributions(rows in 1usize..8, cols in 1usize..64, seed in 0u64..500) {
            let mut t = Tensor::randn([rows, cols], 4.0, seed);
            softmax_rows(&mut t);
            for r in 0..rows {
                let s: f32 = t.row(r).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-4);
                prop_assert!(t.row(r).iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
            }
        }

        #[test]
        fn prop_relu_idempotent(n in 1usize..128, seed in 0u64..500) {
            let mut t = Tensor::randn([n], 1.0, seed);
            relu(&mut t);
            let once = t.clone();
            relu(&mut t);
            prop_assert!(t.allclose(&once, 0.0));
        }
    }
}
