//! Byte-level byte-pair encoding.
//!
//! The 256 byte values are the base alphabet, so *any* input encodes and
//! decodes losslessly; training greedily merges the most frequent adjacent
//! pair until the target vocabulary size is reached (ties broken by the
//! lexicographically smaller pair, making training deterministic).

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A trained tokenizer: merge ranks plus the decoded bytes of every token.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bpe {
    /// Merge list in training order: merging `(a, b)` produced token
    /// `256 + index`.
    merges: Vec<(u32, u32)>,
    /// Byte expansion of every token id (`0..256` are single bytes).
    token_bytes: Vec<Vec<u8>>,
}

impl Bpe {
    /// The byte-identity tokenizer (no merges).
    pub fn byte_level() -> Self {
        Bpe {
            merges: Vec::new(),
            token_bytes: (0u16..256).map(|b| vec![b as u8]).collect(),
        }
    }

    /// Train on a corpus until the vocabulary reaches `vocab_size`
    /// (≥ 256) or no pair repeats.
    pub fn train(corpus: &[u8], vocab_size: usize) -> Self {
        assert!(vocab_size >= 256, "vocab must cover the byte alphabet");
        let mut bpe = Bpe::byte_level();
        let mut seq: Vec<u32> = corpus.iter().map(|&b| b as u32).collect();

        while bpe.vocab_size() < vocab_size {
            let mut counts: HashMap<(u32, u32), usize> = HashMap::new();
            for w in seq.windows(2) {
                *counts.entry((w[0], w[1])).or_insert(0) += 1;
            }
            let best = counts
                .into_iter()
                .filter(|&(_, c)| c >= 2)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some((pair, _)) = best else { break };

            let new_id = bpe.vocab_size() as u32;
            bpe.merges.push(pair);
            let mut bytes = bpe.token_bytes[pair.0 as usize].clone();
            bytes.extend_from_slice(&bpe.token_bytes[pair.1 as usize]);
            bpe.token_bytes.push(bytes);
            seq = merge_pass(&seq, pair, new_id);
        }
        bpe
    }

    /// Total tokens (256 bytes + merges).
    pub fn vocab_size(&self) -> usize {
        self.token_bytes.len()
    }

    /// Encode bytes to token ids by replaying the merges in rank order.
    pub fn encode(&self, text: &[u8]) -> Vec<u32> {
        let mut seq: Vec<u32> = text.iter().map(|&b| b as u32).collect();
        for (rank, &pair) in self.merges.iter().enumerate() {
            if seq.len() < 2 {
                break;
            }
            seq = merge_pass(&seq, pair, 256 + rank as u32);
        }
        seq
    }

    /// Decode token ids back to bytes. Unknown ids are an error.
    pub fn decode(&self, tokens: &[u32]) -> Result<Vec<u8>, String> {
        let mut out = Vec::new();
        for &t in tokens {
            let bytes = self
                .token_bytes
                .get(t as usize)
                .ok_or_else(|| format!("unknown token id {t}"))?;
            out.extend_from_slice(bytes);
        }
        Ok(out)
    }

    /// Convenience: encode a string.
    pub fn encode_str(&self, text: &str) -> Vec<u32> {
        self.encode(text.as_bytes())
    }

    /// Convenience: decode to a string (lossy on invalid UTF-8 boundaries).
    pub fn decode_lossy(&self, tokens: &[u32]) -> String {
        String::from_utf8_lossy(&self.decode(tokens).unwrap_or_default()).into_owned()
    }

    /// Average bytes per token over a corpus — the compression the merges
    /// bought.
    pub fn bytes_per_token(&self, corpus: &[u8]) -> f64 {
        if corpus.is_empty() {
            return 0.0;
        }
        corpus.len() as f64 / self.encode(corpus).len() as f64
    }

    /// Serialise to JSON (for shipping alongside synthetic checkpoints).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("tokenizer serialises")
    }

    /// Load from JSON.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let bpe: Bpe = serde_json::from_str(json).map_err(|e| e.to_string())?;
        if bpe.token_bytes.len() < 256 {
            return Err("vocabulary smaller than the byte alphabet".into());
        }
        Ok(bpe)
    }
}

/// Replace every non-overlapping occurrence of `pair` with `new_id`.
fn merge_pass(seq: &[u32], pair: (u32, u32), new_id: u32) -> Vec<u32> {
    let mut out = Vec::with_capacity(seq.len());
    let mut i = 0;
    while i < seq.len() {
        if i + 1 < seq.len() && seq[i] == pair.0 && seq[i + 1] == pair.1 {
            out.push(new_id);
            i += 2;
        } else {
            out.push(seq[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const CORPUS: &str = "the theory of the thermal theatre is the theme of the thesis; \
                          the theory holds that the theatre heats the theme";

    #[test]
    fn byte_level_round_trips_everything() {
        let bpe = Bpe::byte_level();
        let data = [0u8, 255, 128, 7, 42];
        assert_eq!(bpe.decode(&bpe.encode(&data)).unwrap(), data);
        assert_eq!(bpe.vocab_size(), 256);
    }

    #[test]
    fn training_learns_frequent_pairs() {
        let bpe = Bpe::train(CORPUS.as_bytes(), 300);
        assert!(bpe.vocab_size() > 256, "merges must be learned");
        // "th" appears constantly; some merged token must expand to bytes
        // containing "th".
        assert!(
            bpe.encode_str(CORPUS).len() < CORPUS.len(),
            "encoding must compress the training corpus"
        );
        assert!(bpe.bytes_per_token(CORPUS.as_bytes()) > 1.5);
    }

    #[test]
    fn trained_encode_decode_round_trips() {
        let bpe = Bpe::train(CORPUS.as_bytes(), 320);
        for text in [CORPUS, "unseen text with the letters", "", "θ unicode ✓"] {
            let ids = bpe.encode_str(text);
            assert_eq!(bpe.decode(&ids).unwrap(), text.as_bytes(), "{text}");
        }
    }

    #[test]
    fn training_is_deterministic() {
        let a = Bpe::train(CORPUS.as_bytes(), 300);
        let b = Bpe::train(CORPUS.as_bytes(), 300);
        assert_eq!(a.encode_str(CORPUS), b.encode_str(CORPUS));
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn vocab_size_cap_respected() {
        let bpe = Bpe::train(CORPUS.as_bytes(), 280);
        assert!(bpe.vocab_size() <= 280);
    }

    #[test]
    fn json_round_trip() {
        let bpe = Bpe::train(CORPUS.as_bytes(), 300);
        let back = Bpe::from_json(&bpe.to_json()).unwrap();
        assert_eq!(back.encode_str(CORPUS), bpe.encode_str(CORPUS));
        assert!(Bpe::from_json("{\"merges\":[],\"token_bytes\":[]}").is_err());
    }

    #[test]
    fn decode_rejects_unknown_ids() {
        let bpe = Bpe::byte_level();
        assert!(bpe.decode(&[999]).is_err());
    }

    proptest! {
        #[test]
        fn prop_round_trip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..400)) {
            let bpe = Bpe::train(CORPUS.as_bytes(), 300);
            prop_assert_eq!(bpe.decode(&bpe.encode(&data)).unwrap(), data);
        }

        #[test]
        fn prop_encoding_never_longer_than_input(data in proptest::collection::vec(any::<u8>(), 0..300)) {
            let bpe = Bpe::train(CORPUS.as_bytes(), 300);
            prop_assert!(bpe.encode(&data).len() <= data.len());
        }
    }
}
