//! Smoke tests for every experiment runner: each table/figure
//! regenerates, produces non-degenerate rows, and serialises. The deeper
//! shape assertions live next to each runner in `lm-bench`.

#![allow(clippy::unwrap_used)]
use lm_bench::experiments::*;

#[test]
fn table1_regenerates() {
    let rows = table1::run();
    assert_eq!(rows.len(), 10);
    assert!(rows.iter().any(|r| r.ours_gib > 10.0));
    serde_json::to_string(&rows).unwrap();
}

#[test]
fn fig3_and_fig4_regenerate() {
    let f3 = fig3::run();
    assert_eq!(f3.len(), 8, "eight strategy bars");
    assert!(f3.iter().all(|r| r.tput > 0.0));
    let f4 = fig3::run_breakdown();
    assert_eq!(f4.len(), f3.len());
    assert!(f4.iter().all(|r| r.other > 0.0));
    serde_json::to_string(&(f3, f4)).unwrap();
}

#[test]
fn fig5_regenerates() {
    let f = fig5::run();
    assert_eq!(f.intra_sweep.len(), 9);
    assert_eq!(f.inter_sweep.len(), 10);
    serde_json::to_string(&f).unwrap();
}

#[test]
fn table3_cell_regenerates_with_all_frameworks() {
    let rows = table3::run_cell(&lm_models::presets::opt_30b(), 8);
    assert_eq!(rows.len(), 3, "three frameworks");
    let names: Vec<&str> = rows.iter().map(|r| r.framework.as_str()).collect();
    assert!(names.contains(&"FlexGen"));
    assert!(names.contains(&"ZeRO-Inference"));
    assert!(names.contains(&"LM-Offload"));
    serde_json::to_string(&rows).unwrap();
}

#[test]
fn fig7_regenerates() {
    let row = fig7::run_cell(&lm_models::presets::opt_30b(), 8).unwrap();
    assert!(row.flexgen_tput > 0.0);
    assert!(row.lm_offload_noctl_tput > 0.0);
    serde_json::to_string(&row).unwrap();
}

#[test]
fn fig8_regenerates() {
    let f = fig8::run();
    assert!(!f.tasks.is_empty());
    assert!(f.default_end_to_end > 0.0);
    serde_json::to_string(&f).unwrap();
}

#[test]
fn table5_regenerates() {
    let t = table5::run();
    assert_eq!(t.rows.len(), 2);
    serde_json::to_string(&t).unwrap();
}

#[test]
fn fig9_regenerates() {
    let rows = fig9::run();
    assert_eq!(rows.len(), 8, "two models x four GPU counts");
    serde_json::to_string(&rows).unwrap();
}

#[test]
fn whatif_sweep_regenerates() {
    use lm_offload::{whatif_sweep, Axis};
    let platform = lm_hardware::presets::single_gpu_a100();
    let c = whatif_sweep(
        Axis::LinkBandwidth,
        &platform,
        &lm_models::presets::opt_30b(),
        64,
        8,
        &[1.0, 2.0],
    );
    assert_eq!(c.points.len(), 2);
    assert!(c.points.iter().all(|p| p.throughput > 0.0));
    serde_json::to_string(&c).unwrap();
}

#[test]
fn table4_regenerates() {
    let rows = table4::run();
    assert_eq!(rows.len(), 2);
    serde_json::to_string(&rows).unwrap();
}
