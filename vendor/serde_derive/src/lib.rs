//! Offline `#[derive(Serialize, Deserialize)]` for the vendored serde
//! stand-in (see `vendor/README.md`).
//!
//! Hand-rolled on top of `proc_macro` alone (no syn/quote, which are
//! unavailable offline). Supports exactly the shapes this workspace
//! derives on: plain named-field structs and unit-variant enums, no
//! generics. Anything else is rejected with a compile error naming the
//! limitation, so a future derive site fails loudly rather than
//! serialising wrong.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Input {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<String> },
}

/// Skip `#[...]` attribute groups and `pub` / `pub(...)` visibility at
/// the current position.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // `#` then a bracketed attribute body.
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected type name, got {other:?}"),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!(
                "serde stub derive: generic type `{name}` is not supported \
                 (see vendor/serde_derive)"
            );
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde stub derive: `{name}` must have a braced body \
             (tuple/unit structs unsupported), got {other:?}"
        ),
    };

    match kind.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_unit_variants(body),
        },
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    }
}

/// Collect field names from `name: Type, ...`, tolerating commas nested
/// in `<...>` (groups like `(u32, u32)` are single tokens already).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let fname = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!(
                "serde stub derive: expected `:` after field `{fname}`, got {other:?}"
            ),
        }
        // Skip the type: scan to the next top-level comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            if let TokenTree::Punct(p) = tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        fields.push(fname);
    }
    fields
}

fn parse_unit_variants(body: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs_and_vis(&tokens, i);
        let Some(tt) = tokens.get(i) else { break };
        let vname = match tt {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde stub derive: expected variant name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde stub derive: variant `{vname}` carries data; only \
                 unit variants are supported (see vendor/serde_derive)"
            ),
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => panic!(
                "serde stub derive: discriminant on variant `{vname}` unsupported"
            ),
            other => panic!("serde stub derive: unexpected token after `{vname}`: {other:?}"),
        }
        variants.push(vname);
    }
    variants
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut inserts = String::new();
            for f in &fields {
                inserts.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!(
                    "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde stub derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_input(input) {
        Input::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                inits.push_str(&format!("{f}: ::serde::field(m, \"{f}\")?,\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         let m = value.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for struct {name}\"))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                arms.push_str(&format!("Some(\"{v}\") => Ok({name}::{v}),\n"));
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(value: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
                         match value.as_str() {{\n\
                             {arms}\
                             Some(other) => Err(::serde::Error::custom(\
                                 format!(\"unknown variant '{{other}}' for enum {name}\"))),\n\
                             None => Err(::serde::Error::custom(\
                                 \"expected string for enum {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde stub derive: generated invalid Deserialize impl")
}
