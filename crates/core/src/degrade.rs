//! Model-guided graceful degradation.
//!
//! When the platform misbehaves *persistently* — the device pool stays
//! under pressure past the retry budget, or the interconnect runs at a
//! fraction of its nominal bandwidth — retrying harder is the wrong
//! recovery. Instead the controller re-runs the paper's analytic
//! machinery ([`lm_offload_evaluator`], the same Eq. 3-7-aware scoring
//! the [`crate::Advisor`] uses) against a *degraded* platform
//! description, and picks the fallback policy the model ranks fastest
//! among those still feasible. Generation then continues at the
//! degraded-but-feasible policy rather than failing.
//!
//! The engine-side driver [`generate_with_degradation`] wires this to
//! `lm-engine`: a sustained `PoolExhausted` (survived the retry budget)
//! triggers a fallback selection plus a switch to serial (prefetch-off)
//! streaming, which halves the in-flight device working set — the
//! backpressure-aware half of the recovery.

use crate::policy_search::lm_offload_evaluator;
use crate::provider::ThreadFactors;
use crate::quant_model::QuantCostParams;
use lm_engine::{Engine, EngineError, EngineOptions, GenerateRequest, Generation};
use lm_hardware::Platform;
use lm_models::{DType, ModelConfig, Workload};
use lm_sim::{AttentionPlacement, Policy};
use lm_tensor::QuantConfig;
use serde::{Deserialize, Serialize};

/// What went wrong, in the terms the performance model understands.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DegradationTrigger {
    /// Sustained device-pool exhaustion: only `available_fraction` of
    /// the planned device budget is actually usable.
    PoolPressure { available_fraction: f64 },
    /// The link runs at `factor` (in (0, 1]) of its nominal bandwidth.
    BandwidthDrop { factor: f64 },
}

// The vendored serde derive handles only unit enum variants, so the
// data-carrying trigger serialises by hand as {"kind": ..., "value": ...}.
impl Serialize for DegradationTrigger {
    fn serialize(&self) -> serde::Value {
        let (kind, value) = match self {
            DegradationTrigger::PoolPressure { available_fraction } => {
                ("pool_pressure", *available_fraction)
            }
            DegradationTrigger::BandwidthDrop { factor } => ("bandwidth_drop", *factor),
        };
        let mut m = serde::Map::new();
        m.insert("kind".into(), serde::Value::String(kind.into()));
        m.insert("value".into(), serde::Value::Float(value));
        serde::Value::Object(m)
    }
}

impl Deserialize for DegradationTrigger {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value
            .as_object()
            .ok_or_else(|| serde::Error::custom("expected trigger object"))?;
        let kind: String = serde::field(obj, "kind")?;
        let v: f64 = serde::field(obj, "value")?;
        match kind.as_str() {
            "pool_pressure" => Ok(DegradationTrigger::PoolPressure {
                available_fraction: v,
            }),
            "bandwidth_drop" => Ok(DegradationTrigger::BandwidthDrop { factor: v }),
            other => Err(serde::Error::custom(format!("unknown trigger kind '{other}'"))),
        }
    }
}

/// One accepted policy switch, for reporting.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PolicySwitch {
    pub trigger: DegradationTrigger,
    pub from: Policy,
    pub to: Policy,
    /// The analytic throughput the model predicted for `to` on the
    /// degraded platform, tokens/s.
    pub predicted_throughput: f64,
}

/// The degradation controller: holds the analytic context (platform,
/// model, workload, kernel quality) needed to re-score policies when a
/// trigger fires.
#[derive(Debug, Clone)]
pub struct DegradationController {
    pub platform: Platform,
    pub model: ModelConfig,
    pub workload: Workload,
    pub params: QuantCostParams,
    pub threads: ThreadFactors,
}

impl DegradationController {
    pub fn new(
        platform: &Platform,
        model: &ModelConfig,
        workload: &Workload,
        params: QuantCostParams,
    ) -> Self {
        DegradationController {
            platform: platform.clone(),
            model: model.clone(),
            workload: *workload,
            params,
            threads: ThreadFactors::Controlled,
        }
    }

    /// The platform as the trigger describes it: reduced GPU memory
    /// under pool pressure, scaled link bandwidth under a drop.
    pub fn degraded_platform(&self, trigger: DegradationTrigger) -> Platform {
        let mut p = self.platform.clone();
        match trigger {
            DegradationTrigger::PoolPressure { available_fraction } => {
                let f = available_fraction.clamp(0.0, 1.0);
                p.gpu.mem_capacity = (p.gpu.mem_capacity as f64 * f) as u64;
            }
            DegradationTrigger::BandwidthDrop { factor } => {
                let f = factor.clamp(1e-6, 1.0);
                p.link.h2d_bw *= f;
                p.link.d2h_bw *= f;
            }
        }
        p
    }

    /// The fallback ladder from `current`: progressively cheaper
    /// (smaller-footprint, lower-traffic) policies, ending at the
    /// fully-offloaded Int4 configuration. Invalid rungs and the
    /// current policy itself are filtered out.
    pub fn fallback_ladder(&self, current: &Policy) -> Vec<Policy> {
        let mut rungs: Vec<Policy> = Vec::new();
        let push = |p: Policy, rungs: &mut Vec<Policy>| {
            if p.validate().is_ok() && p != *current && !rungs.contains(&p) {
                rungs.push(p);
            }
        };
        // 1. Quantize the weights: smaller stream, smaller resident set.
        let mut w4 = *current;
        w4.weights_dtype = DType::Int4;
        push(w4, &mut rungs);
        // 2. Quantize the KV cache.
        let mut k4 = *current;
        k4.kv_dtype = DType::Int4;
        push(k4, &mut rungs);
        // 3. Both.
        let mut b4 = w4;
        b4.kv_dtype = DType::Int4;
        push(b4, &mut rungs);
        // 4. Both, with halved GPU-resident shares.
        let mut half = b4;
        half.wg /= 2.0;
        half.cg /= 2.0;
        push(half, &mut rungs);
        // 5. Offload attention (KV stays on host), quantized weights.
        let mut cpu_att = w4;
        cpu_att.attention = AttentionPlacement::Cpu;
        cpu_att.cg = 0.0;
        push(cpu_att, &mut rungs);
        // 6. Fully offloaded, everything Int4 — the floor.
        let floor = Policy {
            wg: 0.0,
            cg: 0.0,
            hg: 0.0,
            weights_dtype: DType::Int4,
            kv_dtype: DType::Int4,
            attention: AttentionPlacement::Cpu,
        };
        push(floor, &mut rungs);
        rungs
    }

    /// Pick the fallback the analytic model ranks fastest among the
    /// ladder's rungs that remain *feasible* on the degraded platform.
    /// `None` when no rung fits — the caller must surface a hard error.
    pub fn select_fallback(
        &self,
        trigger: DegradationTrigger,
        current: &Policy,
    ) -> Option<(Policy, f64)> {
        let platform = self.degraded_platform(trigger);
        let mut best: Option<(Policy, f64)> = None;
        for rung in self.fallback_ladder(current) {
            if let Some(tput) = lm_offload_evaluator(
                &platform,
                &self.model,
                &self.workload,
                &rung,
                self.params,
                self.threads,
            ) {
                if best.map(|(_, b)| tput > b).unwrap_or(true) {
                    best = Some((rung, tput));
                }
            }
        }
        best
    }
}

/// The serving-side view of the fallback ladder: each rung of
/// [`DegradationController::fallback_ladder`] is re-scored by the
/// analytic evaluator on the *healthy* platform, and rungs the model
/// ranks faster than the base policy become [`lm_serve::DegradeRung`]s
/// whose `step_time_factor` is the modelled step-time ratio
/// `base_tput / rung_tput` (< 1 — quantized streams shrink the shared
/// weight fetch, Eq. 2). Rungs are ordered mildest-first so the
/// scheduler's one-way ratchet climbs from least to most degraded;
/// rungs the model cannot score, or scores no faster than the base,
/// are dropped.
#[derive(Debug, Clone)]
pub struct ServeDegradeLadder {
    rungs: Vec<lm_serve::DegradeRung>,
}

impl ServeDegradeLadder {
    /// Build the ladder for `base` policy using `controller`'s analytic
    /// context. An empty ladder (no rung outruns the base) is valid:
    /// `lm-serve`'s LMA261 pre-flight then requires another actuator.
    pub fn model_guided(controller: &DegradationController, base: &Policy) -> Self {
        let score = |p: &Policy| {
            lm_offload_evaluator(
                &controller.platform,
                &controller.model,
                &controller.workload,
                p,
                controller.params,
                controller.threads,
            )
        };
        let mut rungs: Vec<lm_serve::DegradeRung> = Vec::new();
        if let Some(base_tput) = score(base) {
            for rung in controller.fallback_ladder(base) {
                let Some(tput) = score(&rung) else { continue };
                let factor = base_tput / tput;
                if factor < 1.0 {
                    rungs.push(lm_serve::DegradeRung {
                        name: describe_policy(&rung),
                        step_time_factor: factor,
                    });
                }
            }
        }
        // Mildest degradation first: the ratchet should take the
        // smallest step that might hold the objective.
        rungs.sort_by(|a, b| {
            b.step_time_factor
                .total_cmp(&a.step_time_factor)
                .then_with(|| a.name.cmp(&b.name))
        });
        ServeDegradeLadder { rungs }
    }

    /// The rungs, mildest first.
    pub fn rungs(&self) -> &[lm_serve::DegradeRung] {
        &self.rungs
    }
}

impl lm_serve::DegradeLadder for ServeDegradeLadder {
    fn rung(&self, level: usize) -> Option<lm_serve::DegradeRung> {
        if level == 0 {
            return None;
        }
        self.rungs.get(level - 1).cloned()
    }
}

/// A short human label for a fallback policy, used as the rung name.
fn describe_policy(p: &Policy) -> String {
    let att = match p.attention {
        AttentionPlacement::Gpu => "gpu",
        AttentionPlacement::Cpu => "cpu",
    };
    format!(
        "w:{:?}/kv:{:?}/att:{att}/wg:{:.2}",
        p.weights_dtype, p.kv_dtype, p.wg
    )
}

/// Map a policy's at-rest precisions onto real-engine options. The
/// placement fractions have no engine analogue (the mini engine always
/// streams every layer); precisions do.
pub fn engine_options_for_policy(policy: &Policy, base: &EngineOptions) -> EngineOptions {
    let mut o = base.clone();
    o.quantize_at_rest = match policy.weights_dtype {
        DType::Int4 => Some(QuantConfig::int4()),
        DType::Int8 => Some(QuantConfig::int8()),
        DType::F16 | DType::F32 => None,
    };
    o.f16_at_rest = policy.weights_dtype == DType::F16;
    o.kv_quantize_at_rest = match policy.kv_dtype {
        DType::Int4 => Some(QuantConfig::int4()),
        DType::Int8 => Some(QuantConfig::int8()),
        DType::F16 | DType::F32 => None,
    };
    o
}

/// Result of a degradation-aware generation run.
#[derive(Debug)]
pub struct DegradedGeneration {
    pub generation: Generation,
    /// The policy generation finally completed under.
    pub policy: Policy,
    /// Accepted policy switches, in order.
    pub switches: Vec<PolicySwitch>,
}

/// Least GPU-memory fraction the degradation controller will plan for
/// after observing an exhausted pool: transient spikes can sample as low
/// as zero, which would make every policy infeasible.
const MIN_ASSUMED_FRACTION: f64 = 0.25;

/// Run generation with graceful degradation: build an engine for
/// `initial_policy`, and on sustained device-pool exhaustion (an error
/// that already survived the engine's retry budget) ask `controller`
/// for the model-ranked fallback, rebuild with the degraded options —
/// prefetch off, so only one layer is in flight — and continue. Bounded
/// by the ladder length; returns [`EngineError::Degraded`] when no
/// feasible fallback remains.
#[allow(clippy::too_many_arguments)]
pub fn generate_with_degradation(
    controller: &DegradationController,
    cfg: &ModelConfig,
    seed: u64,
    base_options: &EngineOptions,
    initial_policy: Policy,
    prompts: &[Vec<u32>],
    gen_len: usize,
) -> Result<DegradedGeneration, EngineError> {
    let fault = base_options.fault.clone();
    let mut policy = initial_policy;
    let mut options = engine_options_for_policy(&policy, base_options);
    let mut switches: Vec<PolicySwitch> = Vec::new();
    // One attempt per ladder rung plus the initial try.
    let max_attempts = controller.fallback_ladder(&initial_policy).len() + 1;
    for _ in 0..max_attempts {
        let engine = Engine::new(cfg, seed, options.clone())?;
        match engine.run(&GenerateRequest::new(prompts.to_vec(), gen_len)) {
            Ok(generation) => {
                return Ok(DegradedGeneration {
                    generation,
                    policy,
                    switches,
                })
            }
            Err(EngineError::Pool(e)) => {
                // The retry budget is spent: treat the observed capacity
                // as the new device budget and let the model choose. The
                // observation is one (worst-case) sample though — a spike
                // can momentarily leave *zero* headroom, and planning for
                // a zero-memory GPU would rule out every policy. Floor
                // the assumption instead: if pressure really persists at
                // the fallback, the next loop iteration samples again and
                // steps further down the ladder.
                let observed = (e.capacity as f64 / options.device_capacity.max(1) as f64)
                    .clamp(0.0, 1.0);
                let trigger = DegradationTrigger::PoolPressure {
                    available_fraction: observed.max(MIN_ASSUMED_FRACTION),
                };
                let Some((next, predicted_throughput)) =
                    controller.select_fallback(trigger, &policy)
                else {
                    return Err(EngineError::Degraded(format!(
                        "no feasible fallback policy after sustained pool pressure: {e}"
                    )));
                };
                fault.note_degradation();
                switches.push(PolicySwitch {
                    trigger,
                    from: policy,
                    to: next,
                    predicted_throughput,
                });
                policy = next;
                options = engine_options_for_policy(&policy, base_options);
                // Backpressure response: stop prefetching so only one
                // layer occupies the squeezed pool at a time.
                options.prefetch = false;
            }
            Err(e) => return Err(e),
        }
    }
    Err(EngineError::Degraded(format!(
        "pool pressure persisted through {} fallback policies",
        switches.len()
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    fn controller() -> DegradationController {
        DegradationController::new(
            &presets::single_gpu_a100(),
            &models::opt_30b(),
            &Workload::motivation(),
            QuantCostParams::lm_offload_kernels(),
        )
    }

    #[test]
    fn degraded_platform_shrinks_the_right_axis() {
        let c = controller();
        let p = c.degraded_platform(DegradationTrigger::PoolPressure {
            available_fraction: 0.5,
        });
        assert_eq!(p.gpu.mem_capacity, c.platform.gpu.mem_capacity / 2);
        assert_eq!(p.link.h2d_bw, c.platform.link.h2d_bw);
        let q = c.degraded_platform(DegradationTrigger::BandwidthDrop { factor: 0.25 });
        assert_eq!(q.link.h2d_bw, c.platform.link.h2d_bw * 0.25);
        assert_eq!(q.gpu.mem_capacity, c.platform.gpu.mem_capacity);
    }

    #[test]
    fn ladder_is_valid_and_excludes_current() {
        let c = controller();
        let current = Policy::flexgen_default();
        let ladder = c.fallback_ladder(&current);
        assert!(ladder.len() >= 3);
        for p in &ladder {
            assert!(p.validate().is_ok(), "{p:?}");
            assert_ne!(*p, current);
        }
    }

    #[test]
    fn select_fallback_matches_independent_evaluator_ranking() {
        // The acceptance criterion: the controller's pick is exactly the
        // rung the analytic model scores fastest among feasible ones.
        let c = controller();
        let current = Policy::flexgen_default();
        let trigger = DegradationTrigger::BandwidthDrop { factor: 0.3 };
        let (chosen, tput) = c.select_fallback(trigger, &current).expect("a fallback");
        let degraded = c.degraded_platform(trigger);
        let mut best_seen = f64::NEG_INFINITY;
        for rung in c.fallback_ladder(&current) {
            if let Some(t) = lm_offload_evaluator(
                &degraded,
                &c.model,
                &c.workload,
                &rung,
                c.params,
                c.threads,
            ) {
                best_seen = best_seen.max(t);
            }
        }
        assert_eq!(tput, best_seen, "controller must pick the model's argmax");
        let chosen_score = lm_offload_evaluator(
            &degraded,
            &c.model,
            &c.workload,
            &chosen,
            c.params,
            c.threads,
        )
        .expect("chosen rung must be feasible");
        assert_eq!(chosen_score, tput);
    }

    #[test]
    fn pool_pressure_fallback_is_feasible_on_shrunk_gpu() {
        let c = controller();
        let mut current = Policy::flexgen_default();
        current.wg = 0.4; // a resident share the shrunk GPU can't hold
        let trigger = DegradationTrigger::PoolPressure {
            available_fraction: 0.3,
        };
        let (chosen, _) = c.select_fallback(trigger, &current).expect("a fallback");
        let degraded = c.degraded_platform(trigger);
        assert!(lm_sim::fits(&c.model, &c.workload, &degraded, &chosen));
    }

    #[test]
    fn serve_ladder_rungs_are_improving_and_mildest_first() {
        let c = controller();
        // A fully-resident FP16 base leaves plenty of modelled headroom
        // for quantized fallbacks to outrun it.
        let base = Policy::flexgen_default();
        let ladder = ServeDegradeLadder::model_guided(&c, &base);
        assert!(
            !ladder.rungs().is_empty(),
            "quantized rungs must outrun the fp16 base in the model"
        );
        let mut prev = 1.0f64;
        for r in ladder.rungs() {
            assert!(
                r.step_time_factor > 0.0 && r.step_time_factor < 1.0,
                "{}: factor {} outside (0, 1)",
                r.name,
                r.step_time_factor
            );
            assert!(
                r.step_time_factor <= prev,
                "ladder must be ordered mildest-first"
            );
            prev = r.step_time_factor;
        }
    }

    #[test]
    fn serve_ladder_is_one_based_like_the_trait_contract() {
        use lm_serve::DegradeLadder as _;
        let c = controller();
        let ladder = ServeDegradeLadder::model_guided(&c, &Policy::flexgen_default());
        let n = ladder.rungs().len();
        assert!(ladder.rung(0).is_none(), "level 0 is 'no degradation'");
        assert_eq!(
            ladder.rung(1).map(|r| r.name),
            ladder.rungs().first().map(|r| r.name.clone())
        );
        assert!(ladder.rung(n + 1).is_none());
    }

    #[test]
    fn engine_options_map_precisions() {
        let base = EngineOptions::default();
        let mut p = Policy::flexgen_default();
        p.weights_dtype = DType::Int4;
        p.kv_dtype = DType::Int8;
        let o = engine_options_for_policy(&p, &base);
        assert_eq!(o.quantize_at_rest, Some(QuantConfig::int4()));
        assert_eq!(o.kv_quantize_at_rest, Some(QuantConfig::int8()));
        assert!(!o.f16_at_rest);
        p.weights_dtype = DType::F16;
        p.kv_dtype = DType::F16;
        let o = engine_options_for_policy(&p, &base);
        assert_eq!(o.quantize_at_rest, None);
        assert!(o.f16_at_rest);
        assert_eq!(o.kv_quantize_at_rest, None);
    }
}
