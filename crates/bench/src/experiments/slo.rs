//! `repro slo` — SLO enforcement under overload (DESIGN.md §12): the
//! same seeded traffic trace is served twice under an aggressive TTFT
//! objective — once in *observe* mode (the monitor predicts violations
//! but never acts) and once *enforcing* with every actuator armed
//! (deadline-aware shedding, lowest-priority preemption, and the
//! model-guided degrade ladder from `lm_offload::degrade`). The gate:
//! observe mode must violate the objective, enforcing mode must meet it
//! with at least one actuator visibly firing, and continuous batching
//! must still out-run the sequential baseline.
//!
//! TTFT percentiles are computed exactly from the responses' virtual
//! timestamps (nearest rank), not from the ~9%-error log-scale trace
//! histograms, so the verdicts are sharp.

use lm_offload::{DegradationController, QuantCostParams, ServeDegradeLadder};
use lm_serve::{
    synth_traffic, AnalyticBackend, RejectReason, ServeBackend, ServeConfig, ServeMode,
    ServeOutcome, ServePlan, ServeSession, SloPolicy,
};
use lm_trace::Tracer;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

pub const DEFAULT_SEED: u64 = 7;
pub const DEFAULT_RPS: f64 = 4.0;
pub const DEFAULT_REQUESTS: usize = 32;

/// SLO target as a multiple of the plan's physical TTFT floor (one
/// padded-group prefill plus one full-occupancy decode step). Low enough
/// that unprotected overload violates it, high enough that shedding and
/// preemption can hold it.
pub const SLO_FLOOR_HEADROOM: f64 = 3.0;

/// One serving mode (observe or enforcing) under the objective.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloModeRow {
    pub mode: String,
    pub completed: usize,
    pub rejected: usize,
    pub cancelled: usize,
    /// Requests shed at admission with `WouldMissDeadline`.
    pub shed: u64,
    pub preemptions: u64,
    pub degradations: u64,
    /// Boundaries where the monitor predicted a p99 TTFT violation.
    pub predicted_violations: u64,
    pub deadline_misses: u64,
    /// Exact nearest-rank p99 TTFT over completed requests, seconds.
    pub achieved_ttft_p99_s: f64,
    pub meets_slo: bool,
    pub tokens_per_s: f64,
}

/// Everything `repro slo` writes to `results/slo.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SloReport {
    pub seed: u64,
    pub rps: f64,
    pub requests: usize,
    pub plan: ServePlan,
    /// The TTFT objective, virtual seconds.
    pub ttft_p99_slo_s: f64,
    /// The plan's physical TTFT floor the objective is derived from.
    pub floor_ttft_s: f64,
    /// Rungs of the model-guided degrade ladder handed to the scheduler.
    pub ladder_rungs: usize,
    pub observe: SloModeRow,
    pub enforced: SloModeRow,
    pub sequential_tokens_per_s: f64,
    /// Enforcing-mode throughput ≥ the sequential baseline's.
    pub continuous_beats_sequential: bool,
    /// The verify.sh gate: observe violates, enforcing meets, actuators
    /// fired, and continuous still dominates sequential.
    pub slo_ok: bool,
}

/// Exact nearest-rank percentile over the responses' TTFTs, seconds.
fn ttft_percentile(out: &ServeOutcome, q: f64) -> f64 {
    let mut ttfts: Vec<f64> = out.responses.iter().map(|r| r.ttft_s()).collect();
    if ttfts.is_empty() {
        return 0.0;
    }
    ttfts.sort_by(f64::total_cmp);
    let rank = ((ttfts.len() as f64) * q).ceil() as usize;
    ttfts[rank.saturating_sub(1).min(ttfts.len() - 1)]
}

fn mode_row(mode: &str, slo_s: f64, out: &ServeOutcome) -> SloModeRow {
    let shed = out
        .rejections
        .iter()
        .filter(|r| matches!(r.reason, RejectReason::WouldMissDeadline { .. }))
        .count() as u64;
    let p99 = ttft_percentile(out, 0.99);
    SloModeRow {
        mode: mode.to_string(),
        completed: out.responses.len(),
        rejected: out.rejections.len(),
        cancelled: out.cancellations.len(),
        shed,
        preemptions: out.stats.preemptions,
        degradations: out.stats.degradations,
        predicted_violations: out.stats.predicted_violations,
        deadline_misses: out.deadline_misses,
        achieved_ttft_p99_s: p99,
        meets_slo: p99 <= slo_s,
        tokens_per_s: out.tokens_per_s(),
    }
}

/// The model-guided ladder for the analytic backend's own policy,
/// scored by the same evaluator that ranks engine fallbacks.
pub fn model_guided_ladder(backend: &AnalyticBackend) -> ServeDegradeLadder {
    let controller = DegradationController::new(
        &lm_hardware::presets::single_gpu_a100(),
        backend.model(),
        &lm_models::Workload::motivation(),
        QuantCostParams::lm_offload_kernels(),
    );
    ServeDegradeLadder::model_guided(&controller, backend.policy())
}

/// Serve `n` seeded requests at `rps` in observe and enforcing mode.
pub fn run(seed: u64, rps: f64, n: usize) -> SloReport {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, backend.model());
    let ladder = Arc::new(model_guided_ladder(&backend));
    let ladder_rungs = ladder.rungs().len();

    // Derive the floor from the same plan both modes share.
    let base_plan = lm_serve::plan_admission(&backend, &ServeConfig::default())
        .unwrap_or_else(|e| panic!("admission planning failed: {e}"));
    let floor_ttft_s = backend.prefill_seconds(base_plan.slot_context, base_plan.slots)
        + base_plan.est_step_seconds;
    let slo_s = floor_ttft_s * SLO_FLOOR_HEADROOM;

    let observe_cfg = ServeConfig {
        tracer: Tracer::new(),
        slo: Some(SloPolicy::observe(slo_s)),
        ..ServeConfig::default()
    };
    let (plan, observe_out) = ServeSession::new(&backend)
        .config(observe_cfg)
        .run(traffic.clone())
        .unwrap_or_else(|e| panic!("observe-mode serving failed: {e}"))
        .into_continuous();

    let enforced_cfg = ServeConfig {
        tracer: Tracer::new(),
        slo: Some(SloPolicy::enforcing(slo_s)),
        ladder: Some(ladder),
        ..ServeConfig::default()
    };
    let (_, enforced_out) = ServeSession::new(&backend)
        .config(enforced_cfg)
        .run(traffic.clone())
        .unwrap_or_else(|e| panic!("enforcing-mode serving failed: {e}"))
        .into_continuous();

    let seq = ServeSession::new(&backend)
        .mode(ServeMode::Sequential)
        .run(traffic)
        .unwrap_or_else(|e| panic!("sequential baseline failed: {e}"))
        .outcome;

    let observe = mode_row("observe", slo_s, &observe_out);
    let enforced = mode_row("enforcing", slo_s, &enforced_out);
    let continuous_beats_sequential = enforced.tokens_per_s >= seq.tokens_per_s();
    let actuators_fired = enforced.shed + enforced.preemptions + enforced.degradations > 0;
    let slo_ok =
        !observe.meets_slo && enforced.meets_slo && actuators_fired && continuous_beats_sequential;

    SloReport {
        seed,
        rps,
        requests: n,
        plan,
        ttft_p99_slo_s: slo_s,
        floor_ttft_s,
        ladder_rungs,
        observe,
        enforced,
        sequential_tokens_per_s: seq.tokens_per_s(),
        continuous_beats_sequential,
        slo_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enforcement_meets_the_slo_observe_mode_violates() {
        let r = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(
            r.slo_ok,
            "observe p99 {:.1}s (meets={}), enforced p99 {:.1}s (meets={}), slo {:.1}s, \
             actuators shed={} preempt={} degrade={}, cont {:.2} vs seq {:.2} tok/s",
            r.observe.achieved_ttft_p99_s,
            r.observe.meets_slo,
            r.enforced.achieved_ttft_p99_s,
            r.enforced.meets_slo,
            r.ttft_p99_slo_s,
            r.enforced.shed,
            r.enforced.preemptions,
            r.enforced.degradations,
            r.enforced.tokens_per_s,
            r.sequential_tokens_per_s
        );
        assert!(
            r.observe.predicted_violations > 0,
            "the monitor must see the overload in observe mode"
        );
    }

    #[test]
    fn model_guided_ladder_has_usable_rungs() {
        let ladder = model_guided_ladder(&AnalyticBackend::opt_30b());
        for rung in ladder.rungs() {
            assert!(rung.step_time_factor > 0.0 && rung.step_time_factor < 1.0);
        }
    }

    #[test]
    fn report_is_deterministic() {
        let a = serde_json::to_string(&run(DEFAULT_SEED, DEFAULT_RPS, 16)).unwrap();
        let b = serde_json::to_string(&run(DEFAULT_SEED, DEFAULT_RPS, 16)).unwrap();
        assert_eq!(a, b);
    }
}
