//! Model-vs-measured drift: replay the analytic cost model's predicted
//! per-task busy time against a measured span timeline and report, per
//! paper task, the observed/predicted ratio.
//!
//! A ratio of 1.0 means the performance model (Eq. 2's `max(...)` terms)
//! matches what actually ran; against the event-driven simulator it must
//! be exactly 1.0 (the simulator *is* the model), which the golden test
//! in `tests/trace_observability.rs` pins. Against the real engine the
//! ratio quantifies model error per task — the quantity Fig. 6 of the
//! paper argues stays small.

use crate::span::Span;
use crate::task::TaskKind;
use serde::{Deserialize, Serialize};

/// Drift for one of the paper's six decode tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDrift {
    /// Paper task name (one of [`TaskKind::PAPER_TASKS`]).
    pub task: String,
    /// Model-predicted busy seconds.
    pub predicted_s: f64,
    /// Busy seconds summed from measured spans.
    pub observed_s: f64,
    /// `observed / predicted`; `None` when the model predicts zero
    /// (ratio undefined — `abs_error_s` still carries the miss).
    pub ratio: Option<f64>,
    /// `observed - predicted`, always defined.
    pub abs_error_s: f64,
}

/// Predicted-vs-observed drift across all six paper tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    pub tasks: Vec<TaskDrift>,
    /// Max over tasks of `|ratio - 1|` (tasks with a defined ratio).
    pub max_ratio_error: f64,
}

impl DriftReport {
    /// True when every task with a defined ratio is within `eps` of 1.0
    /// and no zero-predicted task observed more than `eps` seconds.
    pub fn ok_within(&self, eps: f64) -> bool {
        self.tasks.iter().all(|t| match t.ratio {
            Some(r) => (r - 1.0).abs() <= eps,
            None => t.observed_s.abs() <= eps,
        })
    }

    /// The row for `task`, if present.
    pub fn task(&self, task: &str) -> Option<&TaskDrift> {
        self.tasks.iter().find(|t| t.task == task)
    }
}

/// Build a drift report from per-kind predicted busy seconds and a
/// measured span timeline. Both sides are grouped by
/// [`TaskKind::paper_task`], merging the two compute halves, and every
/// paper task gets a row (zeros when neither side saw it).
pub fn drift_report(predicted: &[(TaskKind, f64)], spans: &[Span]) -> DriftReport {
    let mut pred = [0.0f64; 6];
    let mut obs = [0.0f64; 6];
    let paper_index = |kind: TaskKind| -> usize {
        TaskKind::PAPER_TASKS
            .iter()
            .position(|t| *t == kind.paper_task())
            .unwrap_or(0)
    };
    for &(kind, s) in predicted {
        pred[paper_index(kind)] += s;
    }
    for sp in spans {
        obs[paper_index(sp.kind)] += sp.duration();
    }

    let mut tasks = Vec::with_capacity(6);
    let mut max_ratio_error = 0.0f64;
    for (i, name) in TaskKind::PAPER_TASKS.iter().enumerate() {
        let ratio = if pred[i] > 0.0 {
            let r = obs[i] / pred[i];
            max_ratio_error = max_ratio_error.max((r - 1.0).abs());
            Some(r)
        } else {
            None
        };
        tasks.push(TaskDrift {
            task: (*name).to_string(),
            predicted_s: pred[i],
            observed_s: obs[i],
            ratio,
            abs_error_s: obs[i] - pred[i],
        });
    }
    DriftReport {
        tasks,
        max_ratio_error,
    }
}

/// Drift for one serve-path metric (TTFT, queue depth, occupancy …) —
/// the serving analogue of [`TaskDrift`], keyed by metric name instead
/// of paper task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricDrift {
    /// Metric name (e.g. `ttft_mean_s`, `slot_occupancy_mean`).
    pub metric: String,
    /// Model-predicted value (TtftModel / plan_admission).
    pub predicted: f64,
    /// Value observed by the scheduler's boundary instrumentation.
    pub observed: f64,
    /// `observed / predicted`; `None` when the prediction is zero.
    pub ratio: Option<f64>,
    /// `observed - predicted`, always defined.
    pub abs_error: f64,
}

/// Predicted-vs-observed drift across the serve path's audited metrics
/// (DESIGN.md §13). Unlike [`DriftReport`] the tolerance is per-run and
/// documented, not exactly 1.0: the TTFT predictor is a queueing
/// estimate, not a replay of the scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeDriftReport {
    pub metrics: Vec<MetricDrift>,
    /// Max over metrics of `|ratio - 1|` (metrics with a defined ratio).
    pub max_ratio_error: f64,
}

impl ServeDriftReport {
    /// True when every metric with a defined ratio is within `eps` of
    /// 1.0 and no zero-predicted metric observed more than `eps`.
    pub fn ok_within(&self, eps: f64) -> bool {
        self.metrics.iter().all(|m| match m.ratio {
            Some(r) => (r - 1.0).abs() <= eps,
            None => m.observed.abs() <= eps,
        })
    }

    /// The row for `metric`, if present.
    pub fn metric(&self, metric: &str) -> Option<&MetricDrift> {
        self.metrics.iter().find(|m| m.metric == metric)
    }
}

/// Build a serve drift report from `(metric, predicted, observed)`
/// rows. Rows keep their given order; ratios are `observed/predicted`
/// where the prediction is nonzero.
pub fn serve_drift_report(rows: &[(&str, f64, f64)]) -> ServeDriftReport {
    let mut metrics = Vec::with_capacity(rows.len());
    let mut max_ratio_error = 0.0f64;
    for &(name, predicted, observed) in rows {
        let ratio = if predicted != 0.0 {
            let r = observed / predicted;
            max_ratio_error = max_ratio_error.max((r - 1.0).abs());
            Some(r)
        } else {
            None
        };
        metrics.push(MetricDrift {
            metric: name.to_string(),
            predicted,
            observed,
            ratio,
            abs_error: observed - predicted,
        });
    }
    ServeDriftReport {
        metrics,
        max_ratio_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span {
            kind,
            step: 0,
            layer: 0,
            batch: None,
            start,
            end,
        }
    }

    #[test]
    fn perfect_match_gives_unit_ratios() {
        let predicted = vec![(TaskKind::LoadWeight, 2.0), (TaskKind::ComputeGpu, 1.0)];
        let spans = vec![
            span(TaskKind::LoadWeight, 0.0, 1.5),
            span(TaskKind::LoadWeight, 1.5, 2.0),
            span(TaskKind::ComputeGpu, 2.0, 3.0),
        ];
        let r = drift_report(&predicted, &spans);
        assert_eq!(r.tasks.len(), 6, "every paper task gets a row");
        assert_eq!(r.task("load_weight").unwrap().ratio, Some(1.0));
        assert_eq!(r.task("compute").unwrap().ratio, Some(1.0));
        assert!(r.ok_within(1e-9));
        assert_eq!(r.max_ratio_error, 0.0);
    }

    #[test]
    fn compute_halves_merge() {
        let predicted = vec![(TaskKind::ComputeCpu, 1.0), (TaskKind::ComputeGpu, 3.0)];
        let spans = vec![
            span(TaskKind::ComputeCpu, 0.0, 1.0),
            span(TaskKind::ComputeGpu, 1.0, 4.0),
        ];
        let r = drift_report(&predicted, &spans);
        let c = r.task("compute").unwrap();
        assert_eq!(c.predicted_s, 4.0);
        assert_eq!(c.observed_s, 4.0);
        assert_eq!(c.ratio, Some(1.0));
    }

    #[test]
    fn drift_is_reported() {
        let predicted = vec![(TaskKind::LoadCache, 1.0)];
        let spans = vec![span(TaskKind::LoadCache, 0.0, 1.3)];
        let r = drift_report(&predicted, &spans);
        let t = r.task("load_cache").unwrap();
        assert!((t.ratio.unwrap() - 1.3).abs() < 1e-9);
        assert!((t.abs_error_s - 0.3).abs() < 1e-9);
        assert!((r.max_ratio_error - 0.3).abs() < 1e-9);
        assert!(!r.ok_within(0.1));
        assert!(r.ok_within(0.5));
    }

    #[test]
    fn zero_predicted_with_observation_fails_ok_within() {
        let spans = vec![span(TaskKind::StoreCache, 0.0, 0.5)];
        let r = drift_report(&[], &spans);
        let t = r.task("store_cache").unwrap();
        assert_eq!(t.ratio, None);
        assert_eq!(t.abs_error_s, 0.5);
        assert!(!r.ok_within(0.1));
        // Tasks absent on both sides stay within any epsilon.
        assert_eq!(r.task("load_weight").unwrap().observed_s, 0.0);
    }

    #[test]
    fn report_serde_round_trip() {
        let r = drift_report(
            &[(TaskKind::LoadWeight, 1.0)],
            &[span(TaskKind::LoadWeight, 0.0, 1.1)],
        );
        let v = serde::Serialize::serialize(&r);
        let back: DriftReport = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn serve_drift_ratios_and_tolerance() {
        let r = serve_drift_report(&[
            ("ttft_mean_s", 0.5, 0.6),
            ("slot_occupancy_mean", 0.8, 0.8),
            ("queue_depth_mean", 0.0, 0.0),
        ]);
        assert_eq!(r.metrics.len(), 3);
        let t = r.metric("ttft_mean_s").unwrap();
        assert!((t.ratio.unwrap() - 1.2).abs() < 1e-9);
        assert!((t.abs_error - 0.1).abs() < 1e-9);
        assert_eq!(r.metric("slot_occupancy_mean").unwrap().ratio, Some(1.0));
        assert_eq!(r.metric("queue_depth_mean").unwrap().ratio, None);
        assert!((r.max_ratio_error - 0.2).abs() < 1e-9);
        assert!(r.ok_within(0.25));
        assert!(!r.ok_within(0.1));
    }

    #[test]
    fn serve_drift_zero_predicted_with_observation_fails() {
        let r = serve_drift_report(&[("queue_depth_mean", 0.0, 2.0)]);
        assert!(!r.ok_within(0.5));
        assert!(r.ok_within(2.5), "abs slack covers the miss");
        let v = serde::Serialize::serialize(&r);
        let back: ServeDriftReport = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, r);
    }
}
