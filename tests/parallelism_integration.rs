//! Cross-crate integration of the §4 pipeline: controller → Algorithm 3
//! plan → real executor, plus the LLC contention model it is meant to
//! relieve.

#![allow(clippy::unwrap_used)]
use lm_cachesim::{run_contention, ContentionConfig, ThreadSetting};
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::derive_plan;
use lm_parallelism::{analyze, attention_graph, bundle_small_ops, burn, Executor};
use lm_sim::Policy;

#[test]
fn controller_plans_are_consistent_across_models() {
    // The plan's invariants must hold for every evaluated model: 12
    // total inter-op (7-wide graph + 5 transfers), thread budget
    // respected, transfers each granted >= 1 thread.
    let platform = hw::single_gpu_a100();
    for model in [models::opt_30b(), models::opt_66b(), models::llama_65b()] {
        let w = Workload::parallelism_study();
        let out = derive_plan(&platform, &model, &w, &Policy::flexgen_default());
        assert_eq!(out.plan.inter_op_total, 12, "{}", model.name);
        let used = out.plan.inter_op_compute * out.plan.intra_op_compute
            + out.plan.transfer_threads.iter().sum::<u32>();
        assert!(
            used <= platform.cpu.total_threads(),
            "{}: {used} threads",
            model.name
        );
        assert!(out.plan.transfer_threads.iter().all(|&t| t >= 1));
        assert!(out.plan.est_step_time <= out.default_step_time);
    }
}

#[test]
fn plan_executes_on_real_cores_with_speedup() {
    // Execute the Fig. 6 graph with the plan's shape on this machine and
    // verify the tuned configuration beats serial execution.
    let graph = attention_graph(32, 64, 256, 7);
    let analysis = analyze(&graph).unwrap();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let inter = analysis.max_concurrency().min(cores).max(2);

    let work = |u: usize, threads: usize| burn(graph.nodes[u].flops * 1e-3, threads);
    // Best-of-N: the minimum is robust to preemption by concurrently
    // running test binaries, which otherwise flakes this comparison on
    // small machines.
    let best_of = |inter_op: usize| {
        (0..3)
            .map(|_| {
                let t0 = std::time::Instant::now();
                Executor::new(inter_op, 1).run(&graph, work);
                t0.elapsed()
            })
            .min()
            .expect("nonzero trials")
    };
    let t_serial = best_of(1);
    let t_tuned = best_of(inter);
    if cores >= 2 {
        assert!(
            t_tuned.as_secs_f64() < t_serial.as_secs_f64() * 1.05,
            "tuned {t_tuned:?} vs serial {t_serial:?} on {cores} cores"
        );
    } else {
        // Single core: only bounded scheduling overhead can be asserted.
        assert!(t_tuned.as_secs_f64() < t_serial.as_secs_f64() * 2.0);
    }
}

#[test]
fn bundled_graph_executes_identically() {
    // Bundling must not change which work runs — total burned FLOPs are
    // conserved and the bundled graph still executes cleanly.
    let graph = attention_graph(16, 32, 128, 4);
    let bundled = bundle_small_ops(&graph, 1e7);
    let order = Executor::new(4, 2).run(&bundled.graph, |_u, _t| {});
    assert_eq!(order.len(), bundled.graph.len());
    assert!((bundled.graph.total_flops() - graph.total_flops()).abs() < 1e-3);
}

#[test]
fn thread_setting_reduces_cache_misses_and_step_time_together() {
    // The two §5.4 observations are one mechanism: the tuned setting
    // reduces both LLC misses (Table 5) and modelled step time (Fig. 8).
    let cache_cfg = ContentionConfig::scaled_default();
    let default = run_contention(&cache_cfg, ThreadSetting::pytorch_default());
    let tuned = run_contention(&cache_cfg, ThreadSetting::lm_offload());
    assert!(tuned.stats.misses() < default.stats.misses());

    let platform = hw::single_gpu_a100();
    let out = derive_plan(
        &platform,
        &models::opt_30b(),
        &Workload::parallelism_study(),
        &Policy::flexgen_default(),
    );
    assert!(out.plan.est_step_time < out.default_step_time);
}

#[test]
fn plan_shape_matches_paper_and_cachesim_setting() {
    // §5.4 reports 12/16; the cachesim experiment hard-codes the same
    // setting — keep them in sync.
    let platform = hw::single_gpu_a100();
    let out = derive_plan(
        &platform,
        &models::opt_30b(),
        &Workload::parallelism_study(),
        &Policy::flexgen_default(),
    );
    let setting = ThreadSetting::lm_offload();
    assert_eq!(setting.inter_op, out.plan.inter_op_total);
    // Intra-op: the paper reports 16; our search lands at the knee
    // (8-16 on this scaling model).
    assert!((4..=16).contains(&out.plan.intra_op_compute));
}
