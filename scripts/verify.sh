#!/usr/bin/env bash
# Full verification gate: release build, workspace tests, lint-clean.
# Run from anywhere; operates on the repo the script lives in.
set -euo pipefail
cd "$(dirname "$0")/.."

# Keep results/ free of scratch files even when a gate fails mid-run.
trap 'rm -f results/chaos.json.first results/verify.json.first' EXIT

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -q -- -D warnings
else
    echo "==> clippy not installed; skipping lint"
fi

echo "==> repro analyze (static-analysis gate)"
cargo run --release -q -p lm-bench --bin repro -- analyze
[ -s results/analyze.json ] \
    || { echo "verify: results/analyze.json missing or empty" >&2; exit 1; }
grep -q '"diagnostics"' results/analyze.json \
    || { echo "verify: results/analyze.json has no diagnostics array" >&2; exit 1; }
grep -q '"opt-30b/serve/default-paging"' results/analyze.json \
    || { echo "verify: the LMA28x paging lint row is missing from results/analyze.json" >&2; exit 1; }
grep -q '"verify/lma29x/quick-sweep"' results/analyze.json \
    || { echo "verify: the LMA29x verification lint row is missing from results/analyze.json" >&2; exit 1; }
grep -q '"opt-30b/serve/default-async"' results/analyze.json \
    || { echo "verify: the LMA30x async lint row is missing from results/analyze.json" >&2; exit 1; }

# Exhaustive bounded verification (DESIGN.md §15): planner-space sweep vs
# executable ground truth, seeded-mutation self-check, preemption-bounded
# protocol model checking. VERIFY_SWEEP=full widens the lattice.
echo "==> repro verify --sweep ${VERIFY_SWEEP:-quick} (bounded verification gate)"
cargo run --release -q -p lm-bench --bin repro -- verify --sweep "${VERIFY_SWEEP:-quick}"
[ -s results/verify.json ] \
    || { echo "verify: results/verify.json missing or empty" >&2; exit 1; }
grep -q '"verify_ok": true' results/verify.json \
    || { echo "verify: a bounded-verification gate failed" >&2; exit 1; }
grep -q '"mutation_caught": true' results/verify.json \
    || { echo "verify: the seeded over-grant mutation was not caught as LMA291" >&2; exit 1; }
cp results/verify.json results/verify.json.first
cargo run --release -q -p lm-bench --bin repro -- verify --sweep "${VERIFY_SWEEP:-quick}"
cmp -s results/verify.json results/verify.json.first \
    || { echo "verify: results/verify.json is not byte-identical across runs" >&2; exit 1; }
rm -f results/verify.json.first  # the EXIT trap also covers failure paths

if [ "${LOOM:-0}" = "1" ]; then
    echo "==> loom model checking (LOOM=1)"
    cargo test -q -p lm-parallelism --features loom --test loom_executor
    cargo test -q -p lm-engine --features loom --test loom_pools
fi

if [ "${MIRI:-0}" = "1" ]; then
    if cargo miri --version >/dev/null 2>&1; then
        echo "==> cargo miri test -p lm-parallelism executor (MIRI=1)"
        MIRIFLAGS="${MIRIFLAGS:--Zmiri-disable-isolation}" \
            cargo miri test -p lm-parallelism executor
    else
        echo "==> MIRI=1 requested but cargo-miri is not installed" >&2
        exit 1
    fi
fi

echo "==> repro serve --rps 4 --requests 32 --seed 7 --shared-prefix (serving gate)"
cargo run --release -q -p lm-bench --bin repro -- serve --rps 4 --requests 32 --seed 7 --shared-prefix
[ -s results/serve.json ] \
    || { echo "verify: results/serve.json missing or empty" >&2; exit 1; }
grep -q '"dominance_ok": true' results/serve.json \
    || { echo "verify: continuous batching did not dominate the baselines" >&2; exit 1; }
grep -q '"paged_zero_rejections": true' results/serve.json \
    || { echo "verify: the paged planner rejected requests at the default seed" >&2; exit 1; }
grep -q '"superlinear_ok": true' results/serve.json \
    || { echo "verify: prefix sharing did not beat the unshared control" >&2; exit 1; }

echo "==> repro chaos --seed 7 --storm default (resilience gate)"
cargo run --release -q -p lm-bench --bin repro -- chaos --seed 7 --storm default
[ -s results/chaos.json ] \
    || { echo "verify: results/chaos.json missing or empty" >&2; exit 1; }
grep -q '"invariants_ok": true' results/chaos.json \
    || { echo "verify: a chaos invariant was violated" >&2; exit 1; }
cp results/chaos.json results/chaos.json.first
cargo run --release -q -p lm-bench --bin repro -- chaos --seed 7 --storm default
cmp -s results/chaos.json results/chaos.json.first \
    || { echo "verify: results/chaos.json is not byte-identical across runs" >&2; exit 1; }
rm -f results/chaos.json.first  # the EXIT trap also covers failure paths

echo "==> repro slo --seed 7 (SLO enforcement gate)"
cargo run --release -q -p lm-bench --bin repro -- slo --seed 7
[ -s results/slo.json ] \
    || { echo "verify: results/slo.json missing or empty" >&2; exit 1; }
grep -q '"slo_ok": true' results/slo.json \
    || { echo "verify: SLO enforcement gate failed" >&2; exit 1; }

echo "==> repro trace --tokens 4 (observability gate)"
cargo run --release -q -p lm-bench --bin repro -- trace --tokens 4
for f in results/trace.json results/trace_drift.json; do
    [ -s "$f" ] || { echo "verify: $f missing or empty" >&2; exit 1; }
done
grep -q '"traceEvents"' results/trace.json \
    || { echo "verify: results/trace.json is not a Perfetto trace" >&2; exit 1; }
grep -q '"max_ratio_error"' results/trace_drift.json \
    || { echo "verify: results/trace_drift.json has no drift report" >&2; exit 1; }

echo "==> repro obs --seed 7 (serve observability gate)"
cargo run --release -q -p lm-bench --bin repro -- obs --seed 7
[ -s results/obs.json ] \
    || { echo "verify: results/obs.json missing or empty" >&2; exit 1; }
grep -q '"drift_ok": true' results/obs.json \
    || { echo "verify: serve drift audit exceeded its documented tolerance" >&2; exit 1; }
grep -q '"obs_ok": true' results/obs.json \
    || { echo "verify: an observability gate (exposition/flight/lints) failed" >&2; exit 1; }
[ -s results/serve_timeline.json ] \
    || { echo "verify: results/serve_timeline.json missing or empty" >&2; exit 1; }
grep -q '"traceEvents"' results/serve_timeline.json \
    || { echo "verify: results/serve_timeline.json is not a Perfetto trace" >&2; exit 1; }

if [ "${BENCH:-1}" = "0" ]; then
    echo "==> bench lane skipped (BENCH=0)"
else
    echo "==> repro bench (perf trajectory: BENCH_kernels.json / BENCH_serve.json)"
    cargo run --release -q -p lm-bench --bin repro -- bench
    for f in BENCH_kernels.json BENCH_serve.json; do
        [ -s "$f" ] || { echo "verify: $f missing or empty" >&2; exit 1; }
        for key in '"bench"' '"metric"' '"value"' '"unit"'; do
            grep -q "$key" "$f" \
                || { echo "verify: $f lacks the $key schema field" >&2; exit 1; }
        done
    done
fi

# Real-time serving lane (DESIGN.md §16): the gates (transparency, zero
# leaks, total resolution, an exercised disconnect) are wall-independent;
# the wall-clock TTFT/throughput in results/async.json and the
# serve_async rows of BENCH_serve.json are recorded but deliberately NOT
# byte-compared across runs.
if [ "${ASYNC:-1}" = "0" ]; then
    echo "==> async lane skipped (ASYNC=0)"
else
    echo "==> repro async --seed 7 (real-time serving gate)"
    cargo run --release -q -p lm-bench --bin repro -- async --seed 7
    [ -s results/async.json ] \
        || { echo "verify: results/async.json missing or empty" >&2; exit 1; }
    grep -q '"transparency_ok": true' results/async.json \
        || { echo "verify: the async path is not output-transparent" >&2; exit 1; }
    grep -q '"zero_leak_ok": true' results/async.json \
        || { echo "verify: the async path leaked KV on disconnect" >&2; exit 1; }
    grep -q '"async_ok": true' results/async.json \
        || { echo "verify: an async serving gate failed" >&2; exit 1; }
fi

echo "verify: OK"
