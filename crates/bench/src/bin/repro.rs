//! `repro` — regenerate every table and figure of the LM-Offload paper.
//!
//! Usage:
//!   repro <experiment> [--fast] [--fault-seed N] [--tokens N]
//!                      [--rps R] [--requests N] [--seed S]
//!                      [--storm <profile>] [--shared-prefix]
//!                      [--sweep quick|full]
//!   repro all [--fast]
//!
//! Experiments: analyze table1 table3 table4 table5 fig3 fig4 fig5 fig7
//! fig8 fig9 whatif faults summary trace serve chaos slo obs bench
//! verify async.
//! `analyze` runs
//! the `lm-analyze` static linter over the shipped presets (plus the
//! default serving plan and SLO policy) and exits non-zero on any
//! `Error`-level diagnostic. `serve` replays a seeded traffic trace
//! through the continuous-batching scheduler (paged and slab KV modes)
//! and both baselines (`--rps`, `--requests`, `--seed`) and exits
//! non-zero unless continuous batching dominates and the paged
//! scheduler rejects nothing; `--shared-prefix` adds the cross-request
//! prefix-sharing study, which must beat its unshared control
//! super-linearly. `chaos` drives the scheduler under a
//! seeded fault storm (`--seed`, `--storm default|pool-squeeze|`
//! `disconnects|crashes|blackout`) and exits non-zero unless every
//! resilience invariant holds (zero leaked KV leases and pages, total
//! resolution,
//! conservation, solo-run transparency, byte-identical replay). `slo`
//! serves the trace in observe vs enforcing mode under a TTFT objective
//! and exits non-zero unless enforcement meets the SLO that observe mode
//! violates. `--fast` restricts Table-3-derived sweeps to two generation
//! lengths; `--fault-seed N` sets the deterministic fault plan of the
//! `faults` experiment; `--tokens N` sets the token count of the `trace`
//! experiment. JSON results are written to `results/<experiment>.json`;
//! `trace` additionally writes the engine timeline as Chrome/Perfetto
//! trace JSON to `results/trace.json` (load it at
//! https://ui.perfetto.dev) and the model-vs-measured drift report to
//! `results/trace_drift.json`. `obs` audits the serve path's
//! observability surfaces (DESIGN.md §13) — drift ratios vs documented
//! tolerances, OpenMetrics round-trip, a flight-recorder post-mortem
//! from an injected overload, `LMA27x` lints — writing `results/obs.json`
//! plus the Perfetto serve timeline to `results/serve_timeline.json`,
//! and exits non-zero unless every gate holds. `bench` regenerates the
//! tracked perf trajectory (`BENCH_kernels.json` / `BENCH_serve.json`
//! at the repo root, schema `{bench, metric, value, unit}`). `verify`
//! runs the exhaustive bounded verification lane (DESIGN.md §15): the
//! planner-space sweep against executable ground truth (`--sweep
//! quick|full` picks the lattice), a seeded over-grant mutation that
//! must be caught as `LMA291`, preemption-bounded model checking of the
//! paged-KV and scheduler protocols, the `LMA29x` lints over the
//! assembled probe, and the zero-cost-off throughput comparison —
//! writing deterministic `results/verify.json` and exiting non-zero
//! unless every gate holds. `async` drives the real-time serving lane
//! (DESIGN.md §16): `ServeSession::run_async` on the miniature engine
//! with tokio streaming clients and mid-stream disconnects — output
//! transparency, zero KV leaks and total resolution are gated;
//! wall-clock TTFT/throughput are recorded into `results/async.json`
//! and merged as `serve_async` rows into `BENCH_serve.json` but never
//! byte-compared.

use lm_bench::experiments::*;
use lm_bench::table::{f, render};
use lm_offload::{whatif_sweep, Axis};
use serde::Serialize;
use std::fs;
use std::path::Path;

fn save<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.json"));
        match serde_json::to_string_pretty(value) {
            Ok(json) => {
                if let Err(e) = fs::write(&path, json) {
                    eprintln!("warning: could not write {}: {e}", path.display());
                }
            }
            Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
        }
    }
}

fn run_table1() {
    println!("\n== Table 1: I/O traffic per generated token (OPT-30B, s=64, n=128, bls=640) ==");
    let rows = table1::run();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.scenario.clone(),
                r.direction.clone(),
                r.tensor.clone(),
                f(r.ours_gib, 2),
                r.paper_gib.map(|p| f(p, 2)).unwrap_or_default(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["scenario", "direction", "tensor", "ours (GiB)", "paper (GiB)"],
            &rendered
        )
    );
    save("table1", &rows);
}

fn run_fig3() {
    println!("\n== Figure 3: offloading x quantization strategies (OPT-30B motivation) ==");
    let rows = fig3::run();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| vec![r.name.clone(), format!("{}%", r.wg), f(r.tput, 1)])
        .collect();
    println!("{}", render(&["strategy", "wg", "tokens/s"], &rendered));
    save("fig3", &rows);
}

fn run_fig4() {
    println!("\n== Figure 4: per-token time breakdown (quant / dequant / other) ==");
    let rows = fig3::run_breakdown();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                f(r.quant, 3),
                f(r.dequant, 3),
                f(r.other, 3),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["strategy", "quant (s)", "dequant (s)", "other (s)"], &rendered)
    );
    save("fig4", &rows);
}

fn run_fig5() {
    println!("\n== Figure 5: thread-level parallelism sweeps (OPT-30B, n=8) ==");
    let fig = fig5::run();
    for (name, series) in [("intra-op", &fig.intra_sweep), ("inter-op", &fig.inter_sweep)] {
        let rendered: Vec<Vec<String>> = series
            .iter()
            .map(|p| {
                vec![
                    p.threads.to_string(),
                    f(p.step_time * 1e3, 2),
                    f(p.relative_tput, 3),
                ]
            })
            .collect();
        println!("-- {name} sweep --");
        println!(
            "{}",
            render(&["threads", "step (ms)", "rel tput"], &rendered)
        );
    }
    save("fig5", &fig);
}

fn run_table3(lens: &[u64]) {
    println!("\n== Table 3: FlexGen / ZeRO-Inference / LM-Offload ==");
    let rows = table3::run(lens);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gen_len.to_string(),
                r.framework.clone(),
                r.bsz.to_string(),
                r.wg.to_string(),
                r.cg.to_string(),
                r.hg.to_string(),
                format!("{}b/{}b", r.weight_bits, r.kv_bits),
                f(r.mem_gib, 0),
                f(r.tput, 1),
                f(r.norm_tput, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["model", "len", "framework", "bsz", "wg", "cg", "hg", "w/kv bits", "mem", "tput", "norm"],
            &rendered
        )
    );
    save("table3", &rows);

    let s = summary::summarise(&rows);
    print_summary(&s);
    save("summary", &s);
}

fn print_summary(s: &summary::Summary) {
    println!("\n== §5.2 headline speedups (paper: vs FlexGen up to 2.95x / avg 2.34x; vs ZeRO up to 2.88x / avg 1.57x) ==");
    if let Some(fg) = s.vs_flexgen {
        println!("vs FlexGen:        up to {:.2}x ({:.2}x on average)", fg.max, fg.mean);
    }
    if let Some(z) = s.vs_zero {
        println!("vs ZeRO-Inference: up to {:.2}x ({:.2}x on average)", z.max, z.mean);
    }
    if s.baseline_wins.is_empty() {
        println!("baseline wins: none");
    } else {
        println!("baseline wins: {}", s.baseline_wins.join(", "));
    }
}

fn run_table4() {
    println!("\n== Table 4: evaluation platforms ==");
    let rows = table4::run();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.platform.clone(),
                format!("{} ({} cores, {:.0} GiB)", r.cpu, r.cores, r.host_mem_gib),
                format!("{}x {} ({:.0} GiB)", r.num_gpus, r.gpu, r.gpu_mem_gib),
                format!("{} ({:.0} GB/s bidir)", r.interconnect, r.bidir_bw_gbps),
            ]
        })
        .collect();
    println!("{}", render(&["platform", "cpu", "gpu", "interconnect"], &rendered));
    save("table4", &rows);
}

fn run_table5() {
    println!("\n== Table 5: LLC misses under default vs controlled threading ==");
    let t = table5::run();
    let rendered: Vec<Vec<String>> = t
        .rows
        .iter()
        .map(|r| {
            vec![
                r.setting.clone(),
                r.load_misses_sim.to_string(),
                r.store_misses_sim.to_string(),
                format!("{:.1}B", r.load_misses_scaled as f64 / 1e9),
                format!("{:.1}B", r.store_misses_scaled as f64 / 1e9),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["setting", "load miss (sim)", "store miss (sim)", "load (scaled)", "store (scaled)"],
            &rendered
        )
    );
    println!(
        "reduction: loads {:.0}% stores {:.0}% (paper: ~38-40%, 10B->6B / 19B->12B)",
        t.load_reduction_pct, t.store_reduction_pct
    );
    save("table5", &t);
}

fn run_fig7(lens: &[u64]) {
    println!("\n== Figure 7: effective quantization (parallelism control disabled) ==");
    let rows = fig7::run(lens);
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.gen_len.to_string(),
                f(r.flexgen_tput, 1),
                f(r.lm_offload_noctl_tput, 1),
                format!("{:+.0}%", r.gain_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["model", "len", "FlexGen", "LM-Offload (no ctl)", "gain"],
            &rendered
        )
    );
    save("fig7", &rows);
}

fn run_fig8() {
    println!("\n== Figure 8: thread-level parallelism control (OPT-30B, n=8) ==");
    let fig = fig8::run();
    let rendered: Vec<Vec<String>> = fig
        .tasks
        .iter()
        .map(|t| {
            vec![
                t.task.clone(),
                f(t.default_secs, 2),
                f(t.controlled_secs, 2),
                format!("-{:.0}%", t.reduction_pct),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["task", "default (s)", "controlled (s)", "reduction"], &rendered)
    );
    println!(
        "end-to-end: {:.2}s -> {:.2}s (-{:.0}%; paper: -38%)",
        fig.default_end_to_end, fig.controlled_end_to_end, fig.end_to_end_reduction_pct
    );
    println!(
        "plan: inter-op {} (compute {} + 5 transfers), intra-op {} (paper: 12 / 16)",
        fig.plan.inter_op_total, fig.plan.inter_op_compute, fig.plan.intra_op_compute
    );
    println!("\n-- decode timeline (first step, first layers; controlled threading) --");
    println!("{}", fig8::gantt_first_step(80));
    save("fig8", &fig);
}

fn run_fig9() {
    println!("\n== Figure 9: multi-GPU weak scaling (pipeline parallelism) ==");
    let rows = fig9::run();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.num_gpus.to_string(),
                f(r.flexgen_tput, 1),
                f(r.lm_offload_tput, 1),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["model", "GPUs", "FlexGen", "LM-Offload", "speedup"], &rendered)
    );
    save("fig9", &rows);
}

fn run_whatif() {
    println!("\n== What-if sensitivity (OPT-66B, s=64, n=16; policy re-searched per point) ==");
    let platform = lm_hardware::presets::single_gpu_a100();
    let model = lm_models::presets::opt_66b();
    let factors = [0.5, 1.0, 2.0, 4.0];
    let mut curves = Vec::new();
    for axis in Axis::ALL {
        let c = whatif_sweep(axis, &platform, &model, 64, 16, &factors);
        let rendered: Vec<Vec<String>> = c
            .points
            .iter()
            .map(|pt| {
                vec![
                    format!("{:.1}x", pt.factor),
                    f(pt.throughput, 1),
                    format!("{}%", pt.wg_pct),
                    format!("{}b/{}b", pt.weight_bits, pt.kv_bits),
                    if pt.attention_on_cpu { "CPU" } else { "GPU" }.into(),
                    pt.block_size.to_string(),
                ]
            })
            .collect();
        println!("-- {} --", c.axis);
        println!(
            "{}",
            render(&["scale", "tok/s", "wg", "w/kv", "attn", "block"], &rendered)
        );
        curves.push(c);
    }
    save("whatif", &curves);
}

fn run_analyze() {
    println!("\n== Static analysis: lm-analyze lints over the shipped presets ==");
    let rows = analyze::run();
    let rendered: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.preset.clone(),
                format!("{}/{}", r.inter_op_total, r.intra_op_compute),
                r.errors.to_string(),
                r.warnings.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["preset", "inter/intra", "errors", "warnings"], &rendered)
    );
    let mut all_clean = true;
    for r in &rows {
        for d in &r.diagnostics {
            println!("  {}: {d}", r.preset);
        }
        all_clean &= r.errors == 0;
    }
    save("analyze", &rows);
    if all_clean {
        println!("all shipped presets are clean (zero error diagnostics)");
    } else {
        eprintln!("error: a shipped preset has error-level diagnostics");
        std::process::exit(1);
    }
}

fn run_faults(fault_seed: u64) {
    println!("\n== Fault injection: retry, backpressure, model-guided degradation (seed {fault_seed}) ==");
    let r = faults::run(fault_seed);
    println!(
        "checkpoint: {} layers, loaded={} (disk faults {}, torn {}, retries {}, recovered {})",
        r.checkpoint.layers,
        r.checkpoint.loaded,
        r.checkpoint.disk_io_faults,
        r.checkpoint.torn_reads,
        r.checkpoint.retries,
        r.checkpoint.retry_successes
    );
    println!(
        "degradation: completed={} ({} tokens/row, {} policy switch(es) -> {}-bit weights; {} pressure spikes, {} prefetch drops)",
        r.degradation.completed,
        r.degradation.tokens_per_row,
        r.degradation.policy_switches,
        r.degradation.final_weight_bits,
        r.degradation.pool_pressure_spikes,
        r.degradation.prefetch_drops
    );
    println!(
        "simulator: decode {:.2}s -> {:.2}s ({:.2}x) under {} degraded link windows, {} stalls (+{}ms)",
        r.sim.clean_decode_s,
        r.sim.faulted_decode_s,
        r.sim.slowdown,
        r.sim.link_degrades,
        r.sim.transfer_stalls,
        r.sim.stall_ms_total
    );
    save("faults", &r);
}

fn run_trace(tokens: u64) {
    println!("\n== Tracing & drift: lm-trace spans, Perfetto export, model-vs-measured ratios ({tokens} tokens) ==");
    let (r, perfetto_json) = trace::run(tokens);
    println!(
        "sim: {} spans over {} decode steps ({:.3}s simulated decode)",
        r.sim.spans, r.sim.steps, r.sim.decode_s
    );
    let rendered: Vec<Vec<String>> = r
        .sim
        .drift
        .tasks
        .iter()
        .map(|t| {
            vec![
                t.task.clone(),
                f(t.predicted_s, 4),
                f(t.observed_s, 4),
                t.ratio.map(|x| f(x, 4)).unwrap_or_else(|| "-".into()),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["task", "predicted (s)", "observed (s)", "obs/pred"], &rendered)
    );
    println!(
        "max ratio error: {:.2e} (simulator replays the model: must be ~0)",
        r.sim.drift.max_ratio_error
    );
    println!(
        "engine: {} tokens, {} task spans + {} scopes, load_weight {:.4}s / compute {:.4}s busy",
        r.engine.tokens_generated,
        r.engine.spans,
        r.engine.scopes,
        r.engine.load_weight_s,
        r.engine.compute_s
    );
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join("trace.json");
        match fs::write(&path, &perfetto_json) {
            Ok(()) => println!(
                "wrote {} ({} events; open at https://ui.perfetto.dev)",
                path.display(),
                r.engine.perfetto_events
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    save("trace_drift", &r);
}

fn serve_mode_table(modes: &[serve::ModeRow]) -> String {
    let rendered: Vec<Vec<String>> = modes
        .iter()
        .map(|m| {
            vec![
                m.mode.clone(),
                m.kv_mode.clone(),
                format!("{}/{}", m.completed, m.completed + m.rejected),
                f(m.sim_seconds, 1),
                f(m.tokens_per_s, 2),
                f(m.ttft.p50_s, 1),
                f(m.ttft.p95_s, 1),
                f(m.latency.p95_s, 1),
                m.padding_tokens.to_string(),
                m.kv_pages_peak.to_string(),
                m.shared_tokens.to_string(),
                m.deadline_misses.to_string(),
            ]
        })
        .collect();
    render(
        &["mode", "kv", "done", "sim (s)", "tok/s", "ttft p50", "p95", "lat p95", "pad", "pages", "shared", "miss"],
        &rendered,
    )
}

fn run_serve(seed: u64, rps: f64, requests: usize, shared_prefix: bool) {
    println!(
        "\n== Serving: continuous batching vs baselines (OPT-30B, {requests} requests @ {rps} rps, seed {seed}) =="
    );
    let mut r = serve::run(seed, rps, requests);
    println!(
        "plan: {} slots x {} ctx, {:.1} MiB/slot, pool {:.1} MiB = {} pages x {} tok, kahn width {}, est {:.1} tok/s",
        r.plan.slots,
        r.plan.slot_context,
        r.plan.kv_bytes_per_slot as f64 / (1 << 20) as f64,
        r.plan.kv_pool_bytes as f64 / (1 << 20) as f64,
        r.plan.pages_total,
        r.plan.page_tokens,
        r.plan.kahn_width,
        r.plan.est_tokens_per_s
    );
    println!("{}", serve_mode_table(&r.modes));
    println!(
        "speedup: {:.2}x vs sequential (floor {:.1}x), {:.2}x vs static; paged rejections: {}",
        r.speedup_vs_sequential,
        serve::MIN_SPEEDUP_VS_SEQUENTIAL,
        r.speedup_vs_static,
        r.modes[0].rejected
    );
    if shared_prefix {
        let sp = serve::run_shared_prefix(seed, rps, requests, serve::DEFAULT_PREFIX_LEN);
        println!(
            "\n-- shared-prefix study: {} requests sharing a {}-token system prompt --",
            sp.requests, sp.prefix_len
        );
        println!("{}", serve_mode_table(&sp.modes));
        println!(
            "effective speedup vs unshared control: {:.3}x ({} prefix hits, {} shared tokens, {} COW forks, {} paged rejections)",
            sp.effective_speedup,
            sp.modes[0].shared_prefix_hits,
            sp.modes[0].shared_tokens,
            sp.modes[0].cow_forks,
            sp.paged_rejections
        );
        r.shared_prefix = Some(sp);
    }
    save("serve", &r);
    if !r.dominance_ok {
        eprintln!("error: continuous batching failed to dominate the baselines");
        std::process::exit(1);
    }
    if !r.paged_zero_rejections {
        eprintln!("error: the paged scheduler rejected requests at the default plan");
        std::process::exit(1);
    }
    if let Some(sp) = &r.shared_prefix {
        if !sp.superlinear_ok {
            eprintln!("error: prefix sharing failed to beat the unshared control");
            std::process::exit(1);
        }
        println!("superlinear_ok: sharing beats the unshared control with zero rejections");
    }
}

fn run_chaos(seed: u64, storm: lm_fault::StormProfile, rps: f64, requests: usize) {
    println!(
        "\n== Chaos: {} storm over the continuous scheduler ({requests} requests @ {rps} rps, seed {seed}) ==",
        storm.name()
    );
    let r = chaos::run(seed, storm, rps, requests);
    println!(
        "resolved {}/{} (completed {}, rejected {}, cancelled {}); admissions {} = completed {} + cancel {} + preempt {} + crash {}",
        r.resolved,
        r.requests,
        r.completed,
        r.rejected,
        r.cancelled,
        r.stats.admitted,
        r.stats.completed,
        r.stats.cancelled_in_slot,
        r.stats.preemptions,
        r.stats.slot_crashes
    );
    println!(
        "injected: {} disconnects, {} slot crashes, {} pool spikes, {} stalls (+{}ms), {} retries; {} log events dropped",
        r.faults.client_disconnects,
        r.faults.slot_crashes,
        r.faults.pool_pressure_spikes,
        r.faults.transfer_stalls,
        r.faults.stall_ms_total,
        r.faults.retries,
        r.faults.dropped_events
    );
    println!(
        "invariants: leases={} pages={} resolution={} conservation={} transparency={} ({} survivors) replay={}",
        r.invariants.zero_leaked_leases,
        r.invariants.zero_leaked_pages,
        r.invariants.all_resolved,
        r.invariants.admissions_balanced,
        r.invariants.survivors_transparent,
        r.survivors_checked,
        r.invariants.replay_identical
    );
    let ok = r.invariants_ok;
    save("chaos", &r);
    if ok {
        println!("invariants_ok: every resilience invariant holds");
    } else {
        eprintln!("error: a chaos invariant was violated");
        std::process::exit(1);
    }
}

fn run_slo(seed: u64, rps: f64, requests: usize) {
    println!(
        "\n== SLO: observe vs enforcing under overload ({requests} requests @ {rps} rps, seed {seed}) =="
    );
    let r = slo::run(seed, rps, requests);
    println!(
        "objective: p99 TTFT <= {:.1}s (floor {:.1}s x {:.1}); model-guided ladder: {} rungs",
        r.ttft_p99_slo_s,
        r.floor_ttft_s,
        slo::SLO_FLOOR_HEADROOM,
        r.ladder_rungs
    );
    let rendered: Vec<Vec<String>> = [&r.observe, &r.enforced]
        .iter()
        .map(|m| {
            vec![
                m.mode.clone(),
                format!("{}/{}", m.completed, r.requests),
                f(m.achieved_ttft_p99_s, 1),
                if m.meets_slo { "yes" } else { "NO" }.into(),
                m.shed.to_string(),
                m.preemptions.to_string(),
                m.degradations.to_string(),
                m.predicted_violations.to_string(),
                f(m.tokens_per_s, 2),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["mode", "done", "p99 ttft", "meets", "shed", "preempt", "degrade", "pred viol", "tok/s"],
            &rendered
        )
    );
    println!(
        "throughput: enforcing {:.2} tok/s vs sequential {:.2} tok/s",
        r.enforced.tokens_per_s, r.sequential_tokens_per_s
    );
    let ok = r.slo_ok;
    save("slo", &r);
    if ok {
        println!("slo_ok: enforcement meets the objective observe mode violates");
    } else {
        eprintln!("error: SLO enforcement gate failed");
        std::process::exit(1);
    }
}

fn run_obs(seed: u64, rps: f64, requests: usize) {
    println!(
        "\n== Observability: serve-path drift audit, exposition, flight recorder ({requests} requests @ {rps} rps, seed {seed}) =="
    );
    let (r, timeline) = obs::run(seed, rps, requests);
    println!(
        "record: {} lifecycle events, {} boundary samples, {} TTFT pairs over {} slots",
        r.lifecycle_events, r.boundary_samples, r.ttft_samples, r.plan.slots
    );
    let rendered: Vec<Vec<String>> = r
        .drift_gates
        .iter()
        .map(|g| {
            let m = r.drift.metric(&g.metric);
            vec![
                g.metric.clone(),
                m.map(|m| f(m.predicted, 3)).unwrap_or_default(),
                m.map(|m| f(m.observed, 3)).unwrap_or_default(),
                f(g.ratio, 4),
                format!("±{:.0}%", g.tolerance * 100.0),
                if g.ok { "ok" } else { "DRIFT" }.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["metric", "predicted", "observed", "obs/pred", "tolerance", "verdict"],
            &rendered
        )
    );
    println!(
        "exposition: {} bytes, round-trip {}; flight: '{}' ({} events, {} dropped), round-trip {}; lints: {} errors / {} warnings",
        r.exposition.len(),
        if r.expo_round_trip_ok { "ok" } else { "FAILED" },
        r.flight.reason,
        r.flight.events.len(),
        r.flight.dropped,
        if r.flight_round_trip_ok { "ok" } else { "FAILED" },
        r.lint_errors,
        r.lint_warnings
    );
    let ok = r.obs_ok;
    save("obs", &r);
    let dir = Path::new("results");
    if fs::create_dir_all(dir).is_ok() {
        let path = dir.join("serve_timeline.json");
        match fs::write(&path, &timeline) {
            Ok(()) => println!(
                "wrote {} (open at https://ui.perfetto.dev)",
                path.display()
            ),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }
    if ok {
        println!("obs_ok: every observability gate holds");
    } else {
        eprintln!("error: an observability gate failed");
        std::process::exit(1);
    }
}

fn run_bench() {
    println!("\n== Perf trajectory: kernel and serve-path wall timings ==");
    let kernels = lm_bench::perf::kernel_rows();
    let serve = lm_bench::perf::serve_rows();
    for (name, rows) in [("BENCH_kernels.json", &kernels), ("BENCH_serve.json", &serve)] {
        let rendered: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.bench.clone(),
                    r.metric.clone(),
                    f(r.value, 2),
                    r.unit.clone(),
                ]
            })
            .collect();
        println!("{}", render(&["bench", "metric", "value", "unit"], &rendered));
        match serde_json::to_string_pretty(rows) {
            Ok(json) => {
                if let Err(e) = fs::write(name, json) {
                    eprintln!("warning: could not write {name}: {e}");
                } else {
                    println!("wrote {name} ({} rows)", rows.len());
                }
            }
            Err(e) => eprintln!("warning: could not serialise {name}: {e}"),
        }
    }
}

fn run_verify(depth: lm_verify::SweepDepth) {
    println!("\n== Verification: planner-space sweep + protocol model checking (DESIGN.md §15) ==");
    let r = verify::run(depth, "BENCH_serve.json");
    println!(
        "sweep ({}): {} configs over {} axes -> {} consistent, {} incomplete, {} unsound (floor {})",
        r.sweep_depth,
        r.configs_explored,
        r.axes.len(),
        r.consistent,
        r.incompleteness,
        r.unsoundness.len(),
        r.configs_floor
    );
    for w in &r.unsoundness {
        println!("  UNSOUND [{}] {}: {}", w.config, w.invariant, w.detail);
    }
    println!(
        "mutation: over-grant-one-page -> {} witnesses, LMA291 {} (caught={})",
        r.mutation_witnesses,
        if r.mutated_lint_has_lma291 { "fires" } else { "SILENT" },
        r.mutation_caught
    );
    for p in &r.protocols {
        println!(
            "protocol {}: {} interleavings, {}/{} transitions exercised, {}{}",
            p.name,
            p.interleavings,
            p.exercised.len(),
            p.declared.len(),
            if p.passed() { "passed" } else { "FAILED" },
            p.failure
                .as_deref()
                .map(|f| format!(" ({f})"))
                .unwrap_or_default()
        );
    }
    println!(
        "interleavings: {} total (floor {}); lints: {} errors / {} warnings",
        r.interleavings_total, r.interleavings_floor, r.lint_errors, r.lint_warnings
    );
    for d in &r.diagnostics {
        println!("  {d}");
    }
    match (r.zero_cost.snapshot_tokens_per_s, r.zero_cost.rel_delta) {
        (Some(snap), Some(rel)) => println!(
            "zero-cost-off: {:.6} tok/s vs snapshot {:.6} (rel delta {:.2e}) -> {}",
            r.zero_cost.measured_tokens_per_s,
            snap,
            rel,
            if r.zero_cost.ok { "ok" } else { "REGRESSED" }
        ),
        _ => println!(
            "zero-cost-off: {:.6} tok/s (no BENCH_serve.json snapshot; skipped)",
            r.zero_cost.measured_tokens_per_s
        ),
    }
    let ok = r.verify_ok;
    save("verify", &r);
    if ok {
        println!("verify_ok: every verification gate holds");
    } else {
        eprintln!("error: a verification gate failed");
        std::process::exit(1);
    }
}

fn run_async_lane(seed: u64) {
    println!(
        "\n== Async serving: real-time streaming over the continuous scheduler ({} requests, seed {seed}) ==",
        async_rt::DEFAULT_REQUESTS
    );
    let r = async_rt::run(seed, async_rt::DEFAULT_REQUESTS);
    println!(
        "calibration: {:.3} virtual s compressed at {:.1}x -> {:.3} wall s ({:.1} wall tok/s, mean wall TTFT {:.1} ms)",
        r.virtual_sim_seconds,
        r.time_scale,
        r.wall_seconds,
        r.wall_tokens_per_s,
        r.wall_ttft_mean_s * 1e3
    );
    println!(
        "resolved: {} completed, {} rejected, {} mid-stream disconnects of {} requests",
        r.completed, r.rejected, r.disconnects, r.requests
    );
    println!(
        "gates: transparency_ok={} zero_leak_ok={} total_resolution_ok={} disconnect_ok={}",
        r.transparency_ok, r.zero_leak_ok, r.total_resolution_ok, r.disconnect_ok
    );
    let ok = r.async_ok;
    save("async", &r);
    // Merge the wall rows into the tracked trajectory, replacing any
    // prior serve_async rows (the bench lane owns the rest of the file).
    if let Ok(json) = fs::read_to_string("BENCH_serve.json") {
        if let Ok(mut rows) = serde_json::from_str::<Vec<lm_bench::perf::BenchRow>>(&json) {
            rows.retain(|row| !row.bench.starts_with("serve_async/"));
            rows.extend(async_rt::bench_rows(&r));
            match serde_json::to_string_pretty(&rows) {
                Ok(json) => {
                    if let Err(e) = fs::write("BENCH_serve.json", json) {
                        eprintln!("warning: could not write BENCH_serve.json: {e}");
                    } else {
                        println!("merged serve_async rows into BENCH_serve.json");
                    }
                }
                Err(e) => eprintln!("warning: could not serialise BENCH_serve.json: {e}"),
            }
        }
    }
    if ok {
        println!("async_ok: the real-time path is transparent and leak-free");
    } else {
        eprintln!("error: an async serving gate failed");
        std::process::exit(1);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut fast = false;
    let mut shared_prefix = false;
    let mut fault_seed = faults::DEFAULT_FAULT_SEED;
    let mut tokens = trace::DEFAULT_TOKENS;
    let mut rps = serve::DEFAULT_RPS;
    let mut requests = serve::DEFAULT_REQUESTS;
    let mut serve_seed = serve::DEFAULT_SEED;
    let mut storm = lm_fault::StormProfile::Default;
    let mut sweep = lm_verify::SweepDepth::Quick;
    let mut which: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        let seed_value = if a == "--fault-seed" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--fault-seed=").map(String::from)
        };
        let tokens_value = if a == "--tokens" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--tokens=").map(String::from)
        };
        let rps_value = if a == "--rps" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--rps=").map(String::from)
        };
        let requests_value = if a == "--requests" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--requests=").map(String::from)
        };
        let serve_seed_value = if a == "--seed" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--seed=").map(String::from)
        };
        let storm_value = if a == "--storm" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--storm=").map(String::from)
        };
        let sweep_value = if a == "--sweep" {
            i += 1;
            Some(args.get(i).cloned().unwrap_or_default())
        } else {
            a.strip_prefix("--sweep=").map(String::from)
        };
        if let Some(v) = sweep_value {
            sweep = match v.as_str() {
                "quick" => lm_verify::SweepDepth::Quick,
                "full" => lm_verify::SweepDepth::Full,
                _ => {
                    eprintln!("--sweep expects quick|full, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = storm_value {
            storm = match lm_fault::StormProfile::parse(&v) {
                Some(p) => p,
                None => {
                    let names: Vec<&str> = lm_fault::StormProfile::ALL
                        .iter()
                        .map(|p| p.name())
                        .collect();
                    eprintln!("--storm expects one of {}, got '{v}'", names.join("|"));
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = rps_value {
            rps = match v.parse::<f64>() {
                Ok(r) if r > 0.0 && r.is_finite() => r,
                _ => {
                    eprintln!("--rps expects a positive number, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = requests_value {
            requests = match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => {
                    eprintln!("--requests expects a positive integer, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = serve_seed_value {
            serve_seed = match v.parse() {
                Ok(s) => s,
                Err(_) => {
                    eprintln!("--seed expects an integer, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = seed_value {
            fault_seed = match v.parse() {
                Ok(s) => s,
                Err(_) => {
                    eprintln!("--fault-seed expects an integer, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if let Some(v) = tokens_value {
            tokens = match v.parse::<u64>() {
                Ok(t) if t >= 1 => t,
                _ => {
                    eprintln!("--tokens expects a positive integer, got '{v}'");
                    std::process::exit(2);
                }
            };
        } else if a == "--fast" {
            fast = true;
        } else if a == "--shared-prefix" {
            shared_prefix = true;
        } else if !a.starts_with("--") && which.is_none() {
            which = Some(a.clone());
        }
        i += 1;
    }
    let which = which.as_deref().unwrap_or("all");
    let lens: &[u64] = if fast {
        &[8, 64]
    } else {
        &table3::GEN_LENGTHS
    };

    match which {
        "table1" => run_table1(),
        "table3" => run_table3(lens),
        "table4" => run_table4(),
        "table5" => run_table5(),
        "fig3" => run_fig3(),
        "fig4" => run_fig4(),
        "fig5" => run_fig5(),
        "fig7" => run_fig7(lens),
        "fig8" => run_fig8(),
        "fig9" => run_fig9(),
        "whatif" => run_whatif(),
        "analyze" => run_analyze(),
        "faults" => run_faults(fault_seed),
        "trace" => run_trace(tokens),
        "serve" => run_serve(serve_seed, rps, requests, shared_prefix),
        "chaos" => run_chaos(serve_seed, storm, rps, requests),
        "slo" => run_slo(serve_seed, rps, requests),
        "obs" => run_obs(serve_seed, rps, requests),
        "bench" => run_bench(),
        "verify" => run_verify(sweep),
        "async" => run_async_lane(serve_seed),
        "summary" => {
            let s = summary::run(lens);
            print_summary(&s);
            save("summary", &s);
        }
        "all" => {
            run_analyze();
            run_table4();
            run_whatif();
            run_table1();
            run_fig3();
            run_fig4();
            run_fig5();
            run_table3(lens);
            run_fig7(lens);
            run_fig8();
            run_table5();
            run_fig9();
            run_faults(fault_seed);
            run_trace(tokens);
            run_serve(serve_seed, rps, requests, shared_prefix);
            run_chaos(serve_seed, storm, rps, requests);
            run_slo(serve_seed, rps, requests);
            run_obs(serve_seed, rps, requests);
            run_verify(sweep);
            run_async_lane(serve_seed);
        }
        other => {
            eprintln!("unknown experiment '{other}'");
            eprintln!("choose from: analyze table1 table3 table4 table5 fig3 fig4 fig5 fig7 fig8 fig9 whatif faults summary trace serve chaos slo obs bench verify async all");
            std::process::exit(2);
        }
    }
}
