//! Cross-crate integration: the real offloading engine generates the same
//! tokens under tight device budgets, at-rest quantization shrinks the
//! footprint, and pool accounting holds end to end.

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest, Sampler};
use lm_models::presets;
use lm_tensor::QuantConfig;

fn prompts() -> Vec<Vec<u32>> {
    vec![vec![5, 9, 13, 2, 8], vec![40, 41, 42, 43, 44]]
}

#[test]
fn opt125m_generates_deterministically() {
    // A real (if synthetic-weighted) OPT-architecture model, full
    // prefill + decode through every layer.
    let cfg = presets::opt_125m();
    let engine = Engine::new(&cfg, 99, EngineOptions::default()).unwrap();
    let a = engine.run(&GenerateRequest::new(prompts().to_vec(), 4)).unwrap();
    let b = engine.run(&GenerateRequest::new(prompts().to_vec(), 4)).unwrap();
    assert_eq!(a.tokens, b.tokens);
    assert_eq!(a.tokens.len(), 2);
    assert!(a.tokens.iter().all(|t| t.len() == 4));
    assert!(a.throughput > 0.0);
}

#[test]
fn llama_family_generates() {
    // The LLaMA path exercises RMSNorm + SwiGLU (three MLP matrices).
    let mut cfg = presets::llama_7b();
    // Shrink to test scale while keeping the architecture family.
    cfg.num_layers = 3;
    cfg.hidden = 64;
    cfg.ffn_hidden = 172;
    cfg.num_heads = 4;
    cfg.vocab_size = 256;
    let engine = Engine::new(&cfg, 5, EngineOptions::default()).unwrap();
    let g = engine.run(&GenerateRequest::new(prompts().to_vec(), 6)).unwrap();
    assert_eq!(g.tokens[0].len(), 6);
}

#[test]
fn tight_budget_generation_is_equivalent_and_bounded() {
    let cfg = presets::tiny_test();
    let roomy = Engine::new(&cfg, 3, EngineOptions::default()).unwrap();
    let baseline = roomy.run(&GenerateRequest::new(prompts().to_vec(), 10)).unwrap();

    let layer_bytes = cfg.weights_per_layer() as usize * 4 + 64 * 1024;
    let budget = 2 * layer_bytes;
    let tight = Engine::new(
        &cfg,
        3,
        EngineOptions {
            device_capacity: budget,
            prefetch: true,
            ..Default::default()
        },
    )
    .unwrap();
    let offloaded = tight.run(&GenerateRequest::new(prompts().to_vec(), 10)).unwrap();
    assert_eq!(baseline.tokens, offloaded.tokens);
    assert!(
        offloaded.device_peak <= budget,
        "peak {} > budget {budget}",
        offloaded.device_peak
    );
}

#[test]
fn quantized_at_rest_top1_drift_is_limited_on_tiny_model() {
    // int8 at rest: the greedy trajectory of a tiny model usually matches
    // for the first tokens; assert the engine runs and the first token
    // matches (error bounds are tested at the tensor level).
    let cfg = presets::tiny_test();
    let full = Engine::new(&cfg, 21, EngineOptions::default()).unwrap();
    let quant = Engine::new(
        &cfg,
        21,
        EngineOptions {
            quantize_at_rest: Some(QuantConfig::int8()),
            ..Default::default()
        },
    )
    .unwrap();
    let a = full.run(&GenerateRequest::new(prompts().to_vec(), 3)).unwrap();
    let b = quant.run(&GenerateRequest::new(prompts().to_vec(), 3)).unwrap();
    assert_eq!(a.tokens[0][0], b.tokens[0][0], "first greedy token must survive int8");
}

#[test]
fn top_k_sampling_is_reproducible_across_engines() {
    let cfg = presets::tiny_test();
    let opts = EngineOptions {
        sampler: Sampler::TopK { k: 4, seed: 1234 },
        ..Default::default()
    };
    let e1 = Engine::new(&cfg, 8, opts.clone()).unwrap();
    let e2 = Engine::new(&cfg, 8, opts).unwrap();
    assert_eq!(
        e1.run(&GenerateRequest::new(prompts().to_vec(), 5)).unwrap().tokens,
        e2.run(&GenerateRequest::new(prompts().to_vec(), 5)).unwrap().tokens
    );
}
