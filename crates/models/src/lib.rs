//! # lm-models
//!
//! Transformer architecture descriptions and memory-footprint calculators.
//!
//! Everything an offloading scheduler needs to know about a model is a
//! function of tensor *shapes*, never of weight values. This crate provides:
//!
//! - [`config::ModelConfig`] — layers `l`, hidden `h1`, MLP inner `h2`,
//!   heads, vocab (the model-structure parameters of Table 2);
//! - [`presets`] — the OPT-13B/30B/66B and LLaMA-13B/30B/65B configurations
//!   the paper evaluates, plus small family members for real execution;
//! - [`workload::Workload`] — prompt length `s`, generation length `n`,
//!   GPU batch size and zig-zag block size `bls`;
//! - [`footprint`] — Eq. 17-19 tensor sizes and the aggregate footprints of
//!   §3.1 (e.g. OPT-30B at the motivation workload: 55 GiB of weights,
//!   157 GiB of KV cache, 214 GiB total).

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod config;
pub mod footprint;
pub mod presets;
pub mod workload;

pub use config::{DType, Family, ModelConfig};
pub use footprint::Footprint;
pub use workload::Workload;
