//! The deterministic continuous-batching scheduler, plus the two
//! baselines it is measured against (sequential one-call-per-request and
//! naive static batching).
//!
//! Determinism contract: the scheduler runs on a virtual clock (u64
//! microseconds) advanced only by the backend's modelled task costs.
//! Admission order is a total order — `(priority desc, arrival asc, id
//! asc)` — and every block boundary processes arrivals, retirements and
//! admissions in a fixed sequence, so a run is a pure function of
//! `(requests, backend, config)`: byte-identical outcomes across runs
//! and machines.
//!
//! Slot lifecycle: a request is admitted at a block boundary when a slot
//! is free and its KV backing is granted by the serve pool — in paged
//! mode (the default, DESIGN.md §14) a page table from the shared
//! [`PagedKvPool`] covering exactly the tokens it can touch, with prompt
//! prefixes mapped copy-on-write onto pages other requests already hold;
//! in slab mode one contiguous lease sized for the padded worst case.
//! Transient grant failures retry under the configured `lm-fault`
//! policy, then defer to the next boundary while other sequences still
//! hold KV. Each decode step delivers one token to every active slot
//! (streamed through the `on_token` callback) and, in paged mode,
//! appends it to the slot's page table (forking a shared page on first
//! divergent write); a finished sequence drops its KV at the boundary,
//! and the freed bytes admit the next queued request.
//!
//! Overload protection (DESIGN.md §12): every boundary also sweeps slot
//! fates — explicit cancels and injected client disconnects resolve as
//! terminal [`Cancellation`]s with the KV lease reclaimed on the spot;
//! injected slot crashes re-queue the request, which later *resumes from
//! its generated prefix* (token streams are deterministic, so the cached
//! prefix is exact and nothing is re-emitted — only the prefix re-prefill
//! is re-paid). When a [`SloPolicy`](crate::SloPolicy) is configured, a
//! per-boundary monitor predicts p99 TTFT over the wait queue with
//! [`TtftModel`] and, under enforcement, preempts the lowest-priority
//! slot, sheds doomed admissions, or climbs the degrade ladder. Every
//! request resolves exactly once: response, rejection, or cancellation.

use crate::admission::{KvMode, ServeConfig, ServeError, ServePlan};
use crate::backend::ServeBackend;
use crate::driver::{Delivery, NullDriver, ServeDriver, VirtualDriver};
use crate::obs::{BoundaryObs, LifecycleEvent, RequestPhase, ServeObs, TtftSample};
use crate::request::{
    micros, ArrivalQueue, CancelReason, Cancellation, RejectReason, Rejection, Request, Response,
};
use crate::slo::TtftModel;
use lm_engine::{validate_request, EngineError, Lease, MemPool};
use lm_kvpool::{PageConfig, PagedKvPool, SeqKv};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// One streamed token, delivered as it is generated (virtual time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenEvent {
    pub request_id: u64,
    /// 0-based index of this token within the request's generation.
    pub index: usize,
    pub token: u32,
    pub t_us: u64,
}

/// Admission-lifecycle accounting for one continuous run. Admissions
/// count *events*, not requests: a request that crashes and resumes is
/// admitted more than once.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Slot admissions granted (including re-admissions after crash or
    /// preemption).
    pub admitted: u64,
    /// Admissions that ran to a finished [`Response`].
    pub completed: u64,
    /// Admissions ended by cancellation (explicit or disconnect) while
    /// holding a slot.
    pub cancelled_in_slot: u64,
    /// Admissions evicted by the SLO monitor (later re-admitted).
    pub preemptions: u64,
    /// Admissions ended by an injected slot crash (later re-admitted).
    pub slot_crashes: u64,
    /// Requests shed at admission with `WouldMissDeadline`.
    pub shed: u64,
    /// Degrade-ladder rungs climbed.
    pub degradations: u64,
    /// Boundaries where the predicted p99 TTFT exceeded the SLO.
    pub predicted_violations: u64,
}

impl ServeStats {
    /// Conservation law: every admission ends in exactly one of
    /// completion, in-slot cancellation, preemption, or slot crash.
    pub fn admissions_balanced(&self) -> bool {
        self.admitted
            == self.completed + self.cancelled_in_slot + self.preemptions + self.slot_crashes
    }
}

/// What one serving run produced.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeOutcome {
    pub responses: Vec<Response>,
    pub rejections: Vec<Rejection>,
    /// Requests that resolved by cancellation (explicit or injected
    /// disconnect) — the third terminal state.
    pub cancellations: Vec<Cancellation>,
    /// Virtual end-to-end duration, seconds.
    pub sim_seconds: f64,
    /// Real (non-padding) tokens generated.
    pub generated_tokens: u64,
    /// Padding tokens charged (prompt padding inside admitted groups;
    /// for the static baseline also generation padding to the batch max).
    pub padding_tokens: u64,
    /// High-water mark of the serve KV pool, bytes (0 for baselines that
    /// do not lease).
    pub kv_peak_bytes: usize,
    /// Serve-pool bytes still held when the run ended. The RAII-lease
    /// invariant demands this is always zero; the chaos harness fails
    /// the run otherwise.
    pub kv_leaked_bytes: usize,
    /// Deadline misses: for the continuous scheduler, deadline-reason
    /// rejections (expired in queue, or shed as unmeetable); the
    /// baselines *report* (without enforcing) requests whose service
    /// started past their deadline, keeping `results/serve.json`
    /// comparisons apples-to-apples.
    pub deadline_misses: u64,
    /// Admission-lifecycle accounting (continuous scheduler only;
    /// baselines leave it default).
    pub stats: ServeStats,
    /// High-water mark of mapped pages in the paged KV pool (0 in slab
    /// mode and for the baselines).
    pub kv_pages_peak: u64,
    /// Pages still mapped when the run ended; the page-table RAII
    /// invariant demands zero, and the chaos harness gates on it
    /// independently of `kv_leaked_bytes`.
    pub kv_pages_leaked: u64,
    /// Admissions that mapped at least one already-resident page
    /// (prompt-prefix sharing).
    pub shared_prefix_hits: u64,
    /// Prompt tokens whose KV was already resident at admission — the
    /// prefill work sharing skipped.
    pub shared_tokens: u64,
    /// Copy-on-write forks taken when a shared page saw its first
    /// divergent write.
    pub cow_forks: u64,
    /// Observability record (DESIGN.md §13): request lifecycle events,
    /// per-boundary state samples, and TTFT prediction audit pairs.
    /// Pure virtual-clock data, so it is as replay-deterministic as the
    /// rest of the outcome. Baselines leave it empty.
    pub obs: ServeObs,
}

impl ServeOutcome {
    /// Real tokens per virtual second.
    pub fn tokens_per_s(&self) -> f64 {
        if self.sim_seconds > 0.0 {
            self.generated_tokens as f64 / self.sim_seconds
        } else {
            0.0
        }
    }

    /// How many requests reached a terminal state (each exactly once).
    pub fn terminal_count(&self) -> usize {
        self.responses.len() + self.rejections.len() + self.cancellations.len()
    }
}

/// A request waiting — or, after a crash/preemption, *re*-waiting — for
/// a slot.
struct Pending {
    req: Request,
    /// Cached token stream from a previous admission. Tokens are a
    /// deterministic function of the request alone, so the cache is
    /// exact: resumption continues the same stream without re-emitting.
    tokens: Option<Vec<u32>>,
    /// Tokens already streamed to the client before the interruption.
    emitted: usize,
    first_token_us: Option<u64>,
    /// Crash ordinal; keys the next admission's crash draw so retries
    /// see fresh randomness.
    crashes: u32,
}

impl Pending {
    fn fresh(req: Request) -> Self {
        Pending {
            req,
            tokens: None,
            emitted: 0,
            first_token_us: None,
            crashes: 0,
        }
    }

    /// Prompt length a re-admission pays prefill for: the original
    /// prompt plus the already-generated prefix.
    fn effective_prompt_len(&self) -> usize {
        self.req.prompt.len() + self.emitted
    }
}

/// An admitted sequence holding a slot.
struct Slot {
    req: Request,
    tokens: Vec<u32>,
    emitted: usize,
    /// Current sequence length (padded prompt + emitted tokens).
    context: u64,
    first_token_us: Option<u64>,
    /// Token ordinal at which this admission's injected client
    /// disconnect lands (checked at every boundary), if one was drawn.
    disconnect_at: Option<usize>,
    /// Token ordinal at which this admission's injected slot crash
    /// lands, if one was drawn.
    crash_at: Option<usize>,
    crashes: u32,
    /// Stable slot index for the serve timeline: the smallest index free
    /// at admission, returned to the pool when the residency ends.
    slot_idx: u32,
    kv: SlotKv,
}

/// KV backing one slot holds. Both variants reclaim their bytes on drop
/// (RAII), so every slot exit — retire, cancel, crash, preemption —
/// returns its KV without a dedicated release path.
enum SlotKv {
    /// Contiguous worst-case lease, held only for its drop.
    Slab(#[allow(dead_code)] Lease),
    /// Per-request page table; decode appends tokens into it.
    Paged(SeqKv),
}

impl Slot {
    fn remaining(&self) -> u64 {
        (self.tokens.len() - self.emitted) as u64
    }
}

/// Total admission order: priority desc, then arrival asc, then id asc.
///
/// With `edf` set (paged mode), queued requests still waiting on their
/// admission deadline jump the queue in earliest-deadline-first order.
/// Slab mode cannot afford this: its admission pads the whole group to
/// the longest prompt, so pulling a long deadline-holder forward
/// inflates every peer's envelope. Paged admission prices each request
/// by its exact page demand, which makes deadline-first ordering free.
fn admission_order(ready: &mut [Pending], edf: bool) {
    let deadline_key = |p: &Pending| {
        // Once a request has streamed a token its admission deadline is
        // satisfied; only fresh deadline-holders are under the clock.
        if edf && p.emitted == 0 {
            p.req.deadline_us.unwrap_or(u64::MAX)
        } else {
            u64::MAX
        }
    };
    ready.sort_by(|a, b| {
        deadline_key(a)
            .cmp(&deadline_key(b))
            .then(b.req.priority.cmp(&a.req.priority))
            .then(a.req.arrival_us.cmp(&b.req.arrival_us))
            .then(a.req.id.cmp(&b.req.id))
    });
}

/// Snapshot the analytic TTFT predictor's inputs at a block boundary.
/// Step time comes from the admission plan's full-occupancy estimate and
/// prefill from the wait queue's padding envelope, both scaled by the
/// current degrade factor — the same model that times the run predicts
/// it.
///
/// In paged mode the plan's slot count is only a ceiling: pages are the
/// binding resource (DESIGN.md §14). The predictor therefore prices
/// `free_slots` by walking the wait queue in admission order until the
/// pool's free pages run out, and caps turnover concurrency at what the
/// pool can hold at the *observed* per-sequence page residency.
fn ttft_model(
    plan: &ServePlan,
    backend: &dyn ServeBackend,
    active: &[Slot],
    ready: &[Pending],
    degrade_factor: f64,
    paged: Option<&Arc<PagedKvPool>>,
) -> TtftModel {
    let mut remaining: Vec<u64> = active.iter().map(Slot::remaining).collect();
    remaining.sort_unstable();
    let queued_steps: u64 = ready
        .iter()
        .map(|p| p.req.gen_len.saturating_sub(p.emitted) as u64)
        .sum();
    let n = (remaining.len() + ready.len()).max(1);
    let mean_gen_steps = (remaining.iter().sum::<u64>() + queued_steps) as f64 / n as f64;
    let pad_guess = ready
        .iter()
        .map(Pending::effective_prompt_len)
        .max()
        .unwrap_or(1);
    let mut slots = plan.slots;
    let mut free = plan.slots.saturating_sub(active.len());
    if let Some(pp) = paged {
        // Immediate admissions: queue positions fit until free pages do.
        let mut pages_free = pp.capacity_pages().saturating_sub(pp.pages_in_use());
        let mut admissible = 0usize;
        for p in ready.iter().take(free) {
            let need = pp.required_pages(
                p.effective_prompt_len(),
                p.req.gen_len.saturating_sub(p.emitted),
            );
            if need > pages_free {
                break;
            }
            pages_free -= need;
            admissible += 1;
        }
        free = admissible;
        // Turnover concurrency: observed residency when sequences are
        // resident, the plan's expected half-envelope otherwise.
        let mapped: usize = active
            .iter()
            .map(|s| match &s.kv {
                SlotKv::Paged(seq) => seq.mapped_pages(),
                SlotKv::Slab(_) => 0,
            })
            .sum();
        let per_seq = if active.is_empty() || mapped == 0 {
            (plan.pages_per_slot.div_ceil(2).max(1)) as usize
        } else {
            (mapped / active.len()).max(1)
        };
        slots = slots.min((pp.capacity_pages() / per_seq).max(1));
    }
    // Step quote from the same cost source the boundary charger uses:
    // the live contexts plus this boundary's admissions. The plan's
    // `est_step_seconds` is a full-occupancy, full-context envelope —
    // fine for capacity planning, but as a TTFT term it over-quotes
    // every step of a partially filled block.
    let mut contexts: Vec<u64> = active.iter().map(|s| s.context).collect();
    for p in ready.iter().take(free) {
        contexts.push(p.effective_prompt_len() as u64 + 1);
    }
    let step_s = if contexts.is_empty() {
        plan.est_step_seconds
    } else {
        backend.decode_step_seconds(&contexts)
    };
    TtftModel {
        slots,
        free_slots: free,
        remaining_sorted: remaining,
        mean_gen_steps,
        prefill_s: backend.prefill_seconds(pad_guess, free.max(1)) * degrade_factor,
        step_s: step_s * degrade_factor,
    }
}

/// Run the continuous-batching scheduler over `requests`; the plan is
/// derived (and `LMA25x`-linted) by [`crate::plan_admission`] first.
#[deprecated(
    since = "0.2.0",
    note = "use `ServeSession::new(backend).run(requests)` — the unified serve API"
)]
pub fn serve_continuous(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> Result<(ServePlan, ServeOutcome), ServeError> {
    run_continuous(backend, cfg, requests, &mut NullDriver)
}

/// [`serve_continuous`] with per-token streaming delivery.
#[deprecated(
    since = "0.2.0",
    note = "use `ServeSession::new(backend).run_streaming(requests, on_token)`"
)]
pub fn serve_continuous_with(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
    on_token: &mut dyn FnMut(TokenEvent),
) -> Result<(ServePlan, ServeOutcome), ServeError> {
    run_continuous(backend, cfg, requests, &mut VirtualDriver::new(on_token))
}

/// The continuous-batching core, parameterized over the clock/transport
/// [`ServeDriver`] (DESIGN.md §16). With [`VirtualDriver`] or
/// [`NullDriver`] this is byte-for-byte the pre-split scheduler: `pace`
/// is the identity and every delivery succeeds, so outcomes are a pure
/// function of `(requests, backend, config)` exactly as before. A
/// real-time driver may stretch the clock (wall jitter feeds the same
/// deadline/SLO machinery) and may report a token undeliverable, which
/// resolves at the next boundary through the scheduler's existing
/// client-disconnect vocabulary.
pub(crate) fn run_continuous(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
    driver: &mut dyn ServeDriver,
) -> Result<(ServePlan, ServeOutcome), ServeError> {
    let plan = crate::admission::plan_admission(backend, cfg)?;
    // SLO pre-flight: an unmeetable or actuator-less policy is a typed
    // error before any request is served, mirroring the LMA25x plan gate.
    if let Some(slo) = cfg.slo.as_ref() {
        let report = lm_analyze::lint_slo(&crate::admission::slo_probe(
            &plan,
            backend,
            slo,
            cfg.ladder.as_ref(),
        ));
        if !report.is_clean() {
            return Err(ServeError::Plan(report));
        }
    }
    let tracer = &cfg.tracer;
    let flight = &cfg.flight;
    if flight.is_enabled() {
        // Tee injected faults into the same ring as scheduler decisions.
        cfg.fault.set_flight(flight.clone());
    }
    let pool = MemPool::new("serve.kv", plan.kv_pool_bytes as usize);
    pool.attach_fault(cfg.fault.clone());
    // Paged mode layers the block-granular allocator over the same
    // MemPool, so byte accounting (peak, leak detection, injected
    // pressure) stays unified across modes.
    let paged = (plan.kv_mode == KvMode::Paged).then(|| {
        PagedKvPool::new(
            pool.clone(),
            PageConfig {
                page_tokens: plan.page_tokens as usize,
                bytes_per_token: (plan.page_bytes / plan.page_tokens.max(1)) as usize,
            },
        )
    });

    let total = requests.len();
    let mut queue = ArrivalQueue::new(requests);
    let mut ready: Vec<Pending> = Vec::new();
    let mut active: Vec<Slot> = Vec::new();
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut cancellations: Vec<Cancellation> = Vec::new();
    let mut stats = ServeStats::default();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    let mut padding = 0u64;
    let mut deadline_misses = 0u64;
    // One-way degrade ratchet driven by the SLO monitor.
    let mut degrade_factor = 1.0f64;
    let mut degrade_level = 0usize;
    // Boundary ordinal, keying the per-step stall draw.
    let mut boundary = 0u64;
    // Observability record: lifecycle events, boundary samples, and the
    // TTFT prediction audit (§13). All virtual-clock, all deterministic.
    let mut obs = ServeObs::default();
    // Predicted TTFT (relative to arrival, µs) sampled once per request
    // the first time it is seen in the wait queue.
    let mut predicted_ttft: BTreeMap<u64, u64> = BTreeMap::new();
    // Requests whose transport failed a delivery (receiver dropped, or
    // backpressure grace exhausted); resolved as client disconnects at
    // the next boundary sweep. Always empty under the virtual drivers.
    let mut transport_drops: BTreeMap<u64, Delivery> = BTreeMap::new();
    // Free stable slot indices for the timeline; smallest index first.
    let mut free_slot_ids: Vec<u32> = (0..plan.slots as u32).rev().collect();
    let idle_boundary = |t_us: u64, pending: usize, degrade: f64| BoundaryObs {
        t_us,
        queued: 0,
        pending_arrivals: pending,
        active_slots: 0,
        slots: plan.slots,
        pages_in_use: 0,
        pages_demand: 0,
        predicted_ttft_p99_us: None,
        degrade_factor: degrade,
    };

    loop {
        for req in queue.pop_arrived(clock_us) {
            obs.lifecycle.push(LifecycleEvent {
                t_us: req.arrival_us,
                dur_us: 0,
                request: req.id,
                slot: None,
                phase: RequestPhase::Queued,
            });
            ready.push(Pending::fresh(req));
        }
        if active.is_empty() && ready.is_empty() {
            match queue.next_arrival_us() {
                Some(t) => {
                    // Sample the idle gap so the occupancy integral
                    // covers it (nothing runs until the next arrival).
                    obs.boundaries
                        .push(idle_boundary(clock_us, queue.len(), degrade_factor));
                    clock_us = driver.pace(t);
                    continue;
                }
                None => {
                    // Terminal sample: closes the last boundary interval.
                    obs.boundaries.push(idle_boundary(clock_us, 0, degrade_factor));
                    break;
                }
            }
        }

        // ---- boundary sweep 1: fates of running slots -----------------
        // Cancellation (explicit or injected disconnect) is terminal and
        // reclaims the KV lease here; a crash re-queues the request to
        // resume from its prefix. Disconnect outranks crash when both
        // land on the same token.
        let mut still = Vec::with_capacity(active.len());
        for slot in active.drain(..) {
            if slot.req.cancel.is_cancelled_at(clock_us) {
                stats.cancelled_in_slot += 1;
                tracer.counter_add("serve.cancelled", 1);
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: slot.req.id,
                    slot: Some(slot.slot_idx),
                    phase: RequestPhase::Cancelled,
                });
                if flight.is_enabled() {
                    flight.record(
                        clock_us,
                        "sched",
                        format!("cancel request={} delivered={}", slot.req.id, slot.emitted),
                    );
                }
                free_slot_ids.push(slot.slot_idx);
                cancellations.push(Cancellation {
                    id: slot.req.id,
                    reason: CancelReason::Explicit,
                    delivered: slot.emitted,
                    cancel_us: clock_us,
                });
                driver.retire(slot.req.id);
            } else if slot.disconnect_at == Some(slot.emitted)
                || transport_drops.contains_key(&slot.req.id)
            {
                // Injected disconnects and real transport failures land
                // in the same terminal state: the client is gone.
                if transport_drops.remove(&slot.req.id) == Some(Delivery::Backpressured) {
                    tracer.counter_add("serve.backpressure_disconnects", 1);
                }
                stats.cancelled_in_slot += 1;
                tracer.counter_add("serve.cancelled", 1);
                tracer.counter_add("serve.disconnects", 1);
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: slot.req.id,
                    slot: Some(slot.slot_idx),
                    phase: RequestPhase::Cancelled,
                });
                if flight.is_enabled() {
                    flight.record(
                        clock_us,
                        "sched",
                        format!("disconnect request={} delivered={}", slot.req.id, slot.emitted),
                    );
                }
                free_slot_ids.push(slot.slot_idx);
                cancellations.push(Cancellation {
                    id: slot.req.id,
                    reason: CancelReason::ClientDisconnect,
                    delivered: slot.emitted,
                    cancel_us: clock_us,
                });
                driver.retire(slot.req.id);
            } else if slot.crash_at == Some(slot.emitted) {
                stats.slot_crashes += 1;
                tracer.counter_add("serve.slot_crashes", 1);
                tracer.counter_add("serve.crash_retries", 1);
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: slot.req.id,
                    slot: Some(slot.slot_idx),
                    phase: RequestPhase::Crashed,
                });
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: slot.req.id,
                    slot: None,
                    phase: RequestPhase::Queued,
                });
                if flight.is_enabled() {
                    flight.record(
                        clock_us,
                        "sched",
                        format!("slot_crash request={} emitted={}", slot.req.id, slot.emitted),
                    );
                }
                free_slot_ids.push(slot.slot_idx);
                ready.push(Pending {
                    req: slot.req,
                    tokens: Some(slot.tokens),
                    emitted: slot.emitted,
                    first_token_us: slot.first_token_us,
                    crashes: slot.crashes + 1,
                });
            } else {
                still.push(slot);
            }
        }
        active = still;

        // ---- boundary sweep 2: queued fates ---------------------------
        // Explicit cancels are terminal wherever the request sits. A
        // deadline only expires a request that never held a slot — once
        // admitted, the admission deadline is satisfied and a resumed
        // request keeps running.
        ready.retain(|p| {
            if p.req.cancel.is_cancelled_at(clock_us) {
                stats_cancel_queued(tracer, &mut cancellations, p, clock_us);
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: p.req.id,
                    slot: None,
                    phase: RequestPhase::Cancelled,
                });
                driver.retire(p.req.id);
                return false;
            }
            if p.emitted == 0 {
                if let Some(d) = p.req.deadline_us {
                    if d < clock_us {
                        deadline_misses += 1;
                        tracer.counter_add("serve.rejected", 1);
                        tracer.counter_add("serve.deadline_miss", 1);
                        tracer.instant("serve.deadline_expired", "serve");
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: p.req.id,
                            slot: None,
                            phase: RequestPhase::Shed,
                        });
                        rejections.push(Rejection {
                            id: p.req.id,
                            reason: RejectReason::DeadlineExpired {
                                deadline_us: d,
                                now_us: clock_us,
                            },
                        });
                        driver.retire(p.req.id);
                        return false;
                    }
                }
            }
            true
        });

        admission_order(&mut ready, paged.is_some());

        // ---- TTFT audit: sample the predictor once per request --------
        // The first boundary that sees a request in the wait queue asks
        // the same TtftModel the SLO monitor uses what its first-token
        // time will be; the observed value pairs with it at first emit.
        if ready
            .iter()
            .any(|p| !predicted_ttft.contains_key(&p.req.id))
        {
            let model = ttft_model(&plan, backend, &active, &ready, degrade_factor, paged.as_ref());
            for (pos, p) in ready.iter().enumerate() {
                predicted_ttft.entry(p.req.id).or_insert_with(|| {
                    clock_us
                        .saturating_add(model.predict_rel_ttft_us(pos))
                        .saturating_sub(p.req.arrival_us)
                });
            }
        }

        // ---- SLO monitor: predict, then actuate -----------------------
        if let Some(slo) = cfg.slo.as_ref() {
            if !ready.is_empty() {
                let model = ttft_model(&plan, backend, &active, &ready, degrade_factor, paged.as_ref());
                if let Some(p99) = model.predicted_p99_us(ready.len()) {
                    tracer.gauge_set("serve.predicted_ttft_p99_s", p99 as f64 / 1e6);
                    if p99 > slo.ttft_p99_us() {
                        stats.predicted_violations += 1;
                        tracer.counter_add("serve.slo_predicted_violations", 1);
                        if slo.enforce {
                            // Actuator 1: evict the lowest-priority,
                            // least-invested slot — but only when slots
                            // are the bottleneck and the best waiter
                            // strictly outranks it (one per boundary).
                            let mut acted = false;
                            if slo.preempt && active.len() == plan.slots {
                                let top = ready[0].req.priority;
                                let victim = active
                                    .iter()
                                    .enumerate()
                                    .filter(|(_, s)| s.req.priority < top)
                                    .min_by_key(|(_, s)| {
                                        (s.req.priority, s.emitted, std::cmp::Reverse(s.req.id))
                                    })
                                    .map(|(i, _)| i);
                                if let Some(i) = victim {
                                    let slot = active.swap_remove(i);
                                    stats.preemptions += 1;
                                    tracer.counter_add("serve.preemptions", 1);
                                    tracer.instant("serve.preempted", "serve");
                                    obs.lifecycle.push(LifecycleEvent {
                                        t_us: clock_us,
                                        dur_us: 0,
                                        request: slot.req.id,
                                        slot: Some(slot.slot_idx),
                                        phase: RequestPhase::Preempted,
                                    });
                                    obs.lifecycle.push(LifecycleEvent {
                                        t_us: clock_us,
                                        dur_us: 0,
                                        request: slot.req.id,
                                        slot: None,
                                        phase: RequestPhase::Queued,
                                    });
                                    if flight.is_enabled() {
                                        flight.record(
                                            clock_us,
                                            "sched",
                                            format!(
                                                "preempt request={} emitted={} p99_us={p99}",
                                                slot.req.id, slot.emitted
                                            ),
                                        );
                                    }
                                    free_slot_ids.push(slot.slot_idx);
                                    ready.push(Pending {
                                        req: slot.req,
                                        tokens: Some(slot.tokens),
                                        emitted: slot.emitted,
                                        first_token_us: slot.first_token_us,
                                        crashes: slot.crashes,
                                    });
                                    admission_order(&mut ready, paged.is_some());
                                    acted = true;
                                }
                            }
                            // Actuator 2: climb one rung of the
                            // model-guided fallback ladder (sticky for
                            // the rest of the run).
                            if !acted {
                                if let Some(ladder) = cfg.ladder.as_ref() {
                                    if let Some(rung) = ladder.rung(degrade_level + 1) {
                                        degrade_level += 1;
                                        degrade_factor =
                                            degrade_factor.min(rung.step_time_factor.max(0.01));
                                        stats.degradations += 1;
                                        tracer.counter_add("serve.degradations", 1);
                                        tracer.gauge_set(
                                            "serve.degrade_level",
                                            degrade_level as f64,
                                        );
                                        if flight.is_enabled() {
                                            flight.record(
                                                clock_us,
                                                "sched",
                                                format!(
                                                    "degrade level={degrade_level} \
                                                     factor={degrade_factor}"
                                                ),
                                            );
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        // ---- load shedding: reject doomed admissions up front ---------
        if let Some(slo) = cfg.slo.as_ref() {
            if slo.enforce && slo.shed && !ready.is_empty() {
                let model = ttft_model(&plan, backend, &active, &ready, degrade_factor, paged.as_ref());
                let mut kept = Vec::with_capacity(ready.len());
                let mut pos = 0usize;
                for p in ready.drain(..) {
                    // Never shed a request that already streamed tokens.
                    if p.emitted > 0 {
                        kept.push(p);
                        pos += 1;
                        continue;
                    }
                    let predicted_us = clock_us.saturating_add(model.predict_rel_ttft_us(pos));
                    let slack_us = p.req.arrival_us.saturating_add(micros(slo.shed_slack_s));
                    let eff_deadline = p.req.deadline_us.map_or(slack_us, |d| d.min(slack_us));
                    if predicted_us > eff_deadline {
                        stats.shed += 1;
                        deadline_misses += 1;
                        tracer.counter_add("serve.shed", 1);
                        tracer.counter_add("serve.rejected", 1);
                        tracer.counter_add("serve.deadline_miss", 1);
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: p.req.id,
                            slot: None,
                            phase: RequestPhase::Shed,
                        });
                        if flight.is_enabled() {
                            flight.record(
                                clock_us,
                                "sched",
                                format!(
                                    "shed request={} predicted_us={predicted_us} \
                                     deadline_us={eff_deadline}",
                                    p.req.id
                                ),
                            );
                        }
                        rejections.push(Rejection {
                            id: p.req.id,
                            reason: RejectReason::WouldMissDeadline {
                                deadline_us: eff_deadline,
                                predicted_ttft_us: predicted_us,
                            },
                        });
                        driver.retire(p.req.id);
                        // The queue shortened: later requests move up.
                    } else {
                        kept.push(p);
                        pos += 1;
                    }
                }
                ready = kept;
            }
        }

        // ---- admit into free slots ------------------------------------
        // Smallest free timeline index is assigned first.
        free_slot_ids.sort_unstable_by(|a, b| b.cmp(a));
        let free = plan.slots.saturating_sub(active.len());
        let mut candidates: Vec<(Pending, Vec<u32>)> = Vec::new();
        while candidates.len() < free && !ready.is_empty() {
            let mut p = ready.remove(0);
            match p.tokens.take() {
                // A resume carries its cached stream; it was validated
                // at first admission.
                Some(tokens) => candidates.push((p, tokens)),
                None => {
                    if let Err(EngineError::InvalidRequest { reason }) = validate_request(
                        backend.model(),
                        std::slice::from_ref(&p.req.prompt),
                        p.req.gen_len,
                        1,
                    ) {
                        tracer.counter_add("serve.rejected", 1);
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: p.req.id,
                            slot: None,
                            phase: RequestPhase::Shed,
                        });
                        rejections.push(Rejection {
                            id: p.req.id,
                            reason: RejectReason::Invalid(reason),
                        });
                        driver.retire(p.req.id);
                        continue;
                    }
                    match backend.materialize(&p.req) {
                        Ok(tokens) => candidates.push((p, tokens)),
                        Err(e) => {
                            tracer.counter_add("serve.rejected", 1);
                            obs.lifecycle.push(LifecycleEvent {
                                t_us: clock_us,
                                dur_us: 0,
                                request: p.req.id,
                                slot: None,
                                phase: RequestPhase::Shed,
                            });
                            rejections.push(Rejection {
                                id: p.req.id,
                                reason: RejectReason::AdmissionFailed(e.to_string()),
                            });
                            driver.retire(p.req.id);
                        }
                    }
                }
            }
        }

        // Slab mode pads the group to its longest (effective) prompt and
        // leases the padded worst case so a slot never outgrows its
        // reservation. Paged mode reserves exactly the pages `known +
        // generation` can touch — no padding, and prompt prefixes
        // already resident in the pool are mapped instead of refilled.
        // A resume's effective prompt includes its generated prefix,
        // whose re-prefill is the (only) cost of resumption.
        let pad_len = candidates
            .iter()
            .map(|(p, _)| p.effective_prompt_len())
            .max()
            .unwrap_or(0);
        // Longest span of *unshared* known tokens in the admitted group:
        // what paged-mode prefill actually pays for.
        let mut prefill_span = 0usize;
        let mut admitted: Vec<Slot> = Vec::new();
        for (mut p, tokens) in candidates {
            let remaining = tokens.len() - p.emitted;
            let on_retry = |_: u32, _: &lm_engine::PoolExhausted| {
                cfg.fault.note_retry();
                tracer.counter_add("serve.admission_retries", 1);
            };
            let paged_known: Option<Vec<u32>> = paged.as_ref().map(|_| {
                p.req
                    .prompt
                    .iter()
                    .chain(&tokens[..p.emitted])
                    .copied()
                    .collect()
            });
            let (mut grant, demand_bytes) = match (paged.as_ref(), paged_known.as_ref()) {
                (Some(pp), Some(known)) => {
                    let demand =
                        pp.required_pages(known.len(), remaining) * pp.cfg().page_bytes();
                    let grant = cfg
                        .retry
                        .run(|_| pp.admit(known, remaining).map(SlotKv::Paged), on_retry);
                    (grant, demand)
                }
                _ => {
                    let bytes = backend.kv_bytes_at(pad_len + remaining);
                    let grant = cfg
                        .retry
                        .run(|_| pool.alloc(bytes).map(SlotKv::Slab), on_retry);
                    (grant, bytes)
                }
            };
            // ---- deadline rescue (paged only) -------------------------
            // A queued deadline-holder must not starve behind residents
            // that have no clock on them: page granularity makes partial
            // eviction cheap, so reclaim pages from the least-invested
            // active slots until the grant fits. The victim re-queues
            // with its stream cached and resumes when pages free up —
            // its own admission deadline (if any) was satisfied the
            // moment it first held a slot, so nothing is lost but the
            // re-prefill of its generated prefix.
            if grant.is_err()
                && p.emitted == 0
                && p.req.deadline_us.is_some()
                && demand_bytes <= pool.capacity()
            {
                if let (Some(pp), Some(known)) = (paged.as_ref(), paged_known.as_ref()) {
                    while grant.is_err() {
                        let victim = active
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, s)| {
                                (s.req.priority, s.emitted, std::cmp::Reverse(s.req.id))
                            })
                            .map(|(i, _)| i);
                        let Some(i) = victim else { break };
                        let Slot {
                            req: v_req,
                            tokens: v_tokens,
                            emitted: v_emitted,
                            first_token_us: v_first_token_us,
                            crashes: v_crashes,
                            slot_idx: v_slot_idx,
                            kv: v_kv,
                            ..
                        } = active.swap_remove(i);
                        // Return the victim's pages to the pool before
                        // retrying the grant.
                        drop(v_kv);
                        stats.preemptions += 1;
                        tracer.counter_add("serve.preemptions", 1);
                        tracer.instant("serve.preempted", "serve");
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: v_req.id,
                            slot: Some(v_slot_idx),
                            phase: RequestPhase::Preempted,
                        });
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: v_req.id,
                            slot: None,
                            phase: RequestPhase::Queued,
                        });
                        if flight.is_enabled() {
                            flight.record(
                                clock_us,
                                "sched",
                                format!(
                                    "deadline-rescue preempt request={} pages for request={}",
                                    v_req.id, p.req.id
                                ),
                            );
                        }
                        free_slot_ids.push(v_slot_idx);
                        ready.push(Pending {
                            req: v_req,
                            tokens: Some(v_tokens),
                            emitted: v_emitted,
                            first_token_us: v_first_token_us,
                            crashes: v_crashes,
                        });
                        grant = cfg
                            .retry
                            .run(|_| pp.admit(known, remaining).map(SlotKv::Paged), on_retry);
                    }
                }
            }
            match grant {
                Ok(kv) => {
                    let context = match &kv {
                        // Exact residency: attention runs over the real
                        // sequence, and no padding tokens are charged.
                        SlotKv::Paged(seq) => {
                            let shared = seq.shared_tokens();
                            if shared > 0 {
                                tracer.counter_add("serve.shared_prefix_hits", 1);
                                tracer.counter_add("serve.shared_tokens", shared as u64);
                            }
                            prefill_span =
                                prefill_span.max(p.effective_prompt_len() - shared);
                            p.effective_prompt_len() as u64
                        }
                        SlotKv::Slab(_) => {
                            let pad_tokens = (pad_len - p.effective_prompt_len()) as u64;
                            padding += pad_tokens;
                            tracer.counter_add("serve.padding_tokens", pad_tokens);
                            prefill_span = pad_len;
                            pad_len as u64
                        }
                    };
                    tracer.counter_add("serve.admitted", 1);
                    stats.admitted += 1;
                    let slot_idx = free_slot_ids.pop().unwrap_or(0);
                    obs.lifecycle.push(LifecycleEvent {
                        t_us: clock_us,
                        dur_us: 0,
                        request: p.req.id,
                        slot: Some(slot_idx),
                        phase: RequestPhase::Admitted,
                    });
                    if flight.is_enabled() {
                        flight.record(
                            clock_us,
                            "sched",
                            format!(
                                "admit request={} slot={slot_idx} lease_bytes={demand_bytes}",
                                p.req.id
                            ),
                        );
                    }
                    // This admission's injected fates: both land at least
                    // one token ahead, so every admission makes progress
                    // and crash-retries terminate.
                    let emitted = p.emitted;
                    let fate = move |frac: f64| {
                        emitted + ((frac * remaining as f64).floor() as usize).max(1)
                    };
                    let disconnect_at =
                        cfg.fault.client_disconnect("serve.slot", p.req.id).map(fate);
                    let crash_at = cfg
                        .fault
                        .slot_crash("serve.slot", p.req.id, p.crashes)
                        .map(fate);
                    admitted.push(Slot {
                        tokens,
                        emitted: p.emitted,
                        context,
                        first_token_us: p.first_token_us,
                        disconnect_at,
                        crash_at,
                        crashes: p.crashes,
                        slot_idx,
                        req: p.req,
                        kv,
                    });
                }
                Err(err) => {
                    if demand_bytes > pool.capacity() {
                        // Unservable under this plan, ever.
                        tracer.counter_add("serve.rejected", 1);
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: p.req.id,
                            slot: None,
                            phase: RequestPhase::Shed,
                        });
                        rejections.push(Rejection {
                            id: p.req.id,
                            reason: RejectReason::PoolOverCommit {
                                bytes: demand_bytes,
                                capacity: pool.capacity(),
                            },
                        });
                        driver.retire(p.req.id);
                    } else if active.is_empty() && admitted.is_empty() {
                        // Nothing holds a lease, so waiting frees no
                        // bytes: the failure is not transient.
                        tracer.counter_add("serve.rejected", 1);
                        obs.lifecycle.push(LifecycleEvent {
                            t_us: clock_us,
                            dur_us: 0,
                            request: p.req.id,
                            slot: None,
                            phase: RequestPhase::Shed,
                        });
                        rejections.push(Rejection {
                            id: p.req.id,
                            reason: RejectReason::AdmissionFailed(err.to_string()),
                        });
                        driver.retire(p.req.id);
                    } else {
                        // Defer to the next boundary; leases retire there.
                        tracer.counter_add("serve.deferred", 1);
                        p.tokens = Some(tokens);
                        ready.push(p);
                    }
                }
            }
        }

        if !admitted.is_empty() {
            // Paged mode prefills only unshared tokens (shared-prefix KV
            // is already resident); slab mode pays the padded envelope.
            let dt = backend.prefill_seconds(prefill_span.max(1), admitted.len()) * degrade_factor;
            let prefill_start = clock_us;
            clock_us += micros(dt);
            tracer.histogram_record("serve.prefill_s", dt);
            for slot in &admitted {
                obs.lifecycle.push(LifecycleEvent {
                    t_us: prefill_start,
                    dur_us: micros(dt),
                    request: slot.req.id,
                    slot: Some(slot.slot_idx),
                    phase: RequestPhase::Prefill,
                });
            }
            active.extend(admitted);
        }

        tracer.gauge_set("serve.queue_depth", (ready.len() + queue.len()) as f64);
        tracer.gauge_set(
            "serve.slot_occupancy",
            active.len() as f64 / plan.slots.max(1) as f64,
        );
        // Per-boundary state sample (post-admission, pre-decode): what
        // the drift audit integrates and the timeline's counter tracks.
        let predicted_p99 = if ready.is_empty() {
            None
        } else {
            ttft_model(&plan, backend, &active, &ready, degrade_factor, paged.as_ref())
                .predicted_p99_us(ready.len())
        };
        obs.boundaries.push(BoundaryObs {
            t_us: clock_us,
            queued: ready.len(),
            pending_arrivals: queue.len(),
            active_slots: active.len(),
            slots: plan.slots,
            pages_in_use: paged
                .as_ref()
                .map(|pp| pp.pages_in_use() as u64)
                .unwrap_or(0),
            pages_demand: paged
                .as_ref()
                .map(|pp| {
                    active
                        .iter()
                        .map(|s| pp.required_pages(s.req.prompt.len(), s.req.gen_len) as u64)
                        .sum()
                })
                .unwrap_or(0),
            predicted_ttft_p99_us: predicted_p99,
            degrade_factor,
        });

        if active.is_empty() {
            // Everything at this boundary was rejected; wait for traffic.
            continue;
        }

        // ---- one decode step over the whole block ---------------------
        let contexts: Vec<u64> = active.iter().map(|s| s.context).collect();
        let dt = backend.decode_step_seconds(&contexts) * degrade_factor;
        let step_start = clock_us;
        clock_us += micros(dt);
        tracer.histogram_record("serve.step_s", dt);
        // An injected transfer stall stretches this boundary (virtually).
        boundary += 1;
        if let Some(stall) = cfg.fault.transfer_stall("serve.step", boundary) {
            let stall_s = stall.as_secs_f64();
            clock_us += micros(stall_s);
            tracer.histogram_record("serve.stall_s", stall_s);
        }
        // A real-time driver blocks here until wall time catches the
        // modelled clock and may return a later value, so wall jitter
        // flows into step accounting, TTFT, and the deadline machinery.
        // The virtual driver is the identity.
        clock_us = driver.pace(clock_us);
        let step_dur = clock_us - step_start;

        for slot in &mut active {
            let token = slot.tokens[slot.emitted];
            match driver.deliver(TokenEvent {
                request_id: slot.req.id,
                index: slot.emitted,
                token,
                t_us: clock_us,
            }) {
                Delivery::Delivered => {}
                failed => {
                    // Keep generating this step (the block already paid
                    // for it); the next boundary sweep resolves the
                    // request as a client disconnect.
                    transport_drops.entry(slot.req.id).or_insert(failed);
                }
            }
            // Land the token's KV in the slot's page table; a page still
            // shared with another sequence forks copy-on-write here.
            if let SlotKv::Paged(seq) = &mut slot.kv {
                seq.append(token)?;
            }
            slot.emitted += 1;
            slot.context += 1;
            generated += 1;
            tracer.counter_add("serve.tokens", 1);
            obs.lifecycle.push(LifecycleEvent {
                t_us: step_start,
                dur_us: step_dur,
                request: slot.req.id,
                slot: Some(slot.slot_idx),
                phase: RequestPhase::Decode,
            });
            if slot.first_token_us.is_none() {
                slot.first_token_us = Some(clock_us);
                let observed_us = clock_us.saturating_sub(slot.req.arrival_us);
                tracer.histogram_record("serve.ttft_s", observed_us as f64 / 1e6);
                if let Some(&predicted_us) = predicted_ttft.get(&slot.req.id) {
                    obs.ttft.push(TtftSample {
                        request: slot.req.id,
                        predicted_us,
                        observed_us,
                    });
                }
                // A realized first token past the TTFT objective is the
                // breach the flight recorder freezes on.
                if flight.is_enabled() {
                    if let Some(slo) = cfg.slo.as_ref() {
                        if observed_us > slo.ttft_p99_us() {
                            flight.trigger(
                                &format!(
                                    "slo_breach: request {} ttft {:.6}s > objective {:.6}s",
                                    slot.req.id,
                                    observed_us as f64 / 1e6,
                                    slo.ttft_p99_s
                                ),
                                clock_us,
                                tracer.snapshot().metrics,
                            );
                        }
                    }
                }
            }
        }

        // ---- retire finished sequences (leases drop here) -------------
        let mut kept = Vec::with_capacity(active.len());
        for slot in active.drain(..) {
            if slot.emitted >= slot.tokens.len() {
                stats.completed += 1;
                tracer.counter_add("serve.completed", 1);
                tracer.histogram_record(
                    "serve.latency_s",
                    (clock_us.saturating_sub(slot.req.arrival_us)) as f64 / 1e6,
                );
                obs.lifecycle.push(LifecycleEvent {
                    t_us: clock_us,
                    dur_us: 0,
                    request: slot.req.id,
                    slot: Some(slot.slot_idx),
                    phase: RequestPhase::Done,
                });
                free_slot_ids.push(slot.slot_idx);
                // A transport failure on the final step loses the race:
                // the stream is complete, so the request resolves as a
                // response (matching the virtual path, where the last
                // token always lands before any fate is swept).
                transport_drops.remove(&slot.req.id);
                responses.push(Response {
                    id: slot.req.id,
                    tokens: slot.tokens,
                    arrival_us: slot.req.arrival_us,
                    first_token_us: slot.first_token_us.unwrap_or(clock_us),
                    finish_us: clock_us,
                });
                driver.retire(slot.req.id);
            } else {
                kept.push(slot);
            }
        }
        active = kept;
    }

    debug_assert_eq!(
        responses.len() + rejections.len() + cancellations.len(),
        total
    );
    debug_assert!(stats.admissions_balanced(), "admissions must conserve");
    let (kv_pages_peak, kv_pages_leaked, paging) = match paged.as_ref() {
        Some(pp) => {
            // Live LMA28x check: with every sequence retired, refcounts,
            // page residency, and MemPool byte accounting must all be
            // back at quiescence, and no write may ever have landed on a
            // shared page.
            debug_assert!(pp.accounting_balanced(), "page/byte accounting diverged");
            let counters = pp.counters();
            let s = pp.stats();
            let probe = lm_analyze::PagingProbe {
                page_tokens: plan.page_tokens,
                page_bytes: plan.page_bytes,
                bytes_per_token: plan.page_bytes / plan.page_tokens.max(1),
                kv_block_tokens: plan.slot_context as u64,
                pages_total: plan.pages_total,
                pages_in_use: counters.pages_in_use,
                page_refcount_sum: counters.refcount_sum,
                seq_mapped_pages: counters.refcount_sum,
                shared_write_violations: s.shared_write_violations,
            };
            debug_assert!(
                lm_analyze::lint_paging(&probe).is_clean(),
                "{}",
                lm_analyze::lint_paging(&probe)
            );
            (pp.peak_pages() as u64, pp.pages_in_use() as u64, s)
        }
        None => (0, 0, lm_kvpool::PagingStats::default()),
    };
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    cancellations.sort_by_key(|c| c.id);
    Ok((
        plan,
        ServeOutcome {
            responses,
            rejections,
            cancellations,
            sim_seconds: clock_us as f64 / 1e6,
            generated_tokens: generated,
            padding_tokens: padding,
            kv_peak_bytes: pool.peak(),
            kv_leaked_bytes: pool.used(),
            deadline_misses,
            stats,
            kv_pages_peak,
            kv_pages_leaked,
            shared_prefix_hits: paging.shared_hits,
            shared_tokens: paging.shared_tokens,
            cow_forks: paging.cow_forks,
            obs,
        },
    ))
}

/// Terminalize a queued request whose cancel token fired (shared by the
/// retain sweep, which cannot move out of its closure argument).
fn stats_cancel_queued(
    tracer: &lm_trace::Tracer,
    cancellations: &mut Vec<Cancellation>,
    p: &Pending,
    clock_us: u64,
) {
    tracer.counter_add("serve.cancelled", 1);
    cancellations.push(Cancellation {
        id: p.req.id,
        reason: CancelReason::Explicit,
        delivered: p.emitted,
        cancel_us: clock_us,
    });
}

/// Baseline 1: one call per request, in arrival order — each request
/// pays its own full weight stream (no amortisation at all).
#[deprecated(
    since = "0.2.0",
    note = "use `ServeSession::new(backend).mode(ServeMode::Sequential).run(requests)`"
)]
pub fn serve_sequential(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    run_sequential(backend, cfg, requests)
}

pub(crate) fn run_sequential(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    let tracer = &cfg.tracer;
    let mut queue: Vec<Request> = requests;
    queue.sort_by_key(|r| (r.arrival_us, r.id));
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    let mut deadline_misses = 0u64;
    for req in queue {
        clock_us = clock_us.max(req.arrival_us);
        // Report (never enforce) admission deadlines: service starting
        // past the deadline counts as a miss, keeping the baseline
        // comparable with the continuous scheduler's rejections.
        if req.deadline_us.is_some_and(|d| d < clock_us) {
            deadline_misses += 1;
            tracer.counter_add("serve.deadline_miss", 1);
        }
        if let Err(EngineError::InvalidRequest { reason }) = validate_request(
            backend.model(),
            std::slice::from_ref(&req.prompt),
            req.gen_len,
            1,
        ) {
            rejections.push(Rejection {
                id: req.id,
                reason: RejectReason::Invalid(reason),
            });
            continue;
        }
        let tokens = match backend.materialize(&req) {
            Ok(t) => t,
            Err(e) => {
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::AdmissionFailed(e.to_string()),
                });
                continue;
            }
        };
        clock_us += micros(backend.prefill_seconds(req.prompt.len(), 1));
        let mut first_token_us = None;
        for i in 0..tokens.len() {
            clock_us += micros(backend.decode_step_seconds(&[(req.prompt.len() + i + 1) as u64]));
            if first_token_us.is_none() {
                first_token_us = Some(clock_us);
                tracer.histogram_record(
                    "serve.ttft_s",
                    (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
                );
            }
            generated += 1;
        }
        tracer.histogram_record(
            "serve.latency_s",
            (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
        );
        responses.push(Response {
            id: req.id,
            first_token_us: first_token_us.unwrap_or(clock_us),
            finish_us: clock_us,
            arrival_us: req.arrival_us,
            tokens,
        });
    }
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    Ok(ServeOutcome {
        responses,
        rejections,
        cancellations: Vec::new(),
        sim_seconds: clock_us as f64 / 1e6,
        generated_tokens: generated,
        padding_tokens: 0,
        kv_peak_bytes: 0,
        kv_leaked_bytes: 0,
        deadline_misses,
        stats: ServeStats::default(),
        kv_pages_peak: 0,
        kv_pages_leaked: 0,
        shared_prefix_hits: 0,
        shared_tokens: 0,
        cow_forks: 0,
        obs: ServeObs::default(),
    })
}

/// Baseline 2: naive static batching — fixed groups of `batch` in
/// arrival order; a group waits for its last member to arrive, pads
/// prompts *and* generation lengths to the group max, and releases every
/// response only when the whole group finishes.
#[deprecated(
    since = "0.2.0",
    note = "use `ServeSession::new(backend).mode(ServeMode::Static { batch }).run(requests)`"
)]
pub fn serve_static(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    batch: usize,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    run_static(backend, cfg, batch, requests)
}

pub(crate) fn run_static(
    backend: &dyn ServeBackend,
    cfg: &ServeConfig,
    batch: usize,
    requests: Vec<Request>,
) -> Result<ServeOutcome, ServeError> {
    assert!(batch >= 1, "batch must be positive");
    let tracer = &cfg.tracer;
    let mut queue: Vec<Request> = requests;
    queue.sort_by_key(|r| (r.arrival_us, r.id));
    let mut responses = Vec::new();
    let mut rejections = Vec::new();
    let mut clock_us = 0u64;
    let mut generated = 0u64;
    let mut padding = 0u64;
    let mut deadline_misses = 0u64;
    for chunk in queue.chunks(batch) {
        // The batch forms only when its last member has arrived.
        let formed = chunk.iter().map(|r| r.arrival_us).max().unwrap_or(0);
        clock_us = clock_us.max(formed);
        // Report (never enforce) deadlines that pass while the batch
        // waits to form — the static scheduler's signature failure mode.
        for req in chunk {
            if req.deadline_us.is_some_and(|d| d < clock_us) {
                deadline_misses += 1;
                tracer.counter_add("serve.deadline_miss", 1);
            }
        }
        let mut members: Vec<(&Request, Vec<u32>)> = Vec::new();
        for req in chunk {
            if let Err(EngineError::InvalidRequest { reason }) = validate_request(
                backend.model(),
                std::slice::from_ref(&req.prompt),
                req.gen_len,
                1,
            ) {
                rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::Invalid(reason),
                });
                continue;
            }
            match backend.materialize(req) {
                Ok(t) => members.push((req, t)),
                Err(e) => rejections.push(Rejection {
                    id: req.id,
                    reason: RejectReason::AdmissionFailed(e.to_string()),
                }),
            }
        }
        if members.is_empty() {
            continue;
        }
        let pad_len = members.iter().map(|(r, _)| r.prompt.len()).max().unwrap_or(1);
        let max_gen = members.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
        for (r, t) in &members {
            padding += (pad_len - r.prompt.len()) as u64 + (max_gen - t.len()) as u64;
        }
        clock_us += micros(backend.prefill_seconds(pad_len, members.len()));
        let mut firsts: Vec<Option<u64>> = vec![None; members.len()];
        for step in 0..max_gen {
            // Every slot pays every step at the padded context — the
            // naive part: finished sequences idle inside the batch.
            let contexts: Vec<u64> = vec![(pad_len + step + 1) as u64; members.len()];
            clock_us += micros(backend.decode_step_seconds(&contexts));
            for (m, (_, tokens)) in members.iter().enumerate() {
                if step < tokens.len() {
                    generated += 1;
                    if firsts[m].is_none() {
                        firsts[m] = Some(clock_us);
                    }
                }
            }
        }
        // Naive release: the whole batch returns together.
        for (m, (req, tokens)) in members.into_iter().enumerate() {
            let first = firsts[m].unwrap_or(clock_us);
            tracer.histogram_record(
                "serve.ttft_s",
                (first.saturating_sub(req.arrival_us)) as f64 / 1e6,
            );
            tracer.histogram_record(
                "serve.latency_s",
                (clock_us.saturating_sub(req.arrival_us)) as f64 / 1e6,
            );
            responses.push(Response {
                id: req.id,
                tokens,
                arrival_us: req.arrival_us,
                first_token_us: first,
                finish_us: clock_us,
            });
        }
    }
    responses.sort_by_key(|r| r.id);
    rejections.sort_by_key(|r| r.id);
    Ok(ServeOutcome {
        responses,
        rejections,
        cancellations: Vec::new(),
        sim_seconds: clock_us as f64 / 1e6,
        generated_tokens: generated,
        padding_tokens: padding,
        kv_peak_bytes: 0,
        kv_leaked_bytes: 0,
        deadline_misses,
        stats: ServeStats::default(),
        kv_pages_peak: 0,
        kv_pages_leaked: 0,
        shared_prefix_hits: 0,
        shared_tokens: 0,
        cow_forks: 0,
        obs: ServeObs::default(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::AnalyticBackend;
    use crate::request::synth_traffic;
    use crate::session::{ServeMode, ServeSession};

    fn traffic(n: usize) -> (AnalyticBackend, Vec<Request>) {
        let b = AnalyticBackend::opt_30b();
        let reqs = synth_traffic(7, 4.0, n, b.model());
        (b, reqs)
    }

    // The suite drives the scheduler through the unified ServeSession
    // API (the deprecated free-function shims are covered by a
    // dedicated delegation test in `session`).
    fn continuous(
        b: &dyn ServeBackend,
        cfg: &ServeConfig,
        reqs: Vec<Request>,
    ) -> Result<(ServePlan, ServeOutcome), ServeError> {
        ServeSession::new(b)
            .config(cfg.clone())
            .run(reqs)
            .map(|r| (r.plan.expect("continuous sessions plan"), r.outcome))
    }

    fn continuous_with(
        b: &dyn ServeBackend,
        cfg: &ServeConfig,
        reqs: Vec<Request>,
        on_token: &mut dyn FnMut(TokenEvent),
    ) -> Result<(ServePlan, ServeOutcome), ServeError> {
        ServeSession::new(b)
            .config(cfg.clone())
            .run_streaming(reqs, on_token)
            .map(|r| (r.plan.expect("continuous sessions plan"), r.outcome))
    }

    fn sequential(
        b: &dyn ServeBackend,
        cfg: &ServeConfig,
        reqs: Vec<Request>,
    ) -> Result<ServeOutcome, ServeError> {
        ServeSession::new(b)
            .config(cfg.clone())
            .mode(ServeMode::Sequential)
            .run(reqs)
            .map(|r| r.outcome)
    }

    fn static_batch(
        b: &dyn ServeBackend,
        cfg: &ServeConfig,
        batch: usize,
        reqs: Vec<Request>,
    ) -> Result<ServeOutcome, ServeError> {
        ServeSession::new(b)
            .config(cfg.clone())
            .mode(ServeMode::Static { batch })
            .run(reqs)
            .map(|r| r.outcome)
    }

    #[test]
    fn every_request_is_answered_or_rejected() {
        let (b, reqs) = traffic(12);
        let n = reqs.len();
        let (plan, out) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), n);
        assert!(plan.slots >= 1);
        assert!(out.generated_tokens > 0);
        assert!(out.kv_peak_bytes > 0 && out.kv_peak_bytes <= plan.kv_pool_bytes as usize);
        for r in &out.responses {
            assert!(r.first_token_us >= r.arrival_us);
            assert!(r.finish_us >= r.first_token_us);
            assert!(!r.tokens.is_empty());
        }
    }

    #[test]
    fn continuous_run_is_deterministic() {
        let (b, reqs) = traffic(12);
        let (_, a) = continuous(&b, &ServeConfig::default(), reqs.clone()).unwrap();
        let (_, c) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        assert_eq!(a.responses, c.responses);
        assert_eq!(a.rejections, c.rejections);
        assert_eq!(a.sim_seconds.to_bits(), c.sim_seconds.to_bits());
    }

    #[test]
    fn continuous_beats_sequential_and_static() {
        let (b, reqs) = traffic(24);
        let cfg = ServeConfig::default();
        let (plan, cont) = continuous(&b, &cfg, reqs.clone()).unwrap();
        let seq = sequential(&b, &cfg, reqs.clone()).unwrap();
        let stat = static_batch(&b, &cfg, plan.slots, reqs).unwrap();
        assert!(
            cont.tokens_per_s() >= 1.3 * seq.tokens_per_s(),
            "continuous {} vs sequential {}",
            cont.tokens_per_s(),
            seq.tokens_per_s()
        );
        assert!(
            cont.tokens_per_s() > stat.tokens_per_s(),
            "continuous {} vs static {}",
            cont.tokens_per_s(),
            stat.tokens_per_s()
        );
    }

    #[test]
    fn streaming_delivers_every_token_in_order() {
        let (b, reqs) = traffic(8);
        let mut events: Vec<TokenEvent> = Vec::new();
        let (_, out) =
            continuous_with(&b, &ServeConfig::default(), reqs, &mut |e| events.push(e))
                .unwrap();
        assert_eq!(events.len() as u64, out.generated_tokens);
        let mut t = 0;
        for e in &events {
            assert!(e.t_us >= t, "token times must be monotone");
            t = e.t_us;
        }
        for r in &out.responses {
            let streamed: Vec<u32> = events
                .iter()
                .filter(|e| e.request_id == r.id)
                .map(|e| e.token)
                .collect();
            assert_eq!(streamed, r.tokens, "stream must equal the response");
        }
    }

    #[test]
    fn malformed_and_expired_requests_are_typed_rejections() {
        let b = AnalyticBackend::opt_30b();
        let ok = Request::new(0, vec![1, 2, 3], 4);
        let empty = Request::new(1, vec![], 4);
        let too_long = Request::new(2, vec![1; 4000], 4000);
        // Arrives while the first block is mid-decode (OPT-30B steps take
        // virtual seconds), with a deadline already behind the clock by
        // the time the next boundary sweeps the queue.
        let expired = Request::new(3, vec![1, 2], 4)
            .with_arrival_us(1_000)
            .with_deadline_us(500);
        let late = Request::new(4, vec![1, 2], 4).with_arrival_us(5_000_000);
        let (_, out) = continuous(
            &b,
            &ServeConfig::default(),
            vec![ok, empty, too_long, expired, late],
        )
        .unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), 5);
        let reason = |id: u64| {
            out.rejections
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.reason.clone())
        };
        assert!(matches!(reason(1), Some(RejectReason::Invalid(_))));
        assert!(matches!(reason(2), Some(RejectReason::Invalid(_))));
        // Request 3's deadline passes while the first block decodes.
        assert!(matches!(
            reason(3),
            Some(RejectReason::DeadlineExpired { .. })
        ));
        assert!(out.responses.iter().any(|r| r.id == 0));
        assert!(out.responses.iter().any(|r| r.id == 4));
    }

    #[test]
    fn priorities_jump_the_queue() {
        let b = AnalyticBackend::opt_30b();
        // One slot, both requests present at t=0: the high-priority one
        // must be served first despite the larger id. Slab mode, where
        // `max_slots` is a hard concurrency ceiling — the paged planner
        // repacks the same budget into more page-residency slots.
        let lo = Request::new(0, vec![1, 2], 4).with_priority(0);
        let hi = Request::new(1, vec![3, 4], 4).with_priority(2);
        let cfg = ServeConfig {
            max_slots: 1,
            kv_mode: KvMode::Slab,
            ..ServeConfig::default()
        };
        let (_, out) = continuous(&b, &cfg, vec![lo, hi]).unwrap();
        let finish = |id: u64| {
            out.responses
                .iter()
                .find(|r| r.id == id)
                .map(|r| r.finish_us)
                .unwrap_or(u64::MAX)
        };
        assert!(finish(1) < finish(0), "priority 2 must finish first");
    }

    #[test]
    fn explicit_cancel_is_terminal_and_reclaims_kv() {
        let b = AnalyticBackend::opt_30b();
        let token = crate::request::CancelToken::never();
        // Cancel lands mid-generation: OPT-30B virtual steps take
        // hundreds of ms, so t=2s (virtual) is well inside a 32-token
        // generation but after the first tokens.
        token.cancel_at_us(2_000_000);
        let cancelled = Request::new(0, vec![1, 2, 3], 32).with_cancel(token);
        let survivor = Request::new(1, vec![4, 5], 8);
        let (_, out) =
            continuous(&b, &ServeConfig::default(), vec![cancelled, survivor]).unwrap();
        assert_eq!(out.terminal_count(), 2);
        assert_eq!(out.cancellations.len(), 1);
        let c = &out.cancellations[0];
        assert_eq!(c.id, 0);
        assert_eq!(c.reason, crate::request::CancelReason::Explicit);
        assert!(c.cancel_us >= 2_000_000);
        assert_eq!(out.kv_leaked_bytes, 0, "lease must return on cancel");
        assert!(out.responses.iter().any(|r| r.id == 1));
        assert!(out.stats.admissions_balanced(), "{:?}", out.stats);
    }

    #[test]
    fn disconnect_storm_resolves_every_request_without_leaks() {
        use lm_fault::{FaultConfig, FaultInjector, StormProfile};
        let (b, reqs) = traffic(24);
        let n = reqs.len();
        let cfg = ServeConfig {
            fault: FaultInjector::new(FaultConfig::storm(9, StormProfile::Disconnects)),
            ..ServeConfig::default()
        };
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert_eq!(out.terminal_count(), n);
        assert!(
            !out.cancellations.is_empty(),
            "a 40% disconnect rate over 24 requests must cancel some"
        );
        assert_eq!(out.kv_leaked_bytes, 0);
        assert!(out.stats.admissions_balanced(), "{:?}", out.stats);
        for c in &out.cancellations {
            assert_eq!(c.reason, crate::request::CancelReason::ClientDisconnect);
        }
    }

    #[test]
    fn crash_survivors_resume_with_identical_token_streams() {
        use lm_fault::{FaultConfig, FaultInjector, StormProfile};
        let (b, reqs) = traffic(16);
        let calm = continuous(&b, &ServeConfig::default(), reqs.clone())
            .unwrap()
            .1;
        let cfg = ServeConfig {
            fault: FaultInjector::new(FaultConfig::storm(4, StormProfile::Crashes)),
            ..ServeConfig::default()
        };
        let mut events: Vec<TokenEvent> = Vec::new();
        let (_, stormy) =
            continuous_with(&b, &cfg, reqs, &mut |e| events.push(e)).unwrap();
        assert!(stormy.stats.slot_crashes > 0, "30% crash rate must fire");
        assert_eq!(stormy.kv_leaked_bytes, 0);
        assert!(stormy.stats.admissions_balanced(), "{:?}", stormy.stats);
        // Completed-under-storm responses carry the exact same tokens as
        // the calm run — resumption re-pays prefill, never re-emits.
        for r in &stormy.responses {
            let calm_r = calm.responses.iter().find(|c| c.id == r.id).unwrap();
            assert_eq!(r.tokens, calm_r.tokens, "request {}", r.id);
            let streamed: Vec<u32> = events
                .iter()
                .filter(|e| e.request_id == r.id)
                .map(|e| e.token)
                .collect();
            assert_eq!(streamed, r.tokens, "stream must not duplicate tokens");
        }
    }

    /// The LMA260-safe way to pick a test objective: just above the
    /// plan's physical floor, so the policy is feasible but any real
    /// queueing predicts a violation.
    fn tight_slo(b: &AnalyticBackend, cfg: &ServeConfig, headroom: f64) -> f64 {
        let plan = crate::admission::plan_admission(b, cfg).unwrap();
        let floor =
            b.prefill_seconds(plan.slot_context, plan.slots) + plan.est_step_seconds;
        floor * headroom
    }

    #[test]
    fn slo_enforcement_preempts_low_priority_for_high() {
        use crate::slo::SloPolicy;
        let b = AnalyticBackend::opt_30b();
        // One slot; a long low-priority request holds it when a burst of
        // high-priority work arrives behind an unmeetable predicted p99.
        let hog = Request::new(0, vec![1, 2], 60).with_priority(0);
        let urgent: Vec<Request> = (1..4)
            .map(|i| {
                Request::new(i, vec![3, 4], 6)
                    .with_priority(2)
                    .with_arrival_us(1_000)
            })
            .collect();
        let mut reqs = vec![hog];
        reqs.extend(urgent);
        let mut cfg = ServeConfig {
            max_slots: 1,
            ..ServeConfig::default()
        };
        cfg.slo = Some(SloPolicy {
            shed: false, // isolate the preemption actuator
            ..SloPolicy::enforcing(tight_slo(&b, &cfg, 1.05))
        });
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert!(out.stats.preemptions > 0, "{:?}", out.stats);
        assert_eq!(out.terminal_count(), 4);
        assert_eq!(out.kv_leaked_bytes, 0);
        assert!(out.stats.admissions_balanced(), "{:?}", out.stats);
        // The hog still finishes (resumed after the urgent work) with an
        // uncorrupted stream.
        let hog_r = out.responses.iter().find(|r| r.id == 0).unwrap();
        assert_eq!(hog_r.tokens.len(), 60);
        // And urgent work finishes before it.
        for r in out.responses.iter().filter(|r| r.id != 0) {
            assert!(r.finish_us < hog_r.finish_us, "urgent must finish first");
        }
    }

    #[test]
    fn slo_shedding_rejects_doomed_admissions_up_front() {
        use crate::slo::SloPolicy;
        let (b, reqs) = traffic(24);
        let mut cfg = ServeConfig {
            max_slots: 2, // starve the queue so predicted TTFTs blow up
            ..ServeConfig::default()
        };
        cfg.slo = Some(SloPolicy {
            preempt: false, // isolate the shedding actuator
            ..SloPolicy::enforcing(tight_slo(&b, &cfg, 1.5))
        });
        let n = reqs.len();
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert_eq!(out.terminal_count(), n);
        assert!(out.stats.shed > 0, "{:?}", out.stats);
        assert!(out
            .rejections
            .iter()
            .any(|r| matches!(r.reason, RejectReason::WouldMissDeadline { .. })));
        assert_eq!(out.deadline_misses, out.stats.shed, "sheds count as misses");
        assert_eq!(out.kv_leaked_bytes, 0);
    }

    #[test]
    fn degrade_ladder_climbs_when_preemption_cannot_help() {
        use crate::slo::{SloPolicy, StaticLadder};
        use std::sync::Arc;
        let (b, reqs) = traffic(24);
        // Uniform priorities: preemption never finds a strictly-lower
        // victim, so the monitor must fall through to the ladder.
        let reqs: Vec<Request> = reqs.into_iter().map(|r| r.with_priority(1)).collect();
        let mut cfg = ServeConfig {
            max_slots: 2,
            ladder: Some(Arc::new(StaticLadder::geometric(4, 0.7))),
            ..ServeConfig::default()
        };
        cfg.slo = Some(SloPolicy {
            shed: false,
            ..SloPolicy::enforcing(tight_slo(&b, &cfg, 1.5))
        });
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert!(out.stats.degradations > 0, "{:?}", out.stats);
        assert_eq!(out.stats.preemptions, 0);
        assert!(out.stats.admissions_balanced(), "{:?}", out.stats);
    }

    #[test]
    fn baselines_report_deadline_misses_without_enforcing() {
        let b = AnalyticBackend::opt_30b();
        // Arrives immediately but sequential service reaches it late;
        // static batch (size 2) waits for the late second arrival.
        let doomed = Request::new(0, vec![1, 2], 4).with_deadline_us(10);
        let hog = Request::new(1, vec![1; 64], 40);
        let late = Request::new(2, vec![3], 4).with_arrival_us(50_000_000);
        let seq = sequential(
            &b,
            &ServeConfig::default(),
            vec![hog.clone(), doomed.clone().with_arrival_us(1000)],
        )
        .unwrap();
        assert_eq!(seq.deadline_misses, 1, "service starts after the deadline");
        assert_eq!(seq.responses.len(), 2, "reported, not enforced");
        let stat = static_batch(&b, &ServeConfig::default(), 2, vec![doomed, late]).unwrap();
        assert_eq!(stat.deadline_misses, 1, "batch forms after the deadline");
        assert_eq!(stat.responses.len(), 2);
    }

    #[test]
    fn fault_injected_pool_pressure_is_retried() {
        use lm_fault::{FaultConfig, FaultInjector, RetryPolicy};
        let b = AnalyticBackend::opt_30b();
        let fault = FaultInjector::new(FaultConfig {
            pool_pressure_rate: 0.4,
            pool_pressure_bytes: u64::MAX / 2, // any spike fails the alloc
            ..FaultConfig::quiescent(5)
        });
        let cfg = ServeConfig {
            fault: fault.clone(),
            retry: RetryPolicy::fast_test(),
            ..ServeConfig::default()
        };
        let reqs = synth_traffic(3, 8.0, 10, b.model());
        let n = reqs.len();
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert_eq!(out.responses.len() + out.rejections.len(), n);
        // With p=0.4 per attempt and 5 attempts, some admission must have
        // needed a retry (probability of zero retries over 10 admissions
        // is (0.6)^10 ≈ 0.6% — and the stream is seed-deterministic).
        assert!(
            fault.stats().retries > 0,
            "expected admission retries under pool pressure"
        );
        assert!(!out.responses.is_empty());
    }

    #[test]
    fn lifecycle_record_covers_every_request_and_balances() {
        let (b, reqs) = traffic(16);
        let ids: Vec<u64> = reqs.iter().map(|r| r.id).collect();
        let (_, out) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        let obs = &out.obs;
        // Every request is queued exactly once per (re-)entry and every
        // response has matching Admitted/Done events.
        for id in &ids {
            assert!(
                obs.lifecycle
                    .iter()
                    .any(|e| e.request == *id && e.phase == RequestPhase::Queued),
                "request {id} never queued"
            );
        }
        let count = |phase: RequestPhase| {
            obs.lifecycle.iter().filter(|e| e.phase == phase).count() as u64
        };
        assert_eq!(count(RequestPhase::Admitted), out.stats.admitted);
        assert_eq!(count(RequestPhase::Done), out.stats.completed);
        assert_eq!(count(RequestPhase::Prefill), out.stats.admitted);
        assert_eq!(count(RequestPhase::Decode), out.generated_tokens);
        // Admitted events carry a slot within the plan; timestamps are
        // non-decreasing (virtual clock only moves forward).
        // (fresh Queued events are stamped at arrival, which can predate
        // the boundary that collected them — every other phase is
        // clock-ordered.)
        assert!(obs
            .lifecycle
            .windows(2)
            .all(|w| w[0].t_us <= w[1].t_us || w[1].phase == RequestPhase::Queued));
        // TTFT audit pairs exist for every first token delivered.
        assert_eq!(obs.ttft.len(), out.responses.len());
        // Boundary samples close the run: the last one is idle.
        let last = obs.boundaries.last().unwrap();
        assert_eq!(last.active_slots, 0);
        assert!((last.t_us as f64 / 1e6 - out.sim_seconds).abs() < 1e-9);
    }

    #[test]
    fn obs_record_is_replay_deterministic() {
        let (b, reqs) = traffic(12);
        let (_, a) = continuous(&b, &ServeConfig::default(), reqs.clone()).unwrap();
        let (_, c) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        assert_eq!(a.obs, c.obs);
    }

    #[test]
    fn drift_audit_holds_on_the_analytic_backend_at_default_seed() {
        let (b, reqs) = traffic(32);
        let (plan, out) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        let report = out.obs.audit(&plan);
        let ttft = report.metric("ttft_mean_s").unwrap();
        assert!(ttft.predicted > 0.0 && ttft.observed > 0.0);
        // DESIGN.md §13 documents the serve-path tolerance: the TTFT
        // queueing estimate must land within 35% of the realized mean.
        let r = ttft.ratio.unwrap();
        assert!((r - 1.0).abs() <= 0.35, "ttft drift ratio {r}");
        let occ = report.metric("slot_occupancy_mean").unwrap();
        assert!(
            (occ.ratio.unwrap() - 1.0).abs() <= 0.15,
            "occupancy drift {:?}",
            occ
        );
    }

    #[test]
    fn flight_recorder_sees_scheduler_decisions_and_slo_breach_freezes() {
        use crate::slo::SloPolicy;
        use lm_trace::FlightRecorder;
        let (b, reqs) = traffic(24);
        let flight = FlightRecorder::new(64);
        let mut cfg = ServeConfig {
            flight: flight.clone(),
            tracer: lm_trace::Tracer::new(),
            max_slots: 2,
            ..ServeConfig::default()
        };
        // Observe-only SLO with a floor-level objective: breaches are
        // observed (and freeze the recorder) without actuators firing.
        cfg.slo = Some(SloPolicy::observe(tight_slo(&b, &cfg, 1.01)));
        let (_, out) = continuous(&b, &cfg, reqs).unwrap();
        assert!(out.stats.admitted > 0);
        let dump = flight.dump().expect("queueing past the floor must breach");
        assert!(dump.reason.starts_with("slo_breach"), "{}", dump.reason);
        assert!(
            dump.events.iter().any(|e| e.category == "sched"),
            "scheduler decisions must be in the ring"
        );
        assert!(
            dump.metrics.histograms.contains_key("serve.ttft_s"),
            "frozen metrics ride along"
        );
    }

    #[test]
    fn serve_timeline_exports_slot_tracks() {
        let (b, reqs) = traffic(8);
        let (plan, out) = continuous(&b, &ServeConfig::default(), reqs).unwrap();
        let trace = crate::obs::serve_timeline(&plan, &out.obs);
        let v = trace.to_value();
        let events = v["traceEvents"].as_array().unwrap();
        assert!(events
            .iter()
            .any(|e| e["name"].as_str() == Some("prefill")));
        assert!(events.iter().any(|e| e["ph"].as_str() == Some("C")));
        assert!(events.iter().any(|e| {
            e["name"].as_str().is_some_and(|n| n.ends_with("[done]"))
        }));
    }
}
