//! The disk tier: weights at rest in a checkpoint file, loaded layer by
//! layer into host memory — the `T_init` path of Eq. 1 / Figure 2 step
//! 1.1 ("loading weights from hard drive to CPU memory"), executed with
//! real file I/O.
//!
//! The format is a simple self-describing binary container (magic +
//! version + per-layer records of the projection/MLP/norm tensors), so a
//! checkpoint written once can be memory-mapped... read back on any
//! little-endian platform without external dependencies.

use crate::model::LayerWeights;
use lm_fault::{FaultInjector, RetryError, RetryPolicy};
use lm_models::{Family, ModelConfig};
use lm_tensor::{Linear, Tensor, WeightStore as LinearStore};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"LMOF";
const VERSION: u32 = 1;

/// Errors from checkpoint I/O.
#[derive(Debug)]
pub enum CheckpointError {
    Io(std::io::Error),
    Format(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn write_f32s(w: &mut impl Write, data: &[f32]) -> std::io::Result<()> {
    for &x in data {
        w.write_all(&x.to_le_bytes())?;
    }
    Ok(())
}

fn read_f32s(r: &mut impl Read, n: usize) -> Result<Vec<f32>, CheckpointError> {
    let mut bytes = vec![0u8; n * 4];
    r.read_exact(&mut bytes)?;
    Ok(bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect())
}

fn write_u32(w: &mut impl Write, x: u32) -> std::io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> Result<u32, CheckpointError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_linear(w: &mut impl Write, l: &Linear) -> Result<(), CheckpointError> {
    let full = l.weight.materialize();
    write_u32(w, l.out_features as u32)?;
    write_u32(w, l.in_features as u32)?;
    write_u32(w, l.bias.is_some() as u32)?;
    write_f32s(w, full.data())?;
    if let Some(b) = &l.bias {
        write_f32s(w, b)?;
    }
    Ok(())
}

fn read_linear(r: &mut impl Read) -> Result<Linear, CheckpointError> {
    let out = read_u32(r)? as usize;
    let inf = read_u32(r)? as usize;
    let has_bias = read_u32(r)? != 0;
    if out == 0 || inf == 0 || out.saturating_mul(inf) > (1 << 31) {
        return Err(CheckpointError::Format(format!(
            "implausible linear shape {out}x{inf}"
        )));
    }
    let data = read_f32s(r, out * inf)?;
    let bias = if has_bias {
        Some(read_f32s(r, out)?)
    } else {
        None
    };
    Ok(Linear {
        weight: LinearStore::Full(Tensor::from_vec([out, inf], data)),
        bias,
        in_features: inf,
        out_features: out,
    })
}

fn write_vec(w: &mut impl Write, v: &[f32]) -> Result<(), CheckpointError> {
    write_u32(w, v.len() as u32)?;
    write_f32s(w, v)?;
    Ok(())
}

fn read_vec(r: &mut impl Read) -> Result<Vec<f32>, CheckpointError> {
    let n = read_u32(r)? as usize;
    if n > (1 << 24) {
        return Err(CheckpointError::Format(format!("implausible vector len {n}")));
    }
    read_f32s(r, n)
}

fn family_tag(f: Family) -> u32 {
    match f {
        Family::Opt => 0,
        Family::Llama => 1,
        Family::Custom => 2,
    }
}

fn family_from_tag(t: u32) -> Result<Family, CheckpointError> {
    Ok(match t {
        0 => Family::Opt,
        1 => Family::Llama,
        2 => Family::Custom,
        other => return Err(CheckpointError::Format(format!("unknown family tag {other}"))),
    })
}

/// Write a synthetic checkpoint for `cfg` to `path`, streaming one layer
/// at a time (the whole model never materialises in memory — the property
/// that makes disk-tier checkpoints useful for models larger than RAM).
/// Returns the per-layer byte offsets.
pub fn write_checkpoint(
    cfg: &ModelConfig,
    seed: u64,
    path: &Path,
) -> Result<Vec<u64>, CheckpointError> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u32(&mut w, family_tag(cfg.family))?;
    write_u32(&mut w, cfg.num_layers)?;
    // Reserve the offset table; filled after the layers are written.
    let table_pos = 16u64;
    for _ in 0..cfg.num_layers {
        w.write_all(&0u64.to_le_bytes())?;
    }
    let mut offsets = Vec::with_capacity(cfg.num_layers as usize);
    for i in 0..cfg.num_layers {
        w.flush()?;
        let pos = w.get_ref().metadata()?.len();
        offsets.push(pos);
        let layer = LayerWeights::synthesize(cfg, i, seed);
        write_layer(&mut w, &layer)?;
    }
    w.flush()?;
    let mut f = w.into_inner().map_err(|e| CheckpointError::Io(e.into_error()))?;
    f.seek(SeekFrom::Start(table_pos))?;
    for &o in &offsets {
        f.write_all(&o.to_le_bytes())?;
    }
    f.sync_all()?;
    Ok(offsets)
}

fn write_layer(w: &mut impl Write, l: &LayerWeights) -> Result<(), CheckpointError> {
    write_vec(w, &l.ln1_gamma)?;
    write_vec(w, &l.ln1_beta)?;
    write_linear(w, &l.q)?;
    write_linear(w, &l.k)?;
    write_linear(w, &l.v)?;
    write_linear(w, &l.o)?;
    write_vec(w, &l.ln2_gamma)?;
    write_vec(w, &l.ln2_beta)?;
    write_u32(w, l.mlp.len() as u32)?;
    for m in &l.mlp {
        write_linear(w, m)?;
    }
    Ok(())
}

/// A checkpoint opened for layer-granular reads.
#[derive(Debug)]
pub struct Checkpoint {
    file: File,
    offsets: Vec<u64>,
    family: Family,
}

impl Checkpoint {
    pub fn open(path: &Path) -> Result<Self, CheckpointError> {
        let mut file = File::open(path)?;
        let mut magic = [0u8; 4];
        file.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::Format("bad magic".into()));
        }
        let version = read_u32(&mut file)?;
        if version != VERSION {
            return Err(CheckpointError::Format(format!("unsupported version {version}")));
        }
        let family = family_from_tag(read_u32(&mut file)?)?;
        let num_layers = read_u32(&mut file)? as usize;
        if num_layers == 0 || num_layers > 1 << 16 {
            return Err(CheckpointError::Format(format!("implausible layer count {num_layers}")));
        }
        let mut offsets = Vec::with_capacity(num_layers);
        for _ in 0..num_layers {
            let mut b = [0u8; 8];
            file.read_exact(&mut b)?;
            offsets.push(u64::from_le_bytes(b));
        }
        Ok(Checkpoint {
            file,
            offsets,
            family,
        })
    }

    pub fn num_layers(&self) -> usize {
        self.offsets.len()
    }

    pub fn family(&self) -> Family {
        self.family
    }

    /// Read one layer from disk.
    pub fn load_layer(&mut self, idx: usize) -> Result<LayerWeights, CheckpointError> {
        self.load_layer_attempt(idx, &FaultInjector::disabled(), 0)
    }

    /// [`Checkpoint::load_layer`] with fault injection: the read may fail
    /// with an injected I/O error, or tear — deliver only a prefix of the
    /// layer. Either way the result is a clean error and no partial
    /// `LayerWeights` ever escapes.
    pub fn load_layer_attempt(
        &mut self,
        idx: usize,
        fault: &FaultInjector,
        attempt: u32,
    ) -> Result<LayerWeights, CheckpointError> {
        if fault.disk_error("disk.load_layer", idx as u64, attempt) {
            return Err(CheckpointError::Io(std::io::Error::other(format!(
                "injected disk I/O error reading layer {idx}"
            ))));
        }
        let layer = self.read_layer_records(idx)?;
        if let Some(frac) = fault.torn_read("disk.load_layer", idx as u64, attempt) {
            // The full read happened, but the fault plan says only a
            // prefix reached memory: discard everything.
            return Err(CheckpointError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                format!(
                    "torn read: layer {idx} delivered only {:.0}% of its bytes",
                    frac * 100.0
                ),
            )));
        }
        Ok(layer)
    }

    /// [`Checkpoint::load_layer`] under a retry policy: transient faults
    /// are retried with exponential backoff until the policy's attempt or
    /// deadline budget runs out, at which point the *last* error (or a
    /// timeout) is returned — never a panic, never a partial layer.
    pub fn load_layer_with_retry(
        &mut self,
        idx: usize,
        fault: &FaultInjector,
        retry: &RetryPolicy,
    ) -> Result<LayerWeights, CheckpointError> {
        let mut retried = false;
        // Two disjoint captures: `op` borrows `self` mutably, `on_retry`
        // only touches the injector's shared counters.
        let retried_flag = &mut retried;
        let out = retry.run(
            |attempt| self.load_layer_attempt(idx, fault, attempt),
            |_, _| {
                *retried_flag = true;
                fault.note_retry();
            },
        );
        match out {
            Ok(layer) => {
                if retried {
                    fault.note_retry_success();
                }
                Ok(layer)
            }
            Err(RetryError::DeadlineExceeded { elapsed, last }) => {
                Err(CheckpointError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("layer {idx} read deadline exceeded after {elapsed:?}: {last}"),
                )))
            }
            Err(RetryError::AttemptsExhausted { last, .. }) => Err(last),
        }
    }

    fn read_layer_records(&mut self, idx: usize) -> Result<LayerWeights, CheckpointError> {
        let off = *self
            .offsets
            .get(idx)
            .ok_or_else(|| CheckpointError::Format(format!("layer {idx} out of range")))?;
        self.file.seek(SeekFrom::Start(off))?;
        let mut r = BufReader::new(&self.file);
        let ln1_gamma = read_vec(&mut r)?;
        let ln1_beta = read_vec(&mut r)?;
        let q = read_linear(&mut r)?;
        let k = read_linear(&mut r)?;
        let v = read_linear(&mut r)?;
        let o = read_linear(&mut r)?;
        let ln2_gamma = read_vec(&mut r)?;
        let ln2_beta = read_vec(&mut r)?;
        let mlp_count = read_u32(&mut r)? as usize;
        if mlp_count == 0 || mlp_count > 4 {
            return Err(CheckpointError::Format(format!("implausible MLP count {mlp_count}")));
        }
        let mut mlp = Vec::with_capacity(mlp_count);
        for _ in 0..mlp_count {
            mlp.push(read_linear(&mut r)?);
        }
        Ok(LayerWeights {
            ln1_gamma,
            ln1_beta,
            q,
            k,
            v,
            o,
            ln2_gamma,
            ln2_beta,
            mlp,
            family: self.family,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;
    use lm_tensor::KvCache;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("lmoffload-test-{name}-{}.ckpt", std::process::id()))
    }

    #[test]
    fn checkpoint_round_trips_layer_for_layer() {
        let cfg = presets::tiny_test();
        let path = tmp("roundtrip");
        write_checkpoint(&cfg, 42, &path).unwrap();
        let mut ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.num_layers(), cfg.num_layers as usize);
        for i in 0..cfg.num_layers {
            let from_disk = ck.load_layer(i as usize).unwrap();
            let reference = LayerWeights::synthesize(&cfg, i, 42);
            // Identical forward behaviour proves identical weights.
            let x = Tensor::randn([2, 64], 1.0, 9);
            let mut c1 = KvCache::new(2, 64, 2);
            let mut c2 = KvCache::new(2, 64, 2);
            let a = from_disk.forward_decode(&x, &mut c1, 4, 0);
            let b = reference.forward_decode(&x, &mut c2, 4, 0);
            assert!(a.allclose(&b, 0.0), "layer {i} differs");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn llama_family_survives_disk() {
        let mut cfg = presets::tiny_test();
        cfg.family = Family::Llama;
        cfg.ffn_hidden = 256;
        let path = tmp("llama");
        write_checkpoint(&cfg, 7, &path).unwrap();
        let mut ck = Checkpoint::open(&path).unwrap();
        assert_eq!(ck.family(), Family::Llama);
        let l = ck.load_layer(0).unwrap();
        assert_eq!(l.mlp.len(), 3, "SwiGLU has three matrices");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_magic_rejected() {
        let path = tmp("corrupt");
        std::fs::write(&path, b"NOPE____________").unwrap();
        match Checkpoint::open(&path) {
            Err(CheckpointError::Format(m)) => assert!(m.contains("magic")),
            other => panic!("expected format error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_layer_rejected() {
        let cfg = presets::tiny_test();
        let path = tmp("range");
        write_checkpoint(&cfg, 1, &path).unwrap();
        let mut ck = Checkpoint::open(&path).unwrap();
        assert!(ck.load_layer(99).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_size_matches_f32_weights() {
        let cfg = presets::tiny_test();
        let path = tmp("size");
        write_checkpoint(&cfg, 3, &path).unwrap();
        let bytes = std::fs::metadata(&path).unwrap().len();
        let weights = lm_models::footprint::weights_bytes(&cfg, lm_models::DType::F32);
        // Weights dominate; headers/norms/biases add a few percent.
        assert!(bytes as f64 > weights as f64);
        assert!((bytes as f64) < weights as f64 * 1.15, "{bytes} vs {weights}");
        std::fs::remove_file(&path).ok();
    }
}
