//! `repro async` — the real-time serving lane (DESIGN.md §16): drive
//! the continuous scheduler through `ServeSession::run_async` on the
//! *real* miniature engine, with per-request tokio token streams
//! consumed concurrently on a worker runtime, and prove that going
//! async changes *when* tokens arrive but never *which* tokens arrive:
//!
//! 1. **Transparency**: every completed request's response tokens equal
//!    a solo `Engine::run` of the same prompt, and the tokens observed
//!    on the stream equal the tokens in the response;
//! 2. **Disconnects reclaim**: a client that drops its receiver
//!    mid-stream resolves as a `ClientDisconnect` cancellation with
//!    zero leaked KV bytes and pages;
//! 3. **Total resolution**: responses + rejections + cancellations
//!    conserve the request count.
//!
//! Wall-clock TTFT/throughput are *recorded* (they feed the
//! `serve_async` rows of `BENCH_serve.json`) but never byte-compared:
//! the modelled run is compressed onto the wall via
//! [`AsyncConfig::time_scale`], so absolute wall numbers are
//! machine-dependent by design. Everything the gates judge is
//! wall-independent.

use crate::perf::BenchRow;
use lm_engine::GenerateRequest;
use lm_serve::{AsyncConfig, CancelReason, EngineBackend, Request, ServeSession};
use serde::{Deserialize, Serialize};
use std::time::Instant;

pub const DEFAULT_SEED: u64 = 7;
pub const DEFAULT_REQUESTS: usize = 9;

/// Wall-clock budget the virtual run is compressed into. Small enough
/// to keep `scripts/verify.sh` fast, large enough that pacing (not
/// compute) dominates and backpressure/disconnect windows are real.
const TARGET_WALL_S: f64 = 0.25;

/// Streams are dropped after this many delivered tokens (every third
/// request), well before any `gen_len`, so the disconnect is observed
/// mid-generation while KV is still leased.
const DROP_AFTER_TOKENS: usize = 2;

/// One consumed stream, as the tokio client task saw it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamRow {
    pub request_id: u64,
    /// Tokens observed on the channel before it closed (or was dropped).
    pub streamed_tokens: Vec<u32>,
    /// Whether this client dropped its receiver mid-stream on purpose.
    pub dropped_mid_stream: bool,
    /// Wall seconds from session start to the first token. Recorded,
    /// never gated byte-exactly.
    pub wall_ttft_s: Option<f64>,
}

/// Everything `repro async` reports (`results/async.json`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AsyncReport {
    pub seed: u64,
    pub requests: usize,
    pub channel_capacity: usize,
    /// Virtual µs per wall µs, calibrated so the modelled run fits
    /// [`TARGET_WALL_S`].
    pub time_scale: f64,
    /// The virtual-clock duration of the same traffic (the calibration
    /// run) — deterministic.
    pub virtual_sim_seconds: f64,
    /// Async-path virtual duration — deterministic gates never compare
    /// it to the calibration run (wall jitter feeds the clock).
    pub async_sim_seconds: f64,
    pub completed: usize,
    pub rejected: usize,
    pub disconnects: usize,
    pub streams: Vec<StreamRow>,
    /// Wall-clock observations (recorded, not byte-gated).
    pub wall_seconds: f64,
    pub wall_ttft_mean_s: f64,
    pub wall_tokens_per_s: f64,
    /// Gate 1: responses equal solo `Engine::run`; streamed prefixes
    /// equal the response tokens.
    pub transparency_ok: bool,
    /// Gate 2: dropped receivers resolved as `ClientDisconnect` with
    /// zero leaked KV bytes/pages.
    pub zero_leak_ok: bool,
    /// Gate 3: every request reached exactly one terminal state and
    /// admissions balance.
    pub total_resolution_ok: bool,
    /// At least one mid-stream disconnect actually exercised the path.
    pub disconnect_ok: bool,
    pub async_ok: bool,
}

/// The tiny-engine request set: ragged prompts and generation lengths,
/// arrivals spread so admission interleaves with decode.
fn traffic(n: usize) -> Vec<Request> {
    (0..n)
        .map(|i| {
            let plen = 2 + (i % 5);
            let prompt: Vec<u32> = (0..plen as u32).map(|t| 1 + (t * 7 + i as u32) % 90).collect();
            Request::new(i as u64, prompt, 6 + i % 4).with_arrival_us(i as u64 * 10_000)
        })
        .collect()
}

/// The `serve_async` rows merged into `BENCH_serve.json` by `repro`.
pub fn bench_rows(r: &AsyncReport) -> Vec<BenchRow> {
    vec![
        BenchRow {
            bench: format!("serve_async/{}req", r.requests),
            metric: "wall_time".to_string(),
            value: r.wall_seconds * 1e3,
            unit: "ms".to_string(),
        },
        BenchRow {
            bench: format!("serve_async/{}req", r.requests),
            metric: "wall_ttft_mean".to_string(),
            value: r.wall_ttft_mean_s * 1e3,
            unit: "ms".to_string(),
        },
        BenchRow {
            bench: format!("serve_async/{}req", r.requests),
            metric: "wall_tokens_per_s".to_string(),
            value: r.wall_tokens_per_s,
            unit: "tok/s".to_string(),
        },
    ]
}

/// Run the async lane: calibrate the time scale on the virtual clock,
/// then serve the same traffic in real time with streaming clients.
pub fn run(seed: u64, n: usize) -> AsyncReport {
    let backend = EngineBackend::tiny_test(seed)
        .unwrap_or_else(|e| panic!("tiny engine backend failed: {e}"));
    let requests = traffic(n);

    // Calibration: the deterministic virtual run of the same traffic
    // sizes the wall compression and is the transparency reference for
    // scheduling (the token values themselves come from solo runs).
    let session = ServeSession::new(&backend);
    let virtual_out = session
        .run(requests.clone())
        .unwrap_or_else(|e| panic!("virtual calibration run failed: {e}"))
        .outcome;
    let time_scale = (virtual_out.sim_seconds / TARGET_WALL_S).max(1.0);

    let acfg = AsyncConfig {
        time_scale,
        ..AsyncConfig::default()
    };
    let wall_start = Instant::now();
    let (served, mut streams) = session
        .run_async(requests.clone(), &acfg, |mut streams| {
            let rt = tokio::runtime::Runtime::new()
                .unwrap_or_else(|e| panic!("tokio runtime failed to start: {e}"));
            let t0 = Instant::now();
            let handles: Vec<_> = streams
                .drain()
                .into_iter()
                .map(|(id, mut rx)| {
                    let drop_mid_stream = id % 3 == 2;
                    let handle = rt.spawn(async move {
                        let mut tokens: Vec<u32> = Vec::new();
                        let mut first: Option<f64> = None;
                        while let Some(ev) = rx.recv().await {
                            first.get_or_insert_with(|| t0.elapsed().as_secs_f64());
                            tokens.push(ev.token);
                            if drop_mid_stream && tokens.len() >= DROP_AFTER_TOKENS {
                                break; // rx drops here: a mid-stream disconnect
                            }
                        }
                        (tokens, first)
                    });
                    (id, drop_mid_stream, handle)
                })
                .collect();
            handles
                .into_iter()
                .map(|(id, dropped, h)| {
                    let (streamed_tokens, wall_ttft_s) = rt
                        .join(h)
                        .unwrap_or_else(|e| panic!("stream client task failed: {e}"));
                    StreamRow {
                        request_id: id,
                        streamed_tokens,
                        dropped_mid_stream: dropped,
                        wall_ttft_s,
                    }
                })
                .collect::<Vec<StreamRow>>()
        })
        .unwrap_or_else(|e| panic!("async serving failed: {e}"));
    let wall_seconds = wall_start.elapsed().as_secs_f64();
    let out = served.outcome;
    streams.sort_by_key(|s| s.request_id);

    // Gate 1 — transparency: completed responses equal solo runs, and
    // what each surviving client saw is exactly the response stream.
    let mut transparency_ok = true;
    for r in &out.responses {
        let req = &requests[r.id as usize];
        let solo = backend
            .engine()
            .run(&GenerateRequest::new(vec![req.prompt.clone()], req.gen_len))
            .unwrap_or_else(|e| panic!("solo reference run failed: {e}"));
        transparency_ok &= r.tokens == solo.tokens[0];
        if let Some(s) = streams.iter().find(|s| s.request_id == r.id) {
            if !s.dropped_mid_stream {
                transparency_ok &= s.streamed_tokens == r.tokens;
            }
        }
    }
    // Dropped clients must have seen a strict prefix of *some* valid
    // stream: compare against the solo run of their own request.
    for s in streams.iter().filter(|s| s.dropped_mid_stream) {
        let req = &requests[s.request_id as usize];
        let solo = backend
            .engine()
            .run(&GenerateRequest::new(vec![req.prompt.clone()], req.gen_len))
            .unwrap_or_else(|e| panic!("solo reference run failed: {e}"));
        transparency_ok &= solo.tokens[0].starts_with(&s.streamed_tokens);
    }

    let disconnects = out
        .cancellations
        .iter()
        .filter(|c| c.reason == CancelReason::ClientDisconnect)
        .count();
    let zero_leak_ok = out.kv_leaked_bytes == 0 && out.kv_pages_leaked == 0;
    let total_resolution_ok = out.terminal_count() == n && out.stats.admissions_balanced();
    let disconnect_ok = disconnects >= 1;
    let async_ok = transparency_ok && zero_leak_ok && total_resolution_ok && disconnect_ok;

    let ttfts: Vec<f64> = streams.iter().filter_map(|s| s.wall_ttft_s).collect();
    let wall_ttft_mean_s = if ttfts.is_empty() {
        0.0
    } else {
        ttfts.iter().sum::<f64>() / ttfts.len() as f64
    };

    AsyncReport {
        seed,
        requests: n,
        channel_capacity: acfg.channel_capacity,
        time_scale,
        virtual_sim_seconds: virtual_out.sim_seconds,
        async_sim_seconds: out.sim_seconds,
        completed: out.responses.len(),
        rejected: out.rejections.len(),
        disconnects,
        streams,
        wall_seconds,
        wall_ttft_mean_s,
        wall_tokens_per_s: if wall_seconds > 0.0 {
            out.generated_tokens as f64 / wall_seconds
        } else {
            0.0
        },
        transparency_ok,
        zero_leak_ok,
        total_resolution_ok,
        disconnect_ok,
        async_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn async_lane_passes_every_gate_at_the_default_seed() {
        let r = run(DEFAULT_SEED, DEFAULT_REQUESTS);
        assert!(
            r.async_ok,
            "transparency={} zero_leak={} resolution={} disconnect={} ({} completed, {} disconnects)",
            r.transparency_ok,
            r.zero_leak_ok,
            r.total_resolution_ok,
            r.disconnect_ok,
            r.completed,
            r.disconnects
        );
        assert!(r.time_scale >= 1.0);
        assert!(r.wall_seconds > 0.0);
    }

    #[test]
    fn bench_rows_carry_the_wall_metrics() {
        let r = AsyncReport {
            seed: 1,
            requests: 4,
            channel_capacity: 32,
            time_scale: 10.0,
            virtual_sim_seconds: 2.5,
            async_sim_seconds: 2.6,
            completed: 3,
            rejected: 0,
            disconnects: 1,
            streams: Vec::new(),
            wall_seconds: 0.25,
            wall_ttft_mean_s: 0.05,
            wall_tokens_per_s: 120.0,
            transparency_ok: true,
            zero_leak_ok: true,
            total_resolution_ok: true,
            disconnect_ok: true,
            async_ok: true,
        };
        let rows = bench_rows(&r);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|row| row.bench == "serve_async/4req"));
        assert!(rows.iter().any(|row| row.metric == "wall_tokens_per_s"));
    }
}
