//! Capacity planner: for every model preset, which offloading strategies
//! fit the A100 platform, and at what maximum block size — the memory
//! side of the paper's policy space.
//!
//! Run with: `cargo run --release --example capacity_planner`

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::{presets as models, DType, Footprint, Workload};
use lm_sim::{fits, max_gpu_batch, AttentionPlacement, Policy};

fn main() {
    let platform = hw::single_gpu_a100();
    let base = Workload::new(64, 32, 64, 10);

    println!(
        "platform: {} ({} GiB GPU, {} GiB host)",
        platform.name,
        platform.gpu.mem_capacity >> 30,
        platform.cpu.mem_capacity >> 30
    );
    println!();
    println!(
        "{:<11} {:>9} {:>9} | {:^11} {:^11} {:^11}",
        "model", "wgt f16", "wgt int4", "all-on-GPU", "offload16", "offload+q4"
    );

    for model in models::all_presets() {
        if model.name == "tiny-test" {
            continue;
        }
        let fp16 = Footprint::compute(&model, &base, DType::F16, DType::F16);
        let fp4 = Footprint::compute(&model, &base, DType::Int4, DType::F16);

        let all_gpu = Policy {
            wg: 1.0,
            cg: 1.0,
            hg: 1.0,
            weights_dtype: DType::F16,
            kv_dtype: DType::F16,
            attention: AttentionPlacement::Gpu,
        };
        let offload16 = Policy::flexgen_default();
        let offload_q4 = Policy {
            weights_dtype: DType::Int4,
            kv_dtype: DType::Int4,
            attention: AttentionPlacement::Gpu,
            ..Policy::flexgen_default()
        };

        let verdict = |p: &Policy| -> String {
            if !fits(&model, &base, &platform, p) {
                return "--".to_string();
            }
            match max_gpu_batch(&model, &base, &platform, p, 64, 4096) {
                Some(b) => format!("bsz<={b}"),
                None => "fits".to_string(),
            }
        };

        println!(
            "{:<11} {:>7.0}GiB {:>7.0}GiB | {:^11} {:^11} {:^11}",
            model.name,
            fp16.weights as f64 / (1u64 << 30) as f64,
            fp4.weights as f64 / (1u64 << 30) as f64,
            verdict(&all_gpu),
            verdict(&offload16),
            verdict(&offload_q4),
        );
    }
    println!();
    println!("(-- = does not fit; bsz<=N = largest feasible per-GPU batch in steps of 64)");
    println!("Matches §3.1: 30B+ models cannot run without offloading on a 40 GiB GPU.");
}
