//! End-to-end tests of the lm-serve continuous-batching layer
//! (DESIGN.md §11): dominance over the baselines on OPT-30B-class
//! traffic, byte-level determinism, output transparency against solo
//! `Engine::run` calls on the real miniature engine, and conservation of
//! requests (every one is answered or rejected with a typed reason).
#![allow(clippy::unwrap_used)]

use lm_engine::GenerateRequest;
use lm_serve::{
    synth_traffic, AnalyticBackend, EngineBackend, RejectReason, Request, ServeBackend,
    ServeConfig, ServeMode, ServeSession,
};
use proptest::prelude::*;

/// The acceptance workload: `repro serve --rps 4 --requests 32 --seed 7`.
#[test]
fn continuous_batching_dominates_baselines_on_opt_30b_traffic() {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(7, 4.0, 32, backend.model());
    let cfg = ServeConfig::default();
    let (plan, cont) = ServeSession::new(&backend)
        .config(cfg.clone())
        .run(traffic.clone())
        .unwrap()
        .into_continuous();
    let seq = ServeSession::new(&backend)
        .config(cfg.clone())
        .mode(ServeMode::Sequential)
        .run(traffic.clone())
        .unwrap()
        .outcome;
    let stat = ServeSession::new(&backend)
        .config(cfg)
        .mode(ServeMode::Static { batch: plan.slots })
        .run(traffic)
        .unwrap()
        .outcome;

    assert!(
        cont.tokens_per_s() >= 1.3 * seq.tokens_per_s(),
        "continuous {:.3} tok/s must be >= 1.3x sequential {:.3} tok/s",
        cont.tokens_per_s(),
        seq.tokens_per_s()
    );
    assert!(
        cont.tokens_per_s() > stat.tokens_per_s(),
        "continuous {:.3} tok/s must beat static {:.3} tok/s",
        cont.tokens_per_s(),
        stat.tokens_per_s()
    );
    // The KV pool never over-commits past the linted plan.
    assert!(cont.kv_peak_bytes as u64 <= plan.kv_pool_bytes);
}

#[test]
fn serving_runs_are_bit_identical_across_repetitions() {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(7, 4.0, 32, backend.model());
    let session = ServeSession::new(&backend);
    let (plan_a, a) = session.run(traffic.clone()).unwrap().into_continuous();
    let (plan_b, b) = session.run(traffic).unwrap().into_continuous();
    assert_eq!(plan_a, plan_b);
    assert_eq!(a.responses, b.responses);
    assert_eq!(a.rejections, b.rejections);
    assert_eq!(a.sim_seconds.to_bits(), b.sim_seconds.to_bits());
    assert_eq!(a.generated_tokens, b.generated_tokens);
    assert_eq!(a.kv_peak_bytes, b.kv_peak_bytes);
}

/// Output transparency on the real engine: a request served inside a
/// continuous batch yields exactly the tokens of a solo `Engine::run`.
#[test]
fn scheduled_outputs_equal_solo_engine_runs() {
    let backend = EngineBackend::tiny_test(11).unwrap();
    let prompts: [&[u32]; 4] = [&[1, 2, 3], &[4, 5], &[6, 7, 8, 9, 10], &[11]];
    let requests: Vec<Request> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| Request::new(i as u64, p.to_vec(), 3 + i).with_arrival_us(i as u64 * 100))
        .collect();
    let out = ServeSession::new(&backend).run(requests).unwrap().outcome;
    assert_eq!(out.responses.len(), 4, "rejections: {:?}", out.rejections);
    for r in &out.responses {
        let prompt = prompts[r.id as usize].to_vec();
        let solo = backend
            .engine()
            .run(&GenerateRequest::new(vec![prompt], 3 + r.id as usize))
            .unwrap();
        assert_eq!(
            r.tokens, solo.tokens[0],
            "request {} must match its solo run",
            r.id
        );
    }
}

/// Output transparency under prefix sharing (DESIGN.md §14): requests
/// funneled through the paged pool's prefix index — both fully
/// identical prompts (which share the open tail page copy-on-write and
/// fork it mid-decode) and prompts that only share whole prefix pages —
/// must produce exactly the tokens of their solo `Engine::run`.
#[test]
fn shared_prompt_outputs_equal_solo_runs_across_cow_forks() {
    let backend = EngineBackend::tiny_test(5).unwrap();
    // 37 tokens = two full 16-token pages plus an unaligned 5-token
    // tail, so full-page sharing AND the partial-tail COW path engage.
    let system: Vec<u32> = (1..=37).collect();
    let mut requests: Vec<Request> = (0..4u64)
        .map(|i| Request::new(i, system.clone(), 3 + i as usize).with_arrival_us(i * 50))
        .collect();
    // Two more share only the aligned pages: a divergent suffix keeps
    // their tails private from admission onward.
    for i in 4..6u64 {
        let mut prompt = system.clone();
        prompt.extend([90 + i as u32, 95 + i as u32]);
        requests.push(Request::new(i, prompt, 4).with_arrival_us(i * 50));
    }
    let prompts: Vec<Vec<u32>> = requests.iter().map(|r| r.prompt.clone()).collect();
    let gens: Vec<usize> = requests.iter().map(|r| r.gen_len).collect();

    let out = ServeSession::new(&backend).run(requests).unwrap().outcome;
    assert_eq!(out.responses.len(), 6, "rejections: {:?}", out.rejections);
    assert!(
        out.shared_prefix_hits > 0,
        "identical prompts must hit the prefix index"
    );
    assert!(out.shared_tokens > 0);
    assert!(
        out.cow_forks >= 1,
        "a sharer's first divergent append must fork the shared tail"
    );
    assert_eq!(out.kv_pages_leaked, 0);
    for r in &out.responses {
        let solo = backend
            .engine()
            .run(&GenerateRequest::new(
                vec![prompts[r.id as usize].clone()],
                gens[r.id as usize],
            ))
            .unwrap();
        assert_eq!(
            r.tokens, solo.tokens[0],
            "request {} diverged from its solo run under sharing",
            r.id
        );
    }
}

#[test]
fn invalid_requests_surface_typed_rejections_not_panics() {
    let backend = EngineBackend::tiny_test(11).unwrap();
    let max = backend.model().max_seq_len as usize;
    let requests = vec![
        Request::new(0, vec![], 4),
        Request::new(1, vec![1; max], max),
        Request::new(2, vec![1, 2], 4),
    ];
    let out = ServeSession::new(&backend).run(requests).unwrap().outcome;
    assert_eq!(out.responses.len(), 1);
    assert_eq!(out.rejections.len(), 2);
    for rej in &out.rejections {
        assert!(
            matches!(rej.reason, RejectReason::Invalid(_)),
            "id {} got {:?}",
            rej.id,
            rej.reason
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any ragged batch of valid requests, the scheduler's per-request
    /// output equals the solo engine run, and responses + rejections
    /// conserve the request count.
    #[test]
    fn scheduler_is_output_transparent_for_random_traffic(
        n in 1usize..6,
        traffic_seed in 0u64..1_000,
        seed in 0u64..32,
    ) {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let backend = EngineBackend::tiny_test(seed).unwrap();
        let mut rng = SmallRng::seed_from_u64(traffic_seed);
        let requests: Vec<Request> = (0..n)
            .map(|i| {
                let plen = rng.gen_range(1usize..24);
                let glen = rng.gen_range(1usize..8);
                let arrival = rng.gen_range(0u64..5_000_000);
                let prompt: Vec<u32> =
                    (0..plen as u32).map(|t| 1 + (t * 7 + i as u32) % 100).collect();
                Request::new(i as u64, prompt, glen).with_arrival_us(arrival)
            })
            .collect();
        let n = requests.len();
        let out = ServeSession::new(&backend).run(requests.clone()).unwrap().outcome;
        prop_assert_eq!(out.responses.len() + out.rejections.len(), n);
        prop_assert_eq!(out.responses.len(), n, "all requests are valid: {:?}", out.rejections);
        for r in &out.responses {
            let req = &requests[r.id as usize];
            let solo = backend
                .engine()
                .run(&GenerateRequest::new(vec![req.prompt.clone()], req.gen_len))
                .unwrap();
            prop_assert_eq!(&r.tokens, &solo.tokens[0]);
        }
    }
}
