//! Generic policy grid search.
//!
//! FlexGen formulates offloading as an optimisation problem solved with a
//! small linear program over the placement percentages; with only a
//! handful of variables an exhaustive grid at 5% granularity is exact
//! enough and deterministic (DESIGN.md §5). The *evaluator* closure is
//! where frameworks differ: FlexGen scores policies with the base cost
//! model (no quantization terms), LM-Offload with the full Eq. 3-7 model.

use lm_models::DType;
use lm_sim::{AttentionPlacement, Policy};

/// The policy dimensions a framework's search explores.
#[derive(Debug, Clone)]
pub struct SearchSpace {
    /// Granularity of the `wg` sweep (number of steps from 0 to 1).
    pub wg_steps: usize,
    /// Candidate GPU KV-cache fractions (only meaningful with GPU
    /// attention).
    pub cg_options: Vec<f64>,
    /// Candidate activation placements.
    pub hg_options: Vec<f64>,
    /// Candidate attention placements.
    pub attention_options: Vec<AttentionPlacement>,
    /// Candidate weight precisions.
    pub weight_dtypes: Vec<DType>,
    /// Candidate KV-cache precisions.
    pub kv_dtypes: Vec<DType>,
}

impl SearchSpace {
    /// FlexGen's space: fp16 tensors only (its LP does not model
    /// quantization costs, so its search runs at the default precision),
    /// both attention placements, full `wg` sweep.
    pub fn flexgen() -> Self {
        SearchSpace {
            wg_steps: 20,
            cg_options: vec![0.0],
            hg_options: vec![0.0, 1.0],
            attention_options: vec![AttentionPlacement::Cpu, AttentionPlacement::Gpu],
            weight_dtypes: vec![DType::F16],
            kv_dtypes: vec![DType::F16],
        }
    }

    /// LM-Offload's space: additionally explores 4-bit weights and KV
    /// cache — the options its performance models can price correctly.
    pub fn lm_offload() -> Self {
        SearchSpace {
            wg_steps: 20,
            cg_options: vec![0.0],
            hg_options: vec![0.0, 1.0],
            attention_options: vec![AttentionPlacement::Cpu, AttentionPlacement::Gpu],
            weight_dtypes: vec![DType::F16, DType::Int4],
            kv_dtypes: vec![DType::F16, DType::Int4],
        }
    }

    /// Extended space with the intermediate 8-bit precision and partial
    /// GPU KV residency — dimensions the paper leaves to future work; the
    /// performance models price them for free, so the search can simply
    /// sweep them.
    pub fn lm_offload_extended() -> Self {
        SearchSpace {
            wg_steps: 20,
            cg_options: vec![0.0, 0.5, 1.0],
            hg_options: vec![0.0, 1.0],
            attention_options: vec![AttentionPlacement::Cpu, AttentionPlacement::Gpu],
            weight_dtypes: vec![DType::F16, DType::Int8, DType::Int4],
            kv_dtypes: vec![DType::F16, DType::Int8, DType::Int4],
        }
    }

    /// Enumerate every candidate policy in the space.
    pub fn candidates(&self) -> Vec<Policy> {
        let mut out = Vec::new();
        for &attention in &self.attention_options {
            let cgs: &[f64] = match attention {
                AttentionPlacement::Cpu => &[0.0],
                AttentionPlacement::Gpu => &self.cg_options,
            };
            for &wd in &self.weight_dtypes {
                for &kd in &self.kv_dtypes {
                    // Quantizing the KV cache is moot with CPU attention
                    // (it never crosses the link) — skip the redundant
                    // candidates rather than scoring duplicates.
                    if attention == AttentionPlacement::Cpu && kd != self.kv_dtypes[0] {
                        continue;
                    }
                    for &cg in cgs {
                        for &hg in &self.hg_options {
                            for step in 0..=self.wg_steps {
                                let wg = step as f64 / self.wg_steps as f64;
                                let p = Policy {
                                    wg,
                                    cg,
                                    hg,
                                    weights_dtype: wd,
                                    kv_dtype: kd,
                                    attention,
                                };
                                if p.validate().is_ok() {
                                    out.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// Exhaustively score the space with `eval` (returning `None` for
/// infeasible policies) and return the best policy with its score.
pub fn grid_search<F>(space: &SearchSpace, eval: F) -> Option<(Policy, f64)>
where
    F: Fn(&Policy) -> Option<f64>,
{
    let mut best: Option<(Policy, f64)> = None;
    for p in space.candidates() {
        if let Some(score) = eval(&p) {
            debug_assert!(score.is_finite(), "evaluator returned {score}");
            let better = best.map(|(_, b)| score > b).unwrap_or(true);
            if better {
                best = Some((p, score));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flexgen_space_is_fp16_only() {
        for p in SearchSpace::flexgen().candidates() {
            assert_eq!(p.weights_dtype, DType::F16);
            assert_eq!(p.kv_dtype, DType::F16);
        }
    }

    #[test]
    fn lm_offload_space_strictly_contains_flexgen_space() {
        let fg: Vec<_> = SearchSpace::flexgen().candidates();
        let lo: Vec<_> = SearchSpace::lm_offload().candidates();
        assert!(lo.len() > fg.len());
        for p in &fg {
            assert!(lo.iter().any(|q| q == p), "missing {p:?}");
        }
    }

    #[test]
    fn extended_space_contains_lm_offload_space_and_int8() {
        let lo: Vec<_> = SearchSpace::lm_offload().candidates();
        let ext: Vec<_> = SearchSpace::lm_offload_extended().candidates();
        assert!(ext.len() > lo.len());
        for p in &lo {
            assert!(ext.iter().any(|q| q == p), "missing {p:?}");
        }
        assert!(ext.iter().any(|p| p.weights_dtype == DType::Int8));
        assert!(ext
            .iter()
            .any(|p| p.cg > 0.0 && p.attention == AttentionPlacement::Gpu));
    }

    #[test]
    fn candidates_are_all_valid() {
        for p in SearchSpace::lm_offload().candidates() {
            assert!(p.validate().is_ok(), "{p:?}");
        }
    }

    #[test]
    fn grid_search_finds_argmax() {
        // Score = wg, maximised at wg = 1.0 among feasible (wg <= 0.8).
        let best = grid_search(&SearchSpace::flexgen(), |p| {
            (p.wg <= 0.8).then_some(p.wg)
        })
        .unwrap();
        assert!((best.1 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn grid_search_empty_when_all_infeasible() {
        assert!(grid_search(&SearchSpace::flexgen(), |_| None).is_none());
    }

    #[test]
    fn grid_search_dominates_every_candidate() {
        // Property: the returned score is >= every feasible candidate's.
        let space = SearchSpace::lm_offload();
        let eval = |p: &Policy| {
            let x = p.wg - 0.3;
            Some(1.0 - x * x + if p.weights_dtype == DType::Int4 { 0.1 } else { 0.0 })
        };
        let (best_p, best_s) = grid_search(&space, eval).unwrap();
        for p in space.candidates() {
            if let Some(s) = eval(&p) {
                assert!(best_s >= s, "{p:?} beats {best_p:?}");
            }
        }
    }
}
