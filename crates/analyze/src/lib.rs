//! # lm-analyze
//!
//! Static analysis for LM-Offload deployments: a diagnostics engine with
//! stable lint codes over three families of checks (DESIGN.md §10):
//!
//! - [`graph_lints`] (`LMA0xx`): structural lints on operator dependency
//!   graphs — cycles (with the witness path), orphan nodes, duplicate and
//!   out-of-bounds edges, zero-cost compute nodes, transfers co-scheduled
//!   with compute;
//! - [`plan_lints`] (`LMA1xx`): Algorithm 3 outputs and offloading
//!   policies — inter-op vs the Kahn width, the
//!   `inter_op·intra_op + 5 ≤ threads` budget, volume-proportional
//!   transfer grants, memory-capacity feasibility, bundle working sets vs
//!   the LLC;
//! - [`model_lints`] (`LMA20x`): dimensional and structural consistency
//!   of the analytic cost model (Eq. 1-24) via sampled [`ModelProbe`]
//!   observations;
//! - [`serve_lints`] (`LMA25x`): `lm-serve` slot plans — leased KV bytes
//!   vs pool capacity, block size vs the block graph's Kahn width, and
//!   pool underutilization — via sampled [`ServeProbe`] observations;
//! - [`serve_lints`] (`LMA26x`): SLO/overload policies — objective vs
//!   the physical service floor, enforcement with no armed actuator,
//!   single-slot preemption churn — via sampled [`SloProbe`]
//!   observations;
//! - [`obs_lints`] (`LMA27x`): observability wiring — SLO enforcement
//!   without a TTFT histogram, an armed zero-capacity flight recorder
//!   under chaos faults — via sampled [`ObsProbe`] observations;
//! - [`paging_lints`] (`LMA28x`): paged KV pools — page geometry vs the
//!   plan's KV block, refcount conservation across page tables, and
//!   copy-on-write discipline — via sampled [`PagingProbe`]
//!   observations;
//! - [`verify_lints`] (`LMA29x`): `lm-verify` runs — sweep-lattice
//!   degeneracy, lint-unsoundness witnesses from the planner-space
//!   sweep, and unexercised protocol transitions — via sampled
//!   [`VerifyProbe`] observations;
//! - [`async_lints`] (`LMA30x`): async serving sessions — zero-capacity
//!   token channels, wall-clock SLOs below the physical TTFT floor, and
//!   degenerate wall→virtual time scales — via sampled [`AsyncProbe`]
//!   observations.
//!
//! Every finding carries a stable `LMAnnn` code (see [`LintCode`]) —
//! codes keep their meaning across releases and retired codes are never
//! reused — a severity, the inspected subject, and a message with the
//! offending values inline. [`Report`] serialises to JSON for
//! `repro analyze`.

#![cfg_attr(test, allow(clippy::unwrap_used))]
pub mod async_lints;
pub mod diag;
pub mod graph_lints;
pub mod model_lints;
pub mod obs_lints;
pub mod paging_lints;
pub mod plan_lints;
pub mod serve_lints;
pub mod verify_lints;

pub use async_lints::{lint_async, AsyncProbe};
pub use diag::{Diagnostic, LintCode, Report, Severity};
pub use graph_lints::lint_graph;
pub use model_lints::{lint_model, ModelProbe};
pub use obs_lints::{lint_obs, ObsProbe};
pub use paging_lints::{lint_paging, PagingProbe};
pub use plan_lints::{lint_bundles, lint_plan, lint_policy};
pub use serve_lints::{lint_serve, lint_slo, ServeProbe, SloProbe};
pub use verify_lints::{lint_verify, UnsoundnessWitness, VerifyProbe};

use lm_hardware::Platform;
use lm_models::{ModelConfig, Workload};
use lm_parallelism::{OpGraph, ParallelismPlan, SearchConfig, TransferTask};
use lm_sim::Policy;

/// Everything a full deployment analysis inspects. The caller (the
/// controller, the bench harness, or strict engine construction) derives
/// the plan; this crate only judges it.
pub struct Deployment<'a> {
    pub platform: &'a Platform,
    pub model: &'a ModelConfig,
    pub workload: &'a Workload,
    pub policy: &'a Policy,
    pub graph: &'a OpGraph,
    pub cfg: &'a SearchConfig,
    pub plan: &'a ParallelismPlan,
    pub transfers: &'a [TransferTask],
    /// FLOP threshold below which operators are bundling candidates.
    pub bundle_min_flops: f64,
}

/// Run all three lint families over a deployment and merge the findings.
pub fn analyze_deployment(d: &Deployment<'_>) -> Report {
    let mut report = lint_graph(d.graph);
    report.extend(lint_plan(d.plan, d.graph, d.cfg, d.transfers));
    report.extend(lint_policy(d.policy, d.model, d.workload, d.platform));
    report.extend(lint_bundles(d.graph, d.bundle_min_flops, d.platform));
    let probe = ModelProbe::sample(
        d.platform,
        d.model,
        d.workload,
        d.policy,
        d.workload.gen_len / 2,
    );
    report.extend(lint_model(&probe));
    report
}
