//! Algorithm 3 — thread-level parallelism management.
//!
//! The search enumerates intra-op parallelism for the compute task, derives
//! inter-op parallelism from the Kahn max-concurrency of the compute
//! dependency graph, requires at least five free threads for the load/store
//! tasks, assigns those threads in proportion to transfer volume, and keeps
//! the setting with the best estimated throughput.

use crate::graph::OpGraph;
use crate::kahn::{analyze, makespan};
use crate::profile::ProfileTable;
use crate::scaling::CpuScalingModel;
use serde::{Deserialize, Serialize};

/// Number of load/store tasks in the decode loop (Algorithm 1):
/// load_weight, load_cache, load_activation, store_cache, store_activation.
pub const NUM_TRANSFER_TASKS: usize = 5;

/// One of the five transfer tasks with its per-step data volume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferTask {
    pub name: String,
    pub bytes: u64,
}

/// Search configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Hardware threads to divide (`max_thrs` in Algorithm 3).
    pub max_threads: u32,
    /// Interconnect bandwidth available to each transfer task, B/s.
    pub link_bw: f64,
    /// Bytes/s one CPU thread can stage (pinning + memcpy path); a
    /// transfer task needs `link_bw / copy_bw_per_thread` threads to keep
    /// the link busy — this is why thread assignment matters.
    pub copy_bw_per_thread: f64,
}

impl SearchConfig {
    /// Defaults for the paper's single-GPU platform.
    pub fn for_platform(platform: &lm_hardware::Platform) -> Self {
        SearchConfig {
            max_threads: platform.cpu.total_threads(),
            link_bw: platform.h2d_bw(),
            copy_bw_per_thread: 3e9,
        }
    }
}

/// A complete parallelism setting with its cost estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelismPlan {
    /// Threads per compute operator.
    pub intra_op_compute: u32,
    /// Compute operators allowed to co-run (Kahn max concurrency).
    pub inter_op_compute: u32,
    /// Total inter-op parallelism: compute + the five transfer tasks.
    pub inter_op_total: u32,
    /// Threads granted to each transfer task, same order as the input.
    pub transfer_threads: Vec<u32>,
    /// Estimated compute-task time per decode step, seconds.
    pub est_compute_time: f64,
    /// Estimated per-step time: max over the six overlapped tasks.
    pub est_step_time: f64,
}

/// Estimate the time of one transfer task given its thread grant: the link
/// is the floor, but an under-threaded staging path can be the bottleneck.
pub fn transfer_time(cfg: &SearchConfig, bytes: u64, threads: u32) -> f64 {
    if bytes == 0 {
        return 0.0;
    }
    let link = bytes as f64 / cfg.link_bw;
    let staging = bytes as f64 / (cfg.copy_bw_per_thread * threads.max(1) as f64);
    link.max(staging)
}

/// Largest-remainder proportional assignment of `free` threads to the
/// transfer tasks (each gets at least one).
pub fn assign_transfer_threads(free: u32, tasks: &[TransferTask]) -> Vec<u32> {
    let n = tasks.len() as u32;
    assert!(free >= n, "need at least one thread per transfer task");
    let total: f64 = tasks.iter().map(|t| t.bytes as f64).sum();
    if total == 0.0 {
        let mut out = vec![free / n; tasks.len()];
        out[0] += free % n;
        return out;
    }
    let extra = free - n;
    let shares: Vec<f64> = tasks
        .iter()
        .map(|t| extra as f64 * t.bytes as f64 / total)
        .collect();
    let mut grant: Vec<u32> = shares.iter().map(|s| 1 + s.floor() as u32).collect();
    let mut assigned: u32 = grant.iter().sum();
    // Hand out remainders largest-first.
    let mut rema: Vec<(usize, f64)> = shares
        .iter()
        .enumerate()
        .map(|(i, s)| (i, s - s.floor()))
        .collect();
    rema.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut k = 0;
    while assigned < free {
        grant[rema[k % rema.len()].0] += 1;
        assigned += 1;
        k += 1;
    }
    grant
}

/// Estimate the per-step decode time of an arbitrary thread setting
/// (used both inside the search and to score the PyTorch default for the
/// Fig. 8 comparison). The long explicit parameter list is intentional:
/// every argument is an independent axis Algorithm 3 sweeps.
#[allow(clippy::too_many_arguments)]
pub fn estimate_step_time(
    graph: &OpGraph,
    profile: &ProfileTable,
    model: &CpuScalingModel,
    cfg: &SearchConfig,
    transfers: &[TransferTask],
    intra_op: u32,
    inter_op: u32,
    transfer_threads: &[u32],
) -> (f64, f64) {
    // Inter-op workers beyond the graph's Kahn width never find a ready
    // operator, so the ops that actually co-run (and the threads actually
    // live) are width-capped — but the pool itself still costs
    // (`pool_penalty`): idle workers spread scheduling across sockets and
    // conflict in the caches (§4.1's two reasons for the >12 decline).
    let width = analyze(graph)
        .map(|a| a.max_concurrency().max(1) as u32)
        .unwrap_or(1);
    let effective_inter = inter_op.max(1).min(width);
    let corun = inter_op.min(effective_inter + NUM_TRANSFER_TASKS as u32);
    let requested = effective_inter * intra_op + transfer_threads.iter().sum::<u32>();
    let contention = model.oversubscription_factor(requested)
        * model.pool_penalty(inter_op)
        / model.corun_efficiency(corun);
    let times: Vec<f64> = profile
        .node_times(intra_op)
        .into_iter()
        .map(|t| t * contention)
        .collect();
    let compute = makespan(graph, &times, effective_inter as usize);
    let slowest_transfer = transfers
        .iter()
        .zip(transfer_threads)
        .map(|(t, &thr)| transfer_time(cfg, t.bytes, thr))
        .fold(0.0f64, f64::max);
    (compute, compute.max(slowest_transfer))
}

/// Why Algorithm 3 could not produce a plan.
#[derive(Debug, Clone, PartialEq)]
pub enum SearchError {
    /// The transfer-task list does not match the decode loop's five
    /// load/store tasks.
    WrongTransferCount { got: usize },
    /// The compute graph has a cycle (node indices of the closed walk).
    CyclicGraph { cycle: Vec<usize> },
    /// `max_threads` leaves no room for compute plus the five reserved
    /// transfer threads, so the enumeration in line 3 is empty.
    NoFeasibleSetting { max_threads: u32 },
}

impl std::fmt::Display for SearchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SearchError::WrongTransferCount { got } => write!(
                f,
                "expected {NUM_TRANSFER_TASKS} transfer tasks, got {got}"
            ),
            SearchError::CyclicGraph { cycle } => {
                write!(f, "compute graph must be acyclic, found cycle {cycle:?}")
            }
            SearchError::NoFeasibleSetting { max_threads } => write!(
                f,
                "no feasible parallelism setting: max_threads={max_threads} cannot cover \
                 compute plus {NUM_TRANSFER_TASKS} reserved transfer threads"
            ),
        }
    }
}

impl std::error::Error for SearchError {}

/// Algorithm 3: find the best parallelism setting for the six tasks.
/// Panicking wrapper over [`try_find_optimal_parallelism`] for callers
/// with known-good inputs.
pub fn find_optimal_parallelism(
    graph: &OpGraph,
    profile: &ProfileTable,
    model: &CpuScalingModel,
    cfg: &SearchConfig,
    transfers: &[TransferTask],
) -> ParallelismPlan {
    match try_find_optimal_parallelism(graph, profile, model, cfg, transfers) {
        Ok(plan) => plan,
        Err(SearchError::WrongTransferCount { got }) => panic!(
            "the decode loop has exactly five load/store tasks (got {got})"
        ),
        Err(SearchError::CyclicGraph { .. }) => panic!("compute graph must be acyclic"),
        Err(SearchError::NoFeasibleSetting { .. }) => {
            panic!("search space non-empty for max_threads > 5")
        }
    }
}

/// Fallible Algorithm 3 for configurations assembled from untrusted input
/// (CLI sweeps, deserialized platform specs).
pub fn try_find_optimal_parallelism(
    graph: &OpGraph,
    profile: &ProfileTable,
    model: &CpuScalingModel,
    cfg: &SearchConfig,
    transfers: &[TransferTask],
) -> Result<ParallelismPlan, SearchError> {
    if transfers.len() != NUM_TRANSFER_TASKS {
        return Err(SearchError::WrongTransferCount {
            got: transfers.len(),
        });
    }
    let Some(analysis) = analyze(graph) else {
        let cycle = crate::kahn::find_cycle(graph).unwrap_or_default();
        return Err(SearchError::CyclicGraph { cycle });
    };
    // Line 4: inter-op parallelism of the compute task = max concurrency.
    let inter_comp = analysis.max_concurrency().max(1) as u32;

    let mut best: Option<ParallelismPlan> = None;
    // Line 3: enumerate intra-op parallelism, bounded so ≥5 threads remain.
    for intra in 1..=cfg.max_threads.saturating_sub(NUM_TRANSFER_TASKS as u32) {
        let used = inter_comp.saturating_mul(intra);
        let Some(free) = cfg.max_threads.checked_sub(used) else {
            break;
        };
        // Lines 6-7: need at least five free threads for load/store tasks.
        if free < NUM_TRANSFER_TASKS as u32 {
            break;
        }
        // Line 9: transfer threads proportional to volume.
        let grant = assign_transfer_threads(free, transfers);
        // Line 10: estimate throughput from the profile + models.
        let (compute, step) = estimate_step_time(
            graph, profile, model, cfg, transfers, intra, inter_comp, &grant,
        );
        let plan = ParallelismPlan {
            intra_op_compute: intra,
            inter_op_compute: inter_comp,
            inter_op_total: inter_comp + NUM_TRANSFER_TASKS as u32,
            transfer_threads: grant,
            est_compute_time: compute,
            est_step_time: step,
        };
        // Lines 12-14: keep the best.
        let better = match &best {
            None => true,
            Some(b) => plan.est_step_time < b.est_step_time,
        };
        if better {
            best = Some(plan);
        }
    }
    best.ok_or(SearchError::NoFeasibleSetting {
        max_threads: cfg.max_threads,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::attention_graph;
    use lm_hardware::presets;

    fn setup(head_groups: usize) -> (OpGraph, ProfileTable, CpuScalingModel, SearchConfig) {
        let platform = presets::single_gpu_a100();
        let g = attention_graph(640, 128, 7168, head_groups);
        let model = CpuScalingModel::from_cpu(&platform.cpu);
        let profile = ProfileTable::synthesize(&g, &model, 20e9, 12e9, platform.cpu.total_threads());
        let cfg = SearchConfig::for_platform(&platform);
        (g, profile, model, cfg)
    }

    fn transfers() -> Vec<TransferTask> {
        // Roughly the OPT-30B per-layer volumes (bytes).
        [
            ("load_weight", 550_000_000u64),
            ("load_cache", 0),
            ("load_activation", 9_000_000),
            ("store_cache", 18_000_000),
            ("store_activation", 9_000_000),
        ]
        .into_iter()
        .map(|(n, b)| TransferTask {
            name: n.to_string(),
            bytes: b,
        })
        .collect()
    }

    #[test]
    fn plan_matches_paper_shape() {
        // With 7 head groups the Kahn width is 7, so inter-op total = 12 —
        // exactly the setting §5.4 reports.
        let (g, p, m, cfg) = setup(7);
        let plan = find_optimal_parallelism(&g, &p, &m, &cfg, &transfers());
        assert_eq!(plan.inter_op_compute, 7);
        assert_eq!(plan.inter_op_total, 12);
        // Intra-op lands near the scaling knee, well below the 56 default.
        assert!(
            (4..=15).contains(&plan.intra_op_compute),
            "intra {}",
            plan.intra_op_compute
        );
        // 7·intra + Σtransfer ≤ 112.
        let used = 7 * plan.intra_op_compute + plan.transfer_threads.iter().sum::<u32>();
        assert!(used <= cfg.max_threads, "used {used}");
    }

    #[test]
    fn reserved_threads_for_transfers() {
        let (g, p, m, cfg) = setup(7);
        let plan = find_optimal_parallelism(&g, &p, &m, &cfg, &transfers());
        assert_eq!(plan.transfer_threads.len(), NUM_TRANSFER_TASKS);
        assert!(plan.transfer_threads.iter().all(|&t| t >= 1));
        // Largest volume (load_weight) gets the most threads.
        let max = plan.transfer_threads.iter().max().unwrap();
        assert_eq!(plan.transfer_threads[0], *max);
    }

    #[test]
    fn plan_beats_pytorch_default() {
        let (g, p, m, cfg) = setup(7);
        let ts = transfers();
        let plan = find_optimal_parallelism(&g, &p, &m, &cfg, &ts);
        // The PyTorch default: 112 inter-op, 56 intra-op, transfers get one
        // thread each (they are just more ops in the pool).
        let (_, default_step) =
            estimate_step_time(&g, &p, &m, &cfg, &ts, 56, 112, &[1, 1, 1, 1, 1]);
        assert!(
            plan.est_step_time < default_step,
            "tuned {} vs default {}",
            plan.est_step_time,
            default_step
        );
        // Paper: 38% end-to-end reduction; require a meaningful gap.
        assert!(plan.est_step_time < default_step * 0.85);
    }

    #[test]
    fn proportional_assignment_properties() {
        let ts = transfers();
        let grant = assign_transfer_threads(20, &ts);
        assert_eq!(grant.iter().sum::<u32>(), 20);
        assert!(grant.iter().all(|&g| g >= 1));
        // Volume order is respected.
        assert!(grant[0] >= grant[3] && grant[3] >= grant[1]);
    }

    #[test]
    fn zero_volume_assignment_splits_evenly() {
        let ts: Vec<TransferTask> = (0..5)
            .map(|i| TransferTask {
                name: format!("t{i}"),
                bytes: 0,
            })
            .collect();
        let grant = assign_transfer_threads(7, &ts);
        assert_eq!(grant.iter().sum::<u32>(), 7);
    }

    #[test]
    #[should_panic(expected = "at least one thread per transfer task")]
    fn insufficient_free_threads_rejected() {
        assign_transfer_threads(3, &transfers());
    }

    #[test]
    fn try_search_reports_structured_errors() {
        let (g, p, m, cfg) = setup(3);
        // Wrong transfer count.
        let err = try_find_optimal_parallelism(&g, &p, &m, &cfg, &[]).unwrap_err();
        assert_eq!(err, SearchError::WrongTransferCount { got: 0 });
        // Too few threads for compute + 5 reserved transfer threads.
        let tiny = SearchConfig {
            max_threads: 5,
            ..cfg.clone()
        };
        let err = try_find_optimal_parallelism(&g, &p, &m, &tiny, &transfers()).unwrap_err();
        assert_eq!(err, SearchError::NoFeasibleSetting { max_threads: 5 });
        assert!(err.to_string().contains("max_threads=5"), "{err}");
        // Cyclic compute graph carries the witness cycle.
        let mut cyclic = g.clone();
        let last = cyclic.len() - 1;
        cyclic.depend(last, 0);
        let err =
            try_find_optimal_parallelism(&cyclic, &p, &m, &cfg, &transfers()).unwrap_err();
        match err {
            SearchError::CyclicGraph { cycle } => assert!(!cycle.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        // Good inputs agree with the panicking entry point.
        let a = try_find_optimal_parallelism(&g, &p, &m, &cfg, &transfers()).unwrap();
        let b = find_optimal_parallelism(&g, &p, &m, &cfg, &transfers());
        assert_eq!(a.intra_op_compute, b.intra_op_compute);
        assert_eq!(a.inter_op_total, b.inter_op_total);
    }

    #[test]
    fn transfer_time_thread_sensitivity() {
        let cfg = SearchConfig {
            max_threads: 112,
            link_bw: 8e9,
            copy_bw_per_thread: 3e9,
        };
        // 1 thread can stage 3 GB/s < link 8 GB/s -> staging-bound.
        let one = transfer_time(&cfg, 8_000_000_000, 1);
        let three = transfer_time(&cfg, 8_000_000_000, 3);
        assert!(one > three);
        // Beyond saturation more threads do not help.
        let ten = transfer_time(&cfg, 8_000_000_000, 10);
        assert!((three - ten).abs() / ten < 0.15);
        assert_eq!(transfer_time(&cfg, 0, 1), 0.0);
    }
}
