//! Model-vs-measured drift: replay the analytic cost model's predicted
//! per-task busy time against a measured span timeline and report, per
//! paper task, the observed/predicted ratio.
//!
//! A ratio of 1.0 means the performance model (Eq. 2's `max(...)` terms)
//! matches what actually ran; against the event-driven simulator it must
//! be exactly 1.0 (the simulator *is* the model), which the golden test
//! in `tests/trace_observability.rs` pins. Against the real engine the
//! ratio quantifies model error per task — the quantity Fig. 6 of the
//! paper argues stays small.

use crate::span::Span;
use crate::task::TaskKind;
use serde::{Deserialize, Serialize};

/// Drift for one of the paper's six decode tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskDrift {
    /// Paper task name (one of [`TaskKind::PAPER_TASKS`]).
    pub task: String,
    /// Model-predicted busy seconds.
    pub predicted_s: f64,
    /// Busy seconds summed from measured spans.
    pub observed_s: f64,
    /// `observed / predicted`; `None` when the model predicts zero
    /// (ratio undefined — `abs_error_s` still carries the miss).
    pub ratio: Option<f64>,
    /// `observed - predicted`, always defined.
    pub abs_error_s: f64,
}

/// Predicted-vs-observed drift across all six paper tasks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    pub tasks: Vec<TaskDrift>,
    /// Max over tasks of `|ratio - 1|` (tasks with a defined ratio).
    pub max_ratio_error: f64,
}

impl DriftReport {
    /// True when every task with a defined ratio is within `eps` of 1.0
    /// and no zero-predicted task observed more than `eps` seconds.
    pub fn ok_within(&self, eps: f64) -> bool {
        self.tasks.iter().all(|t| match t.ratio {
            Some(r) => (r - 1.0).abs() <= eps,
            None => t.observed_s.abs() <= eps,
        })
    }

    /// The row for `task`, if present.
    pub fn task(&self, task: &str) -> Option<&TaskDrift> {
        self.tasks.iter().find(|t| t.task == task)
    }
}

/// Build a drift report from per-kind predicted busy seconds and a
/// measured span timeline. Both sides are grouped by
/// [`TaskKind::paper_task`], merging the two compute halves, and every
/// paper task gets a row (zeros when neither side saw it).
pub fn drift_report(predicted: &[(TaskKind, f64)], spans: &[Span]) -> DriftReport {
    let mut pred = [0.0f64; 6];
    let mut obs = [0.0f64; 6];
    let paper_index = |kind: TaskKind| -> usize {
        TaskKind::PAPER_TASKS
            .iter()
            .position(|t| *t == kind.paper_task())
            .unwrap_or(0)
    };
    for &(kind, s) in predicted {
        pred[paper_index(kind)] += s;
    }
    for sp in spans {
        obs[paper_index(sp.kind)] += sp.duration();
    }

    let mut tasks = Vec::with_capacity(6);
    let mut max_ratio_error = 0.0f64;
    for (i, name) in TaskKind::PAPER_TASKS.iter().enumerate() {
        let ratio = if pred[i] > 0.0 {
            let r = obs[i] / pred[i];
            max_ratio_error = max_ratio_error.max((r - 1.0).abs());
            Some(r)
        } else {
            None
        };
        tasks.push(TaskDrift {
            task: (*name).to_string(),
            predicted_s: pred[i],
            observed_s: obs[i],
            ratio,
            abs_error_s: obs[i] - pred[i],
        });
    }
    DriftReport {
        tasks,
        max_ratio_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: TaskKind, start: f64, end: f64) -> Span {
        Span {
            kind,
            step: 0,
            layer: 0,
            batch: None,
            start,
            end,
        }
    }

    #[test]
    fn perfect_match_gives_unit_ratios() {
        let predicted = vec![(TaskKind::LoadWeight, 2.0), (TaskKind::ComputeGpu, 1.0)];
        let spans = vec![
            span(TaskKind::LoadWeight, 0.0, 1.5),
            span(TaskKind::LoadWeight, 1.5, 2.0),
            span(TaskKind::ComputeGpu, 2.0, 3.0),
        ];
        let r = drift_report(&predicted, &spans);
        assert_eq!(r.tasks.len(), 6, "every paper task gets a row");
        assert_eq!(r.task("load_weight").unwrap().ratio, Some(1.0));
        assert_eq!(r.task("compute").unwrap().ratio, Some(1.0));
        assert!(r.ok_within(1e-9));
        assert_eq!(r.max_ratio_error, 0.0);
    }

    #[test]
    fn compute_halves_merge() {
        let predicted = vec![(TaskKind::ComputeCpu, 1.0), (TaskKind::ComputeGpu, 3.0)];
        let spans = vec![
            span(TaskKind::ComputeCpu, 0.0, 1.0),
            span(TaskKind::ComputeGpu, 1.0, 4.0),
        ];
        let r = drift_report(&predicted, &spans);
        let c = r.task("compute").unwrap();
        assert_eq!(c.predicted_s, 4.0);
        assert_eq!(c.observed_s, 4.0);
        assert_eq!(c.ratio, Some(1.0));
    }

    #[test]
    fn drift_is_reported() {
        let predicted = vec![(TaskKind::LoadCache, 1.0)];
        let spans = vec![span(TaskKind::LoadCache, 0.0, 1.3)];
        let r = drift_report(&predicted, &spans);
        let t = r.task("load_cache").unwrap();
        assert!((t.ratio.unwrap() - 1.3).abs() < 1e-9);
        assert!((t.abs_error_s - 0.3).abs() < 1e-9);
        assert!((r.max_ratio_error - 0.3).abs() < 1e-9);
        assert!(!r.ok_within(0.1));
        assert!(r.ok_within(0.5));
    }

    #[test]
    fn zero_predicted_with_observation_fails_ok_within() {
        let spans = vec![span(TaskKind::StoreCache, 0.0, 0.5)];
        let r = drift_report(&[], &spans);
        let t = r.task("store_cache").unwrap();
        assert_eq!(t.ratio, None);
        assert_eq!(t.abs_error_s, 0.5);
        assert!(!r.ok_within(0.1));
        // Tasks absent on both sides stay within any epsilon.
        assert_eq!(r.task("load_weight").unwrap().observed_s, 0.0);
    }

    #[test]
    fn report_serde_round_trip() {
        let r = drift_report(
            &[(TaskKind::LoadWeight, 1.0)],
            &[span(TaskKind::LoadWeight, 0.0, 1.1)],
        );
        let v = serde::Serialize::serialize(&r);
        let back: DriftReport = serde::Deserialize::deserialize(&v).unwrap();
        assert_eq!(back, r);
    }
}
