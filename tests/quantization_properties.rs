//! Property-based integration tests spanning the tensor-level
//! quantization kernels and the cost models that price them.

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{QuantCostParams, QuantModel};
use lm_tensor::{dequantize, quantize, QuantConfig, Tensor};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The numeric kernels honour the analytic error bound the advisor's
    /// accuracy assumptions rest on.
    #[test]
    fn quantization_error_bound_holds_across_shapes(
        rows in 1usize..24,
        cols in 1usize..96,
        bits in prop_oneof![Just(4u8), Just(8u8)],
        gs in prop_oneof![Just(16usize), Just(64), Just(100)],
        seed in 0u64..500,
    ) {
        let t = Tensor::randn([rows, cols], 1.5, seed);
        let cfg = QuantConfig { bits, group_size: gs };
        let q = quantize(&t, cfg);
        let d = dequantize(&q);
        prop_assert_eq!(d.shape(), t.shape());
        prop_assert!(t.max_abs_diff(&d) <= q.error_bound() * 1.0001 + 1e-6);
    }

    /// 4-bit at-rest storage is always at least 4x smaller than f32 for
    /// group sizes >= 16 (metadata amortised).
    #[test]
    fn int4_compression_ratio_floor(n in 256usize..4096, seed in 0u64..200) {
        let t = Tensor::randn([n], 1.0, seed);
        let q = quantize(&t, QuantConfig::int4());
        prop_assert!(q.compression_ratio() >= 4.0,
            "ratio {}", q.compression_ratio());
    }

    /// Cost-model monotonicity: weight dequantization cost grows with the
    /// CPU-resident share; old-KV dequantization grows with the decode
    /// step. These are the derivatives the advisor's verdicts depend on.
    #[test]
    fn quant_cost_model_monotone(wc_pct in 0u32..100, token in 0u64..120) {
        let platform = hw::single_gpu_a100();
        let model = models::opt_30b();
        let w = Workload::motivation();
        let qm = QuantModel::new(&platform, &model, &w, QuantCostParams::flexgen_kernels());
        let wc = wc_pct as f64 / 100.0;
        prop_assert!(qm.dequan_wgt_per_layer(wc + 0.01) > qm.dequan_wgt_per_layer(wc));
        prop_assert!(
            qm.dequan_old_cache_per_batch(token + 1) > qm.dequan_old_cache_per_batch(token)
        );
        prop_assert!(qm.quan_pf_wgt_total(wc) >= 0.0);
    }

    /// Kernel-quality ordering is uniform: LM-Offload kernels never cost
    /// more than FlexGen kernels on any component.
    #[test]
    fn kernel_presets_uniformly_ordered(wc_pct in 1u32..=100, token in 0u64..120) {
        let platform = hw::single_gpu_a100();
        let model = models::opt_30b();
        let w = Workload::motivation();
        let slow = QuantModel::new(&platform, &model, &w, QuantCostParams::flexgen_kernels());
        let fast = QuantModel::new(&platform, &model, &w, QuantCostParams::lm_offload_kernels());
        let wc = wc_pct as f64 / 100.0;
        prop_assert!(fast.dequan_wgt_per_layer(wc) <= slow.dequan_wgt_per_layer(wc));
        prop_assert!(fast.quan_pf_wgt_total(wc) <= slow.quan_pf_wgt_total(wc));
        prop_assert!(fast.dequan_old_cache_per_batch(token) <= slow.dequan_old_cache_per_batch(token));
        prop_assert!(fast.kv_quant_per_elem() <= slow.kv_quant_per_elem());
    }
}

#[test]
fn quantized_linear_error_scales_with_bits() {
    // End-to-end through a real layer: int8 must beat int4.
    use lm_tensor::Linear;
    let x = Tensor::randn([4, 64], 1.0, 77);
    let reference = Linear::new(64, 64, false, 7);
    let full = reference.forward(&x);

    let err_with = |cfg: QuantConfig| {
        let mut l = reference.clone();
        l.quantize_weights(cfg);
        l.forward(&x).max_abs_diff(&full)
    };
    let e8 = err_with(QuantConfig::int8());
    let e4 = err_with(QuantConfig::int4());
    assert!(e8 < e4, "int8 {e8} must beat int4 {e4}");
    assert!(e8 > 0.0, "quantization is lossy");
}
