//! Synthetic access-trace generators.
//!
//! The decode-phase tasks (attention operators, (de)quantization, transfer
//! staging copies) are modelled as *streams*: each operator repeatedly
//! sweeps a private read buffer and writes a private output buffer.
//! Co-running operators are interleaved round-robin with a scheduling
//! quantum, which is how thread-level parallelism turns into LLC
//! contention: more concurrent streams shrink each stream's effective
//! cache share.

use crate::cache::Access;

/// One operator's memory behaviour: `sweeps` passes over a read buffer of
/// `read_bytes`, each followed by a pass over a write buffer of
/// `write_bytes`, at `line`-byte granularity.
#[derive(Debug, Clone, Copy)]
pub struct OpStream {
    /// Base address of this stream's buffers (streams use disjoint ranges).
    pub base: u64,
    pub read_bytes: u64,
    pub write_bytes: u64,
    pub sweeps: u32,
    pub line: u64,
}

impl OpStream {
    /// Generate the full trace of this stream.
    pub fn trace(&self) -> Vec<Access> {
        let read_lines = self.read_bytes / self.line;
        let write_lines = self.write_bytes / self.line;
        let mut out =
            Vec::with_capacity(((read_lines + write_lines) * self.sweeps as u64) as usize);
        let write_base = self.base + self.read_bytes;
        for _ in 0..self.sweeps {
            for i in 0..read_lines {
                out.push(Access::load(self.base + i * self.line));
            }
            for i in 0..write_lines {
                out.push(Access::store(write_base + i * self.line));
            }
        }
        out
    }

    /// Total accesses this stream will emit.
    pub fn len(&self) -> u64 {
        (self.read_bytes / self.line + self.write_bytes / self.line) * self.sweeps as u64
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Round-robin interleave of several traces with a scheduling `quantum`
/// (accesses per turn). Shorter quanta model heavier context switching
/// (oversubscribed threads); the result contains every access of every
/// input exactly once.
pub fn interleave(traces: &[Vec<Access>], quantum: usize) -> Vec<Access> {
    assert!(quantum > 0, "quantum must be positive");
    let total: usize = traces.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    let mut cursors = vec![0usize; traces.len()];
    let mut remaining = total;
    while remaining > 0 {
        for (t, cur) in traces.iter().zip(cursors.iter_mut()) {
            let take = quantum.min(t.len() - *cur);
            out.extend_from_slice(&t[*cur..*cur + take]);
            *cur += take;
            remaining -= take;
        }
    }
    out
}

/// A tiled matrix-multiply trace (`C += A×B` with square tiles): the
/// canonical compute-operator access pattern. Addresses are element-grained
/// scaled to f32.
pub fn tiled_matmul_trace(
    m: u64,
    k: u64,
    n: u64,
    tile: u64,
    base: u64,
    line: u64,
) -> Vec<Access> {
    assert!(tile > 0, "tile must be positive");
    let elem = 4u64;
    let a_base = base;
    let b_base = base + m * k * elem;
    let c_base = b_base + k * n * elem;
    let mut out = Vec::new();
    let mut push_block = |buf_base: u64, rows: std::ops::Range<u64>, cols: std::ops::Range<u64>, row_len: u64, write: bool| {
        for r in rows {
            let mut col = cols.start;
            while col < cols.end {
                let addr = buf_base + (r * row_len + col) * elem;
                out.push(if write {
                    Access::store(addr)
                } else {
                    Access::load(addr)
                });
                col += line / elem;
            }
        }
    };
    let mut i = 0;
    while i < m {
        let i_end = (i + tile).min(m);
        let mut j = 0;
        while j < n {
            let j_end = (j + tile).min(n);
            let mut p = 0;
            while p < k {
                let p_end = (p + tile).min(k);
                push_block(a_base, i..i_end, p..p_end, k, false);
                push_block(b_base, p..p_end, j..j_end, n, false);
                push_block(c_base, i..i_end, j..j_end, n, true);
                p = p_end;
            }
            j = j_end;
        }
        i = i_end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_stream_counts() {
        let s = OpStream {
            base: 0,
            read_bytes: 1024,
            write_bytes: 256,
            sweeps: 3,
            line: 64,
        };
        let t = s.trace();
        assert_eq!(t.len() as u64, s.len());
        assert_eq!(t.len(), 3 * (16 + 4));
        assert_eq!(t.iter().filter(|a| a.write).count(), 12);
    }

    #[test]
    fn interleave_preserves_all_accesses() {
        let a = OpStream {
            base: 0,
            read_bytes: 640,
            write_bytes: 0,
            sweeps: 1,
            line: 64,
        }
        .trace();
        let b = OpStream {
            base: 1 << 20,
            read_bytes: 320,
            write_bytes: 64,
            sweeps: 2,
            line: 64,
        }
        .trace();
        let merged = interleave(&[a.clone(), b.clone()], 3);
        assert_eq!(merged.len(), a.len() + b.len());
        // Per-stream order preserved.
        let from_a: Vec<_> = merged.iter().filter(|x| x.addr < (1 << 20)).collect();
        assert_eq!(from_a.len(), a.len());
        for (x, y) in from_a.iter().zip(&a) {
            assert_eq!(**x, *y);
        }
    }

    #[test]
    fn interleave_alternates_with_small_quantum() {
        let a = vec![Access::load(0); 4];
        let b = vec![Access::load(1 << 30); 4];
        let merged = interleave(&[a, b], 1);
        // strict alternation
        for (i, acc) in merged.iter().enumerate() {
            let expect_a = i % 2 == 0;
            assert_eq!(acc.addr < (1 << 30), expect_a, "position {i}");
        }
    }

    #[test]
    fn matmul_trace_touches_all_matrices() {
        let t = tiled_matmul_trace(8, 8, 8, 4, 0, 64);
        assert!(!t.is_empty());
        assert!(t.iter().any(|a| a.write), "C blocks must be stored");
        assert!(t.iter().any(|a| !a.write));
    }

    #[test]
    #[should_panic(expected = "quantum must be positive")]
    fn zero_quantum_rejected() {
        interleave(&[vec![]], 0);
    }
}
