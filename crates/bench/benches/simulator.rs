//! Benchmarks of the simulation substrate: the event-driven decode
//! executor, the analytic evaluator it validates, the pipeline model and
//! the LLC contention simulator — plus the overlap-model ablation of
//! DESIGN.md §5.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lm_cachesim::{run_contention, Access, ContentionConfig, Hierarchy, ThreadSetting};
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{quant_aware_provider, QuantCostParams, ThreadFactors};
use lm_sim::tasks::CostProvider;
use lm_sim::{simulate, simulate_pipeline, t_gen, Policy};

fn provider(w: &Workload) -> impl CostProvider {
    quant_aware_provider(
        &hw::single_gpu_a100(),
        &models::opt_30b(),
        w,
        Policy::flexgen_default(),
        QuantCostParams::flexgen_kernels(),
        ThreadFactors::Default,
    )
}

fn bench_decode_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("decode_sim");
    g.sample_size(10);
    for &n in &[8u64, 32, 128] {
        let w = Workload::new(64, n, 64, 10);
        let p = provider(&w);
        g.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| simulate(&p, w, 48))
        });
    }
    g.finish();
}

fn bench_analytic(c: &mut Criterion) {
    let mut g = c.benchmark_group("analytic");
    let w = Workload::motivation();
    let p = provider(&w);
    g.bench_function("latency_full_run", |b| b.iter(|| p.init_time()));
    g.bench_function("t_gen_single_step", |b| b.iter(|| t_gen(&p, 64, 10)));
    g.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_sim");
    g.sample_size(10);
    let w = Workload::new(256, 64, 8, 16);
    let p = quant_aware_provider(
        &hw::multi_gpu_v100(4),
        &models::opt_13b(),
        &w,
        Policy::flexgen_default(),
        QuantCostParams::flexgen_kernels(),
        ThreadFactors::Default,
    );
    for g_count in [1u32, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(g_count), &g_count, |b, &n| {
            b.iter(|| simulate_pipeline(&p, &w, 40, n, true))
        });
    }
    g.finish();
}

fn bench_cachesim(c: &mut Criterion) {
    let mut g = c.benchmark_group("cachesim");
    g.sample_size(10);
    let cfg = ContentionConfig::scaled_default();
    for (name, setting) in [
        ("default", ThreadSetting::pytorch_default()),
        ("lm_offload", ThreadSetting::lm_offload()),
    ] {
        g.bench_function(name, |b| b.iter(|| run_contention(&cfg, setting)));
    }
    // Two-level hierarchy: 1M accesses through L2s + LLC.
    g.bench_function("hierarchy_1m_accesses", |b| {
        b.iter(|| {
            let mut h = Hierarchy::new(8, 64 << 10, 8, 1 << 20, 16, 64);
            for i in 0..1_000_000u64 {
                h.access((i % 8) as usize, Access::load((i % 4096) * 64));
            }
            h.memory_accesses()
        })
    });
    g.finish();
}

/// DESIGN.md §5 ablation: the overlap model. Compare the predicted
/// step time under three aggregations — serial sum (no overlap), the
/// paper's literal per-task max (infinite channels), and our
/// resource-summed max — and benchmark their evaluation cost. The
/// resource-summed model is what the event simulator validates.
fn bench_overlap_ablation(c: &mut Criterion) {
    let w = Workload::motivation();
    let p = provider(&w);
    let nb = 10.0;
    let serial = |i: u64| {
        p.load_weight(i)
            + nb * (p.load_cache(i)
                + p.load_activation(i)
                + p.store_cache(i)
                + p.store_activation(i)
                + p.compute_cpu(i)
                + p.compute_gpu(i))
    };
    let per_task_max = |i: u64| {
        p.load_weight(i)
            .max(nb * p.load_cache(i))
            .max(nb * p.load_activation(i))
            .max(nb * p.store_cache(i))
            .max(nb * p.store_activation(i))
            .max(nb * (p.compute_cpu(i) + p.compute_gpu(i)))
    };
    eprintln!(
        "[ablation] overlap models at step 64: serial {:.3}s, per-task max {:.3}s, resource-summed {:.3}s",
        serial(64),
        per_task_max(64),
        t_gen(&p, 64, 10)
    );

    let mut g = c.benchmark_group("overlap_ablation");
    g.bench_function("serial_sum", |b| b.iter(|| serial(64)));
    g.bench_function("per_task_max", |b| b.iter(|| per_task_max(64)));
    g.bench_function("resource_summed", |b| b.iter(|| t_gen(&p, 64, 10)));
    g.finish();
}

criterion_group!(
    benches,
    bench_decode_sim,
    bench_analytic,
    bench_pipeline,
    bench_cachesim,
    bench_overlap_ablation
);
criterion_main!(benches);
