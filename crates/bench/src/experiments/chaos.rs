//! `repro chaos` — the deterministic chaos harness (DESIGN.md §12): the
//! continuous-batching scheduler is driven under a seeded fault storm
//! (pool pressure, transfer stalls, client disconnects, slot crashes)
//! and the run is judged on hard invariants rather than throughput:
//!
//! 1. **Zero leaked KV leases** — every slot's RAII lease returns to the
//!    serve pool no matter how the admission ended — and **zero leaked
//!    pages**: the paged pool's page table is empty once every sequence
//!    has reached a terminal state;
//! 2. **Total resolution** — every request reaches exactly one terminal
//!    state (response, rejection, or cancellation);
//! 3. **Conservation** — admissions balance completions, in-slot
//!    cancellations, preemptions and crashes;
//! 4. **Transparency** — on the real miniature engine, every survivor's
//!    token stream is identical to a solo `Engine::run` of the same
//!    request, crashes and resumptions notwithstanding;
//! 5. **Replay** — the whole report is byte-identical when the harness
//!    runs again from the same seed (the storm is stateless SplitMix64).
//!
//! `repro chaos --seed N --storm <profile>` exits non-zero when any
//! invariant breaks.

use lm_engine::GenerateRequest;
use lm_fault::{FaultConfig, FaultInjector, FaultStats, RetryPolicy, StormProfile};
use lm_serve::{
    synth_traffic, AnalyticBackend, EngineBackend, Request, ServeBackend, ServeConfig,
    ServeOutcome, ServePlan, ServeSession, ServeStats,
};
use serde::{Deserialize, Serialize};

pub const DEFAULT_SEED: u64 = 7;
pub const DEFAULT_RPS: f64 = 4.0;
pub const DEFAULT_REQUESTS: usize = 32;

/// The hard invariants the harness gates on.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosInvariants {
    /// Serve-pool bytes still leased at end of run == 0.
    pub zero_leaked_leases: bool,
    /// Paged-pool pages still mapped at end of run == 0 — the
    /// page-granular sibling of the lease invariant: every terminal
    /// state (completion, cancellation, preemption, crash) must drop
    /// its whole page table, shared refcounts included.
    pub zero_leaked_pages: bool,
    /// responses + rejections + cancellations == submitted requests.
    pub all_resolved: bool,
    /// admitted == completed + cancelled_in_slot + preemptions + crashes.
    pub admissions_balanced: bool,
    /// Every engine-backend survivor matches its solo `Engine::run`.
    pub survivors_transparent: bool,
    /// A second run from the same seed serialises byte-identically.
    pub replay_identical: bool,
}

impl ChaosInvariants {
    pub fn all_hold(&self) -> bool {
        self.zero_leaked_leases
            && self.zero_leaked_pages
            && self.all_resolved
            && self.admissions_balanced
            && self.survivors_transparent
            && self.replay_identical
    }
}

/// Everything `repro chaos` writes to `results/chaos.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ChaosReport {
    pub seed: u64,
    pub storm: String,
    pub rps: f64,
    pub requests: usize,
    pub plan: ServePlan,
    pub completed: usize,
    pub rejected: usize,
    pub cancelled: usize,
    /// Terminal states reached (must equal `requests`).
    pub resolved: usize,
    pub kv_leaked_bytes: u64,
    /// KV pages still mapped when the run ended (must be zero).
    pub kv_pages_leaked: u64,
    /// Admission-lifecycle accounting from the scheduler.
    pub stats: ServeStats,
    /// Injected-fault counters from the storm injector.
    pub faults: FaultStats,
    /// Engine-backend survivors checked token-for-token against solo runs.
    pub survivors_checked: usize,
    pub invariants: ChaosInvariants,
    pub invariants_ok: bool,
}

/// One analytic-backend pass under the storm; a fresh injector per call
/// so replay sees identical fault state. The injector's counters are
/// shared with the clone the scheduler attaches to the pool, so they are
/// fully populated when the pass returns.
fn storm_pass(
    seed: u64,
    profile: StormProfile,
    rps: f64,
    n: usize,
) -> (ServePlan, ServeOutcome, FaultStats) {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, backend.model());
    let injector = FaultInjector::new(FaultConfig::storm(seed, profile));
    let cfg = ServeConfig {
        fault: injector.clone(),
        retry: RetryPolicy::fast_test().with_seeded_jitter(seed, 0.5),
        ..ServeConfig::default()
    };
    let (plan, out) = ServeSession::new(&backend)
        .config(cfg)
        .run(traffic)
        .unwrap_or_else(|e| panic!("chaos serving failed: {e}"))
        .into_continuous();
    (plan, out, injector.stats())
}

/// Transparency under fire: serve a small batch on the *real* miniature
/// engine with the same storm profile; every request that survives to a
/// response must carry exactly the tokens of a solo `Engine::run`.
/// Returns `(survivors_checked, all_matched)`.
fn engine_transparency_pass(seed: u64, profile: StormProfile) -> (usize, bool) {
    let backend = EngineBackend::tiny_test(seed)
        .unwrap_or_else(|e| panic!("tiny engine backend failed: {e}"));
    let prompts: [&[u32]; 4] = [&[1, 2, 3], &[4, 5], &[6, 7, 8, 9, 10], &[11]];
    let requests: Vec<Request> = prompts
        .iter()
        .enumerate()
        .map(|(i, p)| Request::new(i as u64, p.to_vec(), 4 + i).with_arrival_us(i as u64 * 100))
        .collect();
    let cfg = ServeConfig {
        fault: FaultInjector::new(FaultConfig::storm(seed, profile)),
        retry: RetryPolicy::fast_test().with_seeded_jitter(seed, 0.5),
        ..ServeConfig::default()
    };
    let out = ServeSession::new(&backend)
        .config(cfg)
        .run(requests)
        .unwrap_or_else(|e| panic!("engine chaos serving failed: {e}"))
        .outcome;
    let mut all_matched = true;
    for r in &out.responses {
        let prompt = prompts[r.id as usize].to_vec();
        let solo = backend
            .engine()
            .run(&GenerateRequest::new(vec![prompt], 4 + r.id as usize))
            .unwrap_or_else(|e| panic!("solo engine run failed: {e}"));
        all_matched &= r.tokens == solo.tokens[0];
    }
    (out.responses.len(), all_matched)
}

/// Run the harness: two analytic storm passes (replay check), one
/// engine-backend transparency pass, and the invariant verdicts.
pub fn run(seed: u64, profile: StormProfile, rps: f64, n: usize) -> ChaosReport {
    let (plan, out, faults) = storm_pass(seed, profile, rps, n);
    let (_, replay, _) = storm_pass(seed, profile, rps, n);
    let replay_identical = serde_json::to_string(&out)
        .and_then(|a| serde_json::to_string(&replay).map(|b| a == b))
        .unwrap_or(false);
    let (survivors_checked, survivors_transparent) = engine_transparency_pass(seed, profile);

    let invariants = ChaosInvariants {
        zero_leaked_leases: out.kv_leaked_bytes == 0 && replay.kv_leaked_bytes == 0,
        zero_leaked_pages: out.kv_pages_leaked == 0 && replay.kv_pages_leaked == 0,
        all_resolved: out.terminal_count() == n,
        admissions_balanced: out.stats.admissions_balanced(),
        survivors_transparent,
        replay_identical,
    };
    let invariants_ok = invariants.all_hold();
    ChaosReport {
        seed,
        storm: profile.name().to_string(),
        rps,
        requests: n,
        plan,
        completed: out.responses.len(),
        rejected: out.rejections.len(),
        cancelled: out.cancellations.len(),
        resolved: out.terminal_count(),
        kv_leaked_bytes: out.kv_leaked_bytes as u64,
        kv_pages_leaked: out.kv_pages_leaked,
        stats: out.stats,
        faults,
        survivors_checked,
        invariants,
        invariants_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_storm_holds_every_invariant() {
        let r = run(DEFAULT_SEED, StormProfile::Default, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(r.invariants_ok, "invariants: {:?}", r.invariants);
        assert_eq!(r.resolved, r.requests);
        assert!(
            r.cancelled > 0 || r.stats.slot_crashes > 0,
            "the default storm must actually interrupt something: {:?}",
            r.stats
        );
    }

    #[test]
    fn every_profile_resolves_and_reclaims() {
        for profile in StormProfile::ALL {
            let r = run(3, profile, DEFAULT_RPS, 16);
            assert!(
                r.invariants.zero_leaked_leases
                    && r.invariants.zero_leaked_pages
                    && r.invariants.all_resolved,
                "{}: {:?}",
                profile.name(),
                r.invariants
            );
        }
    }

    #[test]
    fn report_is_byte_deterministic() {
        let a = serde_json::to_string(&run(11, StormProfile::Crashes, DEFAULT_RPS, 12)).unwrap();
        let b = serde_json::to_string(&run(11, StormProfile::Crashes, DEFAULT_RPS, 12)).unwrap();
        assert_eq!(a, b);
    }
}
