//! Microbenchmarks of the numeric substrate: group-wise quantization
//! (Algorithm 2), matmul, and attention — the kernels whose costs the §3
//! performance models price.

#![allow(clippy::unwrap_used)]
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lm_tensor::ops::matmul::{matmul, matmul_transb};
use lm_tensor::{dequantize, mha_decode, quantize, KvCache, QuantConfig, Tensor};

fn bench_quantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("quantize");
    g.sample_size(20);
    for &n in &[1usize << 14, 1 << 18, 1 << 20] {
        let t = Tensor::randn([n], 1.0, 42);
        g.throughput(Throughput::Bytes((n * 4) as u64));
        for cfg in [QuantConfig::int4(), QuantConfig::int8()] {
            g.bench_with_input(
                BenchmarkId::new(format!("int{}", cfg.bits), n),
                &t,
                |b, t| b.iter(|| quantize(t, cfg)),
            );
        }
    }
    g.finish();
}

fn bench_dequantize(c: &mut Criterion) {
    let mut g = c.benchmark_group("dequantize");
    g.sample_size(20);
    for &n in &[1usize << 14, 1 << 18, 1 << 20] {
        let t = Tensor::randn([n], 1.0, 43);
        let q = quantize(&t, QuantConfig::int4());
        g.throughput(Throughput::Bytes((n * 4) as u64));
        g.bench_with_input(BenchmarkId::new("int4", n), &q, |b, q| {
            b.iter(|| dequantize(q))
        });
    }
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    g.sample_size(15);
    for &n in &[64usize, 128, 256] {
        let a = Tensor::randn([n, n], 1.0, 1);
        let b_ = Tensor::randn([n, n], 1.0, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("square", n), &(a.clone(), b_.clone()), |b, (x, y)| {
            b.iter(|| matmul(x, y))
        });
        g.bench_with_input(BenchmarkId::new("transb", n), &(a, b_), |b, (x, y)| {
            b.iter(|| matmul_transb(x, y))
        });
    }
    g.finish();
}

fn bench_attention_decode(c: &mut Criterion) {
    let mut g = c.benchmark_group("mha_decode");
    g.sample_size(15);
    let (batch, hidden, heads) = (8usize, 256usize, 8usize);
    for &seq in &[64usize, 256, 1024] {
        let mut cache = KvCache::new(batch, hidden, seq);
        for i in 0..seq {
            let k = Tensor::randn([batch, hidden], 1.0, i as u64);
            cache.append(&k, &k);
        }
        let q = Tensor::randn([batch, hidden], 1.0, 99);
        // 4·seq·hidden FLOPs per batch row — the paper's attention count.
        g.throughput(Throughput::Elements((4 * seq * hidden * batch) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(seq), &(q, cache), |b, (q, cache)| {
            b.iter(|| mha_decode(q, cache, heads))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_quantize,
    bench_dequantize,
    bench_matmul,
    bench_attention_decode
);
criterion_main!(benches);
