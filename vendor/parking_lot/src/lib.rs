//! Offline stand-in for `parking_lot` (see `vendor/README.md`).
//!
//! Thin wrappers over `std::sync` primitives with parking_lot's
//! ergonomics: `lock()` returns the guard directly and, like the real
//! crate, there is no lock poisoning — a panic while holding the lock
//! simply releases it.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// Condition variable paired with [`Mutex`], parking_lot-style (waits
/// take the guard by `&mut`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_mut_guard(guard, |g| self.inner.wait(g).unwrap_or_else(|e| e.into_inner()));
    }

    /// Wait with a timeout; returns true if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let mut timed_out = false;
        take_mut_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(|e| e.into_inner());
            timed_out = result.timed_out();
            g
        });
        timed_out
    }
}

/// Replace a guard in place through a by-value operation. The closure
/// must return a guard for the same mutex (guaranteed by the Condvar
/// wait APIs above); std's wait consumes and returns the guard, while
/// parking_lot's takes `&mut`, so we bridge the two calling styles.
fn take_mut_guard<'a, T, F>(slot: &mut MutexGuard<'a, T>, f: F)
where
    F: FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
{
    // SAFETY: `slot` is forgotten immediately after the read, so the
    // guard is never double-dropped; `f` either returns a new guard
    // (written back) or panics while owning it (dropping it exactly
    // once and releasing the lock).
    unsafe {
        let guard = std::ptr::read(slot);
        let new_guard = f(guard);
        std::ptr::write(slot, new_guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut guard = m.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        assert!(cv.wait_for(&mut g, Duration::from_millis(5)));
    }

    #[test]
    fn poisoning_is_ignored() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock usable after a panicking holder");
    }
}
