//! Policy explorer: ask the paper's performance models (§3.2) the three
//! advisory questions for a model on the A100 platform, then run the full
//! quantization-aware policy search and compare the chosen deployments of
//! FlexGen, ZeRO-Inference and LM-Offload under the ground-truth
//! simulator.
//!
//! Run with: `cargo run --release --example policy_explorer [model-name]`

#![allow(clippy::unwrap_used)]
use lm_hardware::presets as hw;
use lm_models::{presets as models, Workload};
use lm_offload::{
    run_framework, Advisor, EngineConfig, Framework, QuantCostParams,
};
use lm_sim::{AttentionPlacement, Policy};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "OPT-30B".to_string());
    let model = models::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown model '{name}', using OPT-30B");
        models::opt_30b()
    });
    let platform = hw::single_gpu_a100();
    let workload = Workload::motivation();

    println!("=== Advisor (the three §3.2 scenarios) on {} ===", model.name);
    let advisor = Advisor::new(&platform, &model, &workload, QuantCostParams::lm_offload_kernels());

    let mut gpu_attn = Policy::flexgen_default();
    gpu_attn.attention = AttentionPlacement::Gpu;

    let w = advisor.weight_quantization(gpu_attn);
    println!(
        "1. weight quantization (GPU attention): {} ({:.2}s -> {:.2}s)",
        if w.beneficial { "BENEFICIAL" } else { "not beneficial" },
        w.baseline_cost,
        w.candidate_cost
    );
    let k = advisor.kv_quantization(gpu_attn);
    println!(
        "2. KV-cache quantization (GPU attention): {} ({:.2}s -> {:.2}s)",
        if k.beneficial { "BENEFICIAL" } else { "not beneficial" },
        k.baseline_cost,
        k.candidate_cost
    );
    let a = advisor.attention_offloading(Policy::flexgen_default());
    println!(
        "3. attention offloading (best quant each side): {} (GPU {:.2}s vs CPU {:.2}s)",
        if a.beneficial { "BENEFICIAL" } else { "not beneficial" },
        a.baseline_cost,
        a.candidate_cost
    );

    println!("\n=== Framework deployments (searched, then simulated) ===");
    let cfg = EngineConfig::new(&platform, &model, 64, 32);
    for fw in Framework::ALL {
        match run_framework(fw, &cfg) {
            Some(run) => {
                let p = run.deployment.policy;
                println!(
                    "{:<15} block={:<5} wg={:>3.0}% attn={:<4} w/kv={:>2}b/{:<2}b mem={:>5.0} GiB  tput={:>7.1} tok/s",
                    fw.name(),
                    run.deployment.workload.block_size(),
                    p.wg * 100.0,
                    match p.attention {
                        AttentionPlacement::Cpu => "CPU",
                        AttentionPlacement::Gpu => "GPU",
                    },
                    p.weights_dtype.bits(),
                    p.kv_dtype.bits(),
                    run.mem.total_bytes as f64 / (1u64 << 30) as f64,
                    run.throughput(),
                );
            }
            None => println!("{:<15} no feasible deployment", fw.name()),
        }
    }
}
