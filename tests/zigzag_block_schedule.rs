//! The zig-zag block schedule on the *real* engine: outputs must be
//! identical to independent per-batch generation while the weight traffic
//! is amortised across the block — FlexGen's core mechanism, demonstrated
//! with actual byte accounting rather than a model.

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_models::presets;

fn prompts(n: usize) -> Vec<Vec<u32>> {
    (0..n)
        .map(|i| vec![1 + i as u32, 20 + i as u32, 7, 99])
        .collect()
}

#[test]
fn zigzag_outputs_equal_independent_batches() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 77, EngineOptions::default()).unwrap();
    let all = prompts(4);
    let gen_len = 6;

    let block = engine.run(&GenerateRequest::new(all.to_vec(), gen_len).with_batches(2)).unwrap();
    // Independent runs of each half must produce the same tokens: the
    // batches share no state, only the schedule changed.
    let first = engine.run(&GenerateRequest::new(all[..2].to_vec(), gen_len)).unwrap();
    let second = engine.run(&GenerateRequest::new(all[2..].to_vec(), gen_len)).unwrap();
    assert_eq!(&block.tokens[..2], &first.tokens[..]);
    assert_eq!(&block.tokens[2..], &second.tokens[..]);
}

#[test]
fn zigzag_amortises_weight_traffic_across_batches() {
    // The measurable claim behind Eq. 2's load_weight term: one block of
    // nb batches streams each layer once per sweep; nb independent runs
    // stream it nb times.
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 78, EngineOptions::default()).unwrap();
    let all = prompts(4);
    let gen_len = 3;

    let block = engine.run(&GenerateRequest::new(all.to_vec(), gen_len).with_batches(2)).unwrap();
    let a = engine.run(&GenerateRequest::new(all[..2].to_vec(), gen_len)).unwrap();
    let b = engine.run(&GenerateRequest::new(all[2..].to_vec(), gen_len)).unwrap();
    let independent = a.weight_bytes_streamed + b.weight_bytes_streamed;
    assert_eq!(
        independent,
        2 * block.weight_bytes_streamed,
        "block must halve the weight stream for 2 batches"
    );
}

#[test]
fn zigzag_single_batch_equals_generate() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 79, EngineOptions::default()).unwrap();
    let all = prompts(2);
    let plain = engine.run(&GenerateRequest::new(all.to_vec(), 4)).unwrap();
    let block = engine.run(&GenerateRequest::new(all.to_vec(), 4).with_batches(1)).unwrap();
    assert_eq!(plain.tokens, block.tokens);
    assert_eq!(plain.weight_bytes_streamed, block.weight_bytes_streamed);
}

#[test]
fn zigzag_respects_tight_device_budget() {
    // The block schedule must not need more device memory than the
    // single-batch path: weights still stream two layers at a time.
    let cfg = presets::tiny_test();
    let layer_bytes = cfg.weights_per_layer() as usize * 4 + 64 * 1024;
    let engine = Engine::new(
        &cfg,
        80,
        EngineOptions {
            device_capacity: 2 * layer_bytes,
            ..Default::default()
        },
    )
    .unwrap();
    let g = engine.run(&GenerateRequest::new(prompts(4).to_vec(), 3).with_batches(2)).unwrap();
    assert!(g.device_peak <= 2 * layer_bytes);
    assert_eq!(g.tokens.len(), 4);
}

#[test]
fn ragged_block_rejected() {
    let cfg = presets::tiny_test();
    let engine = Engine::new(&cfg, 81, EngineOptions::default()).unwrap();
    // A prompt count that does not divide into the requested batches is
    // a typed error now, not a panic.
    match engine.run(&GenerateRequest::new(prompts(3), 2).with_batches(2)) {
        Err(lm_engine::EngineError::InvalidRequest { reason }) => {
            assert!(reason.contains("equal batches"), "{reason}")
        }
        other => panic!("expected InvalidRequest, got ok={}", other.is_ok()),
    }
}
