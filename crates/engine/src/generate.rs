//! The real generation loop: prefill + autoregressive decode with
//! layer-streamed weights, bounded device memory, and an asynchronous
//! prefetcher — the `load_weight`-overlapped-with-`compute` structure of
//! Algorithm 1, executed for real on `lm-tensor`.

use crate::disk::{Checkpoint, CheckpointError};
use crate::kvquant::CacheStore;
use crate::model::Embedding;
use crate::pools::{MemPool, PoolExhausted};
use crate::request::GenerateRequest;
use crate::sampler::Sampler;
use crate::store::{FetchedLayer, OffloadStore, WeightsAtRest};
use lm_fault::{FaultInjector, RetryPolicy};
use lm_models::ModelConfig;
use lm_tensor::{QuantConfig, Tensor};
use lm_trace::{TaskKind, Tracer};
use std::sync::Arc;
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Device pool capacity in bytes (the "GPU memory" budget).
    pub device_capacity: usize,
    /// Host pool capacity in bytes.
    pub host_capacity: usize,
    /// Quantize weights at rest (FlexGen's compressed format). Takes
    /// precedence over `f16_at_rest`.
    pub quantize_at_rest: Option<QuantConfig>,
    /// Store weights at half precision (the paper's fp16 baseline).
    pub f16_at_rest: bool,
    /// Quantize the KV cache at rest (FlexGen's `compress_cache`): new
    /// entries are quantized as produced, the old cache is dequantized at
    /// every attention step — the real Eq. 5-7 cycle.
    pub kv_quantize_at_rest: Option<QuantConfig>,
    /// Overlap next-layer weight fetches with compute (double buffering).
    pub prefetch: bool,
    pub sampler: Sampler,
    /// Deterministic fault plan threaded into the pools, the weight store
    /// and the prefetch channel. Disabled by default: every probe is an
    /// inlined `None` check and the engine behaves bit-identically to a
    /// build without fault injection.
    pub fault: FaultInjector,
    /// Recovery policy for transient faults (device-pool pressure on
    /// fetches, prefetch drops). Only consulted when `fault` is enabled.
    pub retry: RetryPolicy,
    /// Span/metrics recorder. Disabled by default — every probe is an
    /// inlined `None` check, like `fault`. When enabled, each decode
    /// sweep emits one `load_weight` span per layer and one compute span
    /// per (layer, batch), and the fault injector's event log is stamped
    /// on the tracer's clock so faults align with spans in Perfetto.
    pub tracer: Tracer,
    /// Flight recorder (DESIGN.md §13): injected faults tee into its
    /// ring, and any [`EngineError`] surfacing from [`Engine::run`]
    /// freezes it into a post-mortem dump. Disabled by default.
    pub flight: lm_trace::FlightRecorder,
    /// Pre-flight static analysis at construction. When set, capacity
    /// configurations that could only fail deep inside `generate` (a
    /// device pool too small for one streamed layer, a host pool below
    /// the at-rest footprint) are rejected up front with an
    /// [`EngineError::Rejected`] carrying `LMA109` diagnostics, instead
    /// of surfacing later as mid-run pool exhaustion.
    pub strict: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            device_capacity: 256 << 20,
            host_capacity: 2 << 30,
            quantize_at_rest: None,
            f16_at_rest: false,
            kv_quantize_at_rest: None,
            prefetch: true,
            sampler: Sampler::Greedy,
            fault: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
            tracer: Tracer::disabled(),
            flight: lm_trace::FlightRecorder::disabled(),
            strict: false,
        }
    }
}

/// Result of a generation run.
#[derive(Debug, Clone)]
pub struct Generation {
    /// Generated token ids per batch row (excluding the prompt).
    pub tokens: Vec<Vec<u32>>,
    /// Wall-clock generation throughput, tokens/second.
    pub throughput: f64,
    /// Peak device-pool usage in bytes — the proof of the memory budget.
    pub device_peak: usize,
    /// Peak host-pool usage in bytes.
    pub host_peak: usize,
    /// Host→device weight traffic during this run, in bytes — the real
    /// engine's `load_weight` volume, cross-checked against the analytic
    /// model in the integration tests.
    pub weight_bytes_streamed: u64,
    /// KV-cache bytes at rest when generation finished (compressed when
    /// `kv_quantize_at_rest` is set).
    pub kv_bytes_at_rest: usize,
}

/// `T_init` measurement from [`Engine::from_checkpoint`].
#[derive(Debug, Clone, Copy)]
pub struct InitReport {
    pub init_seconds: f64,
    pub bytes_read: u64,
}

/// Errors from engine construction and generation.
#[derive(Debug)]
pub enum EngineError {
    /// The request failed the shared validation checker
    /// ([`crate::request::validate_request`]): empty batch, empty or
    /// ragged prompts, context overflow, or a non-dividing batch count.
    /// Malformed serving traffic surfaces here instead of panicking.
    InvalidRequest { reason: String },
    Pool(PoolExhausted),
    Checkpoint(CheckpointError),
    /// An I/O-level failure that survived the retry budget.
    Io(std::io::Error),
    /// A recovery deadline elapsed before the operation could complete.
    Timeout(String),
    /// Generation could not proceed at the requested policy and no
    /// feasible fallback existed (raised by degradation controllers).
    Degraded(String),
    /// Strict-mode pre-flight analysis found `Error`-level diagnostics;
    /// the report names each violated capacity with stable `LMA` codes.
    Rejected(lm_analyze::Report),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::InvalidRequest { reason } => write!(f, "invalid request: {reason}"),
            EngineError::Pool(e) => write!(f, "{e}"),
            EngineError::Checkpoint(e) => write!(f, "{e}"),
            EngineError::Io(e) => write!(f, "engine I/O error: {e}"),
            EngineError::Timeout(m) => write!(f, "engine timeout: {m}"),
            EngineError::Degraded(m) => write!(f, "degradation failed: {m}"),
            EngineError::Rejected(report) => {
                write!(f, "strict pre-flight analysis rejected the engine:\n{report}")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<PoolExhausted> for EngineError {
    fn from(e: PoolExhausted) -> Self {
        EngineError::Pool(e)
    }
}

impl From<CheckpointError> for EngineError {
    fn from(e: CheckpointError) -> Self {
        EngineError::Checkpoint(e)
    }
}

/// Resolve the at-rest weight precision from the options.
fn weights_at_rest(options: &EngineOptions) -> WeightsAtRest {
    match (options.quantize_at_rest, options.f16_at_rest) {
        (Some(q), _) => WeightsAtRest::Quantized(q),
        (None, true) => WeightsAtRest::F16,
        (None, false) => WeightsAtRest::F32,
    }
}

/// Strict-mode pre-flight: check the pool budgets against hard lower
/// bounds of the streaming layout before any allocation happens. The
/// bounds are conservative (packed payload only, no per-group metadata),
/// so every reported `Error` is a configuration that *must* fail later.
fn preflight(cfg: &ModelConfig, options: &EngineOptions) -> Result<(), EngineError> {
    use lm_analyze::{Diagnostic, LintCode, Report};
    use lm_models::DType;

    let mut findings = Vec::new();
    // Fetched layers are dequantized to f32 on the device; prefetching
    // double-buffers them.
    let layer_f32 = DType::F32.bytes_for(cfg.weights_per_layer());
    let inflight = if options.prefetch { 2 } else { 1 } * layer_f32;
    if (options.device_capacity as u64) < inflight {
        findings.push(Diagnostic::error(
            LintCode::Lma109CapacityExceeded,
            "options.device_capacity".to_string(),
            format!(
                "device pool {} B cannot hold the {inflight} B of in-flight \
                 layer weights ({} buffered layer(s) at f32)",
                options.device_capacity,
                if options.prefetch { 2 } else { 1 },
            ),
        ));
    }
    let at_rest_dtype = match weights_at_rest(options) {
        WeightsAtRest::F32 => DType::F32,
        WeightsAtRest::F16 => DType::F16,
        WeightsAtRest::Quantized(q) if q.bits == 4 => DType::Int4,
        WeightsAtRest::Quantized(_) => DType::Int8,
    };
    let at_rest = lm_models::footprint::weights_bytes(cfg, at_rest_dtype);
    if (options.host_capacity as u64) < at_rest {
        findings.push(Diagnostic::error(
            LintCode::Lma109CapacityExceeded,
            "options.host_capacity".to_string(),
            format!(
                "host pool {} B below the {at_rest} B at-rest weight \
                 footprint ({at_rest_dtype:?})",
                options.host_capacity
            ),
        ));
    }
    if findings.is_empty() {
        Ok(())
    } else {
        Err(EngineError::Rejected(Report::new(findings)))
    }
}

/// The offloading inference engine.
pub struct Engine {
    cfg: ModelConfig,
    store: Arc<OffloadStore>,
    embedding: Embedding,
    options: EngineOptions,
    device: Arc<MemPool>,
    host: Arc<MemPool>,
}

impl Engine {
    /// Build an engine with synthetic weights.
    pub fn new(cfg: &ModelConfig, seed: u64, options: EngineOptions) -> Result<Self, EngineError> {
        if options.strict {
            preflight(cfg, &options)?;
        }
        let host = MemPool::new("host", options.host_capacity);
        let device = MemPool::new("device", options.device_capacity);
        // Pools see pressure spikes only on the *device* side: the device
        // budget is the scarce resource the degradation machinery defends.
        device.attach_fault(options.fault.clone());
        let at_rest = weights_at_rest(&options);
        let mut store = OffloadStore::from_layers(
            (0..cfg.num_layers).map(|i| crate::model::LayerWeights::synthesize(cfg, i, seed)),
            at_rest,
            Arc::clone(&host),
            Arc::clone(&device),
        )?;
        store.fault = options.fault.clone();
        // One time base: fault events are stamped on the tracer's clock
        // so injected faults line up with spans in the Perfetto view.
        if let Some(clock) = options.tracer.clock() {
            options.fault.set_clock(clock);
        }
        if options.flight.is_enabled() {
            options.fault.set_flight(options.flight.clone());
        }
        Ok(Engine {
            cfg: cfg.clone(),
            store: Arc::new(store),
            embedding: Embedding::synthesize(cfg, seed ^ 0xE5CA_1ADE),
            options,
            device,
            host,
        })
    }

    /// Build an engine whose weights come from a disk checkpoint — the
    /// `T_init` path (Figure 2 step 1.1): every layer is read from disk
    /// into host memory before inference starts. Returns the engine plus
    /// the measured initialisation time and bytes read.
    pub fn from_checkpoint(
        cfg: &ModelConfig,
        path: &std::path::Path,
        options: EngineOptions,
    ) -> Result<(Self, InitReport), EngineError> {
        if options.strict {
            preflight(cfg, &options)?;
        }
        let t0 = Instant::now();
        let mut ck = Checkpoint::open(path)?;
        if ck.num_layers() != cfg.num_layers as usize {
            return Err(EngineError::Checkpoint(CheckpointError::Format(format!(
                "checkpoint has {} layers, config expects {}",
                ck.num_layers(),
                cfg.num_layers
            ))));
        }
        if ck.family() != cfg.family {
            return Err(EngineError::Checkpoint(CheckpointError::Format(
                "checkpoint family does not match config".into(),
            )));
        }
        let host = MemPool::new("host", options.host_capacity);
        let device = MemPool::new("device", options.device_capacity);
        device.attach_fault(options.fault.clone());
        let mut layers = Vec::with_capacity(ck.num_layers());
        for i in 0..ck.num_layers() {
            layers.push(ck.load_layer_with_retry(i, &options.fault, &options.retry)?);
        }
        let mut store = OffloadStore::from_layers(
            layers,
            weights_at_rest(&options),
            Arc::clone(&host),
            Arc::clone(&device),
        )?;
        store.fault = options.fault.clone();
        if let Some(clock) = options.tracer.clock() {
            options.fault.set_clock(clock);
        }
        if options.flight.is_enabled() {
            options.fault.set_flight(options.flight.clone());
        }
        let bytes_read = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        let engine = Engine {
            cfg: cfg.clone(),
            store: Arc::new(store),
            embedding: Embedding::synthesize(cfg, 0xD15C ^ cfg.num_layers as u64),
            options,
            device,
            host,
        };
        Ok((
            engine,
            InitReport {
                init_seconds: t0.elapsed().as_secs_f64(),
                bytes_read,
            },
        ))
    }

    pub fn model(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Bytes one fetched (device-resident) layer occupies — the sizing
    /// input when a test or experiment wants a device budget of "N
    /// layers plus slack".
    pub fn layer_fetch_bytes(&self, layer: u32) -> usize {
        self.store.fetched_bytes(layer)
    }

    pub fn device_pool(&self) -> &Arc<MemPool> {
        &self.device
    }

    /// Fetch one layer, retrying transient device-pool pressure when a
    /// fault injector is attached. Without one this is a plain fetch —
    /// no retry bookkeeping touches the hot path.
    fn fetch_layer(&self, j: u32) -> Result<FetchedLayer, PoolExhausted> {
        if self.options.fault.is_enabled() {
            self.store.fetch_with_retry(j, &self.options.retry)
        } else {
            self.store.fetch(j)
        }
    }

    /// Run one layer-sweep over `f`, streaming weights with or without
    /// the prefetcher. When a tracer is enabled and `step` names the
    /// decode step, each layer fetch is recorded as a `load_weight` span
    /// (on the loader thread's buffer when prefetching — the per-thread
    /// trace buffers make that contention-free).
    fn sweep_layers<F>(&self, step: Option<u64>, mut f: F) -> Result<(), EngineError>
    where
        F: FnMut(&FetchedLayer),
    {
        let l = self.store.num_layers() as u32;
        if !self.options.prefetch {
            for j in 0..l {
                let fetched = {
                    let _span =
                        step.map(|i| self.options.tracer.task_span(TaskKind::LoadWeight, i, j, None));
                    self.fetch_layer(j)?
                };
                f(&fetched);
            }
            return Ok(());
        }
        // Double-buffered prefetch: a loader thread stays one layer ahead.
        // The rendezvous channel (capacity 0) hands layers over directly,
        // so at most two layers exist at once: the one being computed and
        // the one the loader fetched ahead.
        let store = Arc::clone(&self.store);
        let fault = self.options.fault.clone();
        let retry = self.options.retry.clone();
        let tracer = self.options.tracer.clone();
        let (tx, rx) = crossbeam::channel::bounded::<Result<FetchedLayer, PoolExhausted>>(0);
        let loader = std::thread::spawn(move || {
            for j in 0..l {
                let fetched = {
                    let _span = step.map(|i| tracer.task_span(TaskKind::LoadWeight, i, j, None));
                    if fault.is_enabled() {
                        store.fetch_with_retry(j, &retry)
                    } else {
                        store.fetch(j)
                    }
                };
                let failed = fetched.is_err();
                if tx.send(fetched).is_err() || failed {
                    break;
                }
            }
        });
        let mut result = Ok(());
        for j in 0..l {
            match rx.recv() {
                Ok(Ok(fetched)) => {
                    // A prefetch-channel drop loses the handed-over layer
                    // (backpressure glitch); recover with an on-demand
                    // refetch so the sweep still sees every layer once.
                    if self.options.fault.prefetch_drop("engine.prefetch", j as u64) {
                        drop(fetched);
                        let refetch = {
                            let _span = step.map(|i| {
                                self.options.tracer.task_span(TaskKind::LoadWeight, i, j, None)
                            });
                            self.fetch_layer(j)
                        };
                        match refetch {
                            Ok(refetched) => f(&refetched),
                            Err(e) => {
                                result = Err(EngineError::Pool(e));
                                break;
                            }
                        }
                    } else {
                        f(&fetched);
                    }
                }
                Ok(Err(e)) => {
                    result = Err(EngineError::Pool(e));
                    break;
                }
                Err(_) => break,
            }
        }
        loader
            .join()
            .map_err(|_| EngineError::Io(std::io::Error::other("prefetch loader thread panicked")))?;
        result
    }

    /// Validate `request` against this engine's model without running it
    /// — the same checker the `lm-serve` admission controller consults.
    pub fn validate(&self, request: &GenerateRequest) -> Result<(), EngineError> {
        request.validate_for(&self.cfg)
    }

    /// The unified generation entry point: validate the request with the
    /// shared checker, then execute the zig-zag block schedule
    /// (Algorithm 1). `num_batches == 1` is the plain single-batch
    /// schedule; `num_batches > 1` splits the prompts into GPU batches
    /// that traverse each layer *together*, so every layer's weights are
    /// fetched once per decode step for the whole block — the bandwidth
    /// amortisation at the heart of the paper's Eq. 2.
    ///
    /// Outputs are identical to running each batch independently (the
    /// batches share no state); only the weight traffic changes, which
    /// [`Generation::weight_bytes_streamed`] exposes. Malformed requests
    /// return [`EngineError::InvalidRequest`] instead of panicking.
    pub fn run(&self, request: &GenerateRequest) -> Result<Generation, EngineError> {
        let result = self
            .validate(request)
            .and_then(|()| self.run_block(&request.prompts, request.gen_len, request.num_batches));
        if let Err(e) = &result {
            // Freeze the flight recorder on the first surfaced engine
            // error: the ring holds the faults and decisions leading up
            // to it, the snapshot the metrics at the moment of failure.
            if self.options.flight.is_enabled() {
                let t_us = self
                    .options
                    .tracer
                    .clock()
                    .map(|c| c.now_us())
                    .unwrap_or(0);
                self.options.flight.trigger(
                    &format!("engine_error: {e}"),
                    t_us,
                    self.options.tracer.snapshot().metrics,
                );
            }
        }
        result
    }

    /// The validated block schedule: prompts are well-formed and divide
    /// into `num_batches` equal batches (enforced by [`Self::run`]).
    fn run_block(
        &self,
        prompts: &[Vec<u32>],
        gen_len: usize,
        num_batches: usize,
    ) -> Result<Generation, EngineError> {
        let per = prompts.len() / num_batches;
        let s = prompts[0].len();
        // Single-batch runs keep the historical span shape of `generate`
        // (no batch index); blocks tag each compute span with its batch.
        let span_batch = |k: usize| (num_batches > 1).then_some(k as u32);
        let h = self.cfg.hidden as usize;
        let heads = self.cfg.num_heads as usize;
        let l = self.store.num_layers();
        let capacity = s + gen_len;

        // One KV cache per (layer, batch), all in host memory.
        let full_kv_bytes =
            2 * prompts.len() * capacity * h * std::mem::size_of::<f32>() * l;
        let kv_bytes = match self.options.kv_quantize_at_rest {
            None => full_kv_bytes,
            Some(q) => full_kv_bytes * q.bits as usize / 32 * 5 / 4,
        };
        let _kv_lease = self.host.alloc(kv_bytes)?;
        let mut caches: Vec<Vec<CacheStore>> = (0..l)
            .map(|_| {
                (0..num_batches)
                    .map(|_| match self.options.kv_quantize_at_rest {
                        None => CacheStore::new_full(per, h, capacity),
                        Some(q) => CacheStore::new_quantized(per, h, capacity, q),
                    })
                    .collect()
            })
            .collect();

        let start = Instant::now();
        let fetched_before = self.store.total_fetched_bytes();

        // ---- Prefill: the whole block crosses each layer together ------
        let positions: Vec<usize> = (0..per).flat_map(|_| 0..s).collect();
        let mut xs: Vec<Tensor> = (0..num_batches)
            .map(|k| {
                let flat: Vec<u32> = prompts[k * per..(k + 1) * per]
                    .iter()
                    .flatten()
                    .copied()
                    .collect();
                self.embedding.embed(&flat, &positions).reshape([per, s, h])
            })
            .collect();
        {
            let _prefill = self.options.tracer.scope("prefill");
            let mut j = 0usize;
            let caches = &mut caches;
            let xs = &mut xs;
            self.sweep_layers(None, |fetched| {
                for (k, x) in xs.iter_mut().enumerate() {
                    *x = caches[j][k]
                        .with_full(|c| fetched.weights.forward_prefill(x, c, heads, 0));
                }
                j += 1;
            })?;
        }
        let mut last_hidden: Vec<Tensor> = xs
            .iter()
            .map(|x| {
                let mut data = Vec::with_capacity(per * h);
                for bi in 0..per {
                    data.extend_from_slice(&x.data()[(bi * s + (s - 1)) * h..][..h]);
                }
                Tensor::from_vec([per, h], data)
            })
            .collect();

        // ---- Decode: weights fetched once per (step, layer) ------------
        let _decode = self.options.tracer.scope("decode");
        let mut tokens: Vec<Vec<u32>> = vec![Vec::with_capacity(gen_len); prompts.len()];
        for step in 0..gen_len {
            let pos = s + step;
            let mut xds: Vec<Tensor> = Vec::with_capacity(num_batches);
            for (k, hidden_k) in last_hidden.iter().enumerate() {
                let logits = self.embedding.unembed(hidden_k);
                let next = self.options.sampler.sample(&logits);
                for (row, &t) in tokens[k * per..(k + 1) * per].iter_mut().zip(&next) {
                    row.push(t);
                }
                xds.push(self.embedding.embed(&next, &vec![pos; per]));
            }
            {
                let tracer = &self.options.tracer;
                let mut j = 0usize;
                let caches = &mut caches;
                let xds = &mut xds;
                self.sweep_layers(Some(step as u64), |fetched| {
                    for (k, xd) in xds.iter_mut().enumerate() {
                        let _span = tracer.task_span(
                            TaskKind::ComputeGpu,
                            step as u64,
                            j as u32,
                            span_batch(k),
                        );
                        *xd = caches[j][k]
                            .with_full(|c| fetched.weights.forward_decode(xd, c, heads, pos));
                    }
                    j += 1;
                })?;
            }
            last_hidden = xds;
        }
        drop(_decode);

        let elapsed = start.elapsed().as_secs_f64();
        let generation = Generation {
            tokens,
            throughput: (prompts.len() * gen_len) as f64 / elapsed.max(f64::MIN_POSITIVE),
            device_peak: self.device.peak(),
            host_peak: self.host.peak(),
            weight_bytes_streamed: self.store.total_fetched_bytes() - fetched_before,
            kv_bytes_at_rest: caches
                .iter()
                .flatten()
                .map(CacheStore::bytes)
                .sum(),
        };
        self.record_run_metrics(&generation);
        Ok(generation)
    }

    /// Fold one run's headline numbers into the tracer's metrics
    /// registry: pool occupancy, streamed fetch bytes, at-rest KV size
    /// (the quantization saving when compression is on) and throughput.
    fn record_run_metrics(&self, g: &Generation) {
        let t = &self.options.tracer;
        if !t.is_enabled() {
            return;
        }
        t.counter_add(
            "engine.tokens_generated",
            g.tokens.iter().map(|r| r.len() as u64).sum(),
        );
        t.counter_add("engine.weight_bytes_streamed", g.weight_bytes_streamed);
        t.gauge_set(
            "engine.pool.device.peak_fraction",
            g.device_peak as f64 / self.options.device_capacity.max(1) as f64,
        );
        t.gauge_set(
            "engine.pool.host.peak_fraction",
            g.host_peak as f64 / self.options.host_capacity.max(1) as f64,
        );
        t.gauge_set("engine.kv_bytes_at_rest", g.kv_bytes_at_rest as f64);
        t.histogram_record("engine.run.throughput_tps", g.throughput);
        if self.options.fault.is_enabled() {
            let fs = self.options.fault.stats();
            t.gauge_set("fault.injected_total", fs.total_faults() as f64);
            t.gauge_set("fault.retries_total", fs.retries as f64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_models::presets;

    fn prompts() -> Vec<Vec<u32>> {
        vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6]]
    }

    fn engine_with(device_capacity: usize, prefetch: bool) -> Engine {
        let cfg = presets::tiny_test();
        Engine::new(
            &cfg,
            42,
            EngineOptions {
                device_capacity,
                prefetch,
                ..EngineOptions::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn generation_is_deterministic() {
        let e = engine_with(256 << 20, true);
        let a = e.run(&GenerateRequest::new(prompts(), 6)).unwrap();
        let b = e.run(&GenerateRequest::new(prompts(), 6)).unwrap();
        assert_eq!(a.tokens, b.tokens);
        assert_eq!(a.tokens.len(), 2);
        assert_eq!(a.tokens[0].len(), 6);
    }

    #[test]
    fn offloaded_equals_unconstrained_token_for_token() {
        // The core correctness claim of an offloading runtime: a tight
        // two-layer device budget must not change the output.
        let e_big = engine_with(256 << 20, false);
        let layer_bytes = e_big.store.fetched_bytes(0);
        let e_tight = engine_with(2 * layer_bytes + 1024, true);
        let a = e_big.run(&GenerateRequest::new(prompts(), 8)).unwrap();
        let b = e_tight.run(&GenerateRequest::new(prompts(), 8)).unwrap();
        assert_eq!(a.tokens, b.tokens);
        assert!(b.device_peak <= 2 * layer_bytes + 1024);
    }

    #[test]
    fn one_layer_budget_fails_with_prefetch_but_works_without() {
        let probe = engine_with(256 << 20, false);
        let layer_bytes = probe.store.fetched_bytes(0);
        // Prefetching needs two in flight.
        let tight = engine_with(layer_bytes + 512, true);
        assert!(tight.run(&GenerateRequest::new(prompts(), 2)).is_err());
        let serial = engine_with(layer_bytes + 512, false);
        let out = serial.run(&GenerateRequest::new(prompts(), 2)).unwrap();
        assert!(out.device_peak <= layer_bytes + 512);
    }

    #[test]
    fn engine_error_freezes_the_flight_recorder() {
        let cfg = presets::tiny_test();
        let probe = engine_with(256 << 20, false);
        let layer_bytes = probe.store.fetched_bytes(0);
        let flight = lm_trace::FlightRecorder::new(32);
        // One-layer budget with prefetch armed: generation must fail,
        // and the failure must freeze a post-mortem dump.
        let e = Engine::new(
            &cfg,
            42,
            EngineOptions {
                device_capacity: layer_bytes + 512,
                prefetch: true,
                flight: flight.clone(),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        assert!(e.run(&GenerateRequest::new(prompts(), 2)).is_err());
        let dump = flight.dump().expect("error must trigger a dump");
        assert!(dump.reason.starts_with("engine_error:"), "{}", dump.reason);
        // A successful engine leaves its recorder unfrozen.
        let calm_flight = lm_trace::FlightRecorder::new(32);
        let calm = Engine::new(
            &cfg,
            42,
            EngineOptions {
                flight: calm_flight.clone(),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        calm.run(&GenerateRequest::new(prompts(), 2)).unwrap();
        assert!(calm_flight.dump().is_none());
    }

    #[test]
    fn strict_mode_rejects_undersized_pools_at_construction() {
        let cfg = presets::tiny_test();
        let tiny = EngineOptions {
            device_capacity: 1024, // far below one f32 layer
            ..EngineOptions::default()
        };
        // Non-strict: construction succeeds; the failure would surface
        // later as pool exhaustion mid-generation.
        assert!(Engine::new(&cfg, 7, tiny.clone()).is_ok());
        // Strict: rejected up front with an LMA109 diagnostic.
        let strict = EngineOptions { strict: true, ..tiny };
        match Engine::new(&cfg, 7, strict) {
            Err(EngineError::Rejected(report)) => {
                assert!(report.has(lm_analyze::LintCode::Lma109CapacityExceeded), "{report}");
                assert!(report.error_count() >= 1);
            }
            other => panic!("expected Rejected, got {:?}", other.is_ok()),
        }
    }

    #[test]
    fn strict_mode_accepts_the_default_budget() {
        let cfg = presets::tiny_test();
        let e = Engine::new(
            &cfg,
            7,
            EngineOptions { strict: true, ..EngineOptions::default() },
        )
        .unwrap();
        let out = e.run(&GenerateRequest::new(prompts(), 3)).unwrap();
        assert_eq!(out.tokens[0].len(), 3);
    }

    #[test]
    fn quantized_at_rest_generates_and_shrinks_host() {
        let cfg = presets::tiny_test();
        let full = Engine::new(&cfg, 1, EngineOptions::default()).unwrap();
        let quant = Engine::new(
            &cfg,
            1,
            EngineOptions {
                quantize_at_rest: Some(QuantConfig::int8()),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gf = full.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        let gq = quant.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        assert!(quant.store.host_bytes() < full.store.host_bytes() / 2);
        // int8 weights keep the argmax trajectory for a few tokens on a
        // tiny model... not guaranteed in general, so only check shape.
        assert_eq!(gq.tokens[0].len(), gf.tokens[0].len());
    }

    fn invalid_reason(r: Result<Generation, EngineError>) -> String {
        match r {
            Err(EngineError::InvalidRequest { reason }) => reason,
            other => panic!("expected InvalidRequest, got ok={}", other.is_ok()),
        }
    }

    #[test]
    fn context_overflow_rejected_as_typed_error() {
        let e = engine_with(256 << 20, true);
        let long = vec![vec![1u32; 500]];
        // 600 > tiny-test max_seq 512 — an error, not a panic.
        let reason = invalid_reason(e.run(&GenerateRequest::new(long, 100)));
        assert!(reason.contains("exceeds max_seq_len"), "{reason}");
    }

    #[test]
    fn ragged_prompts_rejected_as_typed_error() {
        let e = engine_with(256 << 20, true);
        let reason = invalid_reason(e.run(&GenerateRequest::new(vec![vec![1, 2], vec![3]], 2)));
        assert!(reason.contains("share a length"), "{reason}");
    }

    #[test]
    fn weight_traffic_matches_sweep_count() {
        // One prefill sweep plus one sweep per generated token, each
        // streaming every at-rest layer byte exactly once.
        let e = engine_with(256 << 20, true);
        let gen_len = 3;
        let g = e.run(&GenerateRequest::new(prompts(), gen_len)).unwrap();
        let expected = (1 + gen_len as u64) * e.store.host_bytes() as u64;
        assert_eq!(g.weight_bytes_streamed, expected);
        // Quantized at rest: 4x fewer bytes cross the "link".
        let cfg = presets::tiny_test();
        let q = Engine::new(
            &cfg,
            42,
            EngineOptions {
                quantize_at_rest: Some(lm_tensor::QuantConfig::int4()),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gq = q.run(&GenerateRequest::new(prompts(), gen_len)).unwrap();
        assert!(
            gq.weight_bytes_streamed * 3 < g.weight_bytes_streamed,
            "int4 {} vs f32 {}",
            gq.weight_bytes_streamed,
            g.weight_bytes_streamed
        );
    }

    #[test]
    fn f16_at_rest_halves_host_and_stream() {
        let cfg = presets::tiny_test();
        let full = engine_with(256 << 20, true);
        let half = Engine::new(
            &cfg,
            42,
            EngineOptions {
                f16_at_rest: true,
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gf = full.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        let gh = half.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        // fp16 at rest: ~half the stream; greedy first token survives.
        let ratio = gf.weight_bytes_streamed as f64 / gh.weight_bytes_streamed as f64;
        assert!((1.8..=2.1).contains(&ratio), "ratio {ratio}");
        assert_eq!(gf.tokens[0][0], gh.tokens[0][0]);
    }

    #[test]
    fn quantized_kv_cache_shrinks_at_rest_and_generates() {
        let cfg = presets::tiny_test();
        let full = Engine::new(&cfg, 31, EngineOptions::default()).unwrap();
        let quant = Engine::new(
            &cfg,
            31,
            EngineOptions {
                kv_quantize_at_rest: Some(lm_tensor::QuantConfig::int8()),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gf = full.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        let gq = quant.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        assert_eq!(gq.tokens[0].len(), 4);
        // int8 at rest: ~4x smaller cache.
        assert!(
            gq.kv_bytes_at_rest * 3 < gf.kv_bytes_at_rest,
            "quant {} vs full {}",
            gq.kv_bytes_at_rest,
            gf.kv_bytes_at_rest
        );
        // The greedy trajectory survives int8 KV for the first token.
        assert_eq!(gf.tokens[0][0], gq.tokens[0][0]);
        // And the host lease was smaller too.
        assert!(gq.host_peak < gf.host_peak);
    }

    #[test]
    fn traced_generation_emits_spans_and_metrics() {
        let cfg = presets::tiny_test();
        let tracer = Tracer::new();
        let e = Engine::new(
            &cfg,
            42,
            EngineOptions {
                tracer: tracer.clone(),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let gen_len = 3;
        let g = e.run(&GenerateRequest::new(prompts(), gen_len).with_batches(2)).unwrap();
        let report = tracer.snapshot();
        let l = cfg.num_layers as usize;
        // One load_weight span per (token, layer); one compute span per
        // (token, layer, batch). Prefill contributes scopes, not spans.
        let lw = report
            .spans
            .iter()
            .filter(|s| s.kind == TaskKind::LoadWeight)
            .count();
        let cg = report
            .spans
            .iter()
            .filter(|s| s.kind == TaskKind::ComputeGpu)
            .count();
        assert_eq!(lw, gen_len * l);
        assert_eq!(cg, gen_len * l * 2);
        assert!(report
            .spans
            .iter()
            .filter(|s| s.kind == TaskKind::ComputeGpu)
            .all(|s| s.batch.is_some()));
        // Scopes: one prefill + one decode.
        assert_eq!(report.scopes.iter().filter(|s| s.name == "prefill").count(), 1);
        assert_eq!(report.scopes.iter().filter(|s| s.name == "decode").count(), 1);
        // Metrics folded in.
        assert_eq!(
            report.metrics.counters["engine.weight_bytes_streamed"],
            g.weight_bytes_streamed
        );
        assert_eq!(
            report.metrics.counters["engine.tokens_generated"],
            (gen_len * prompts().len()) as u64
        );
        assert!(report.metrics.gauges["engine.pool.device.peak_fraction"] > 0.0);
        assert_eq!(
            report.metrics.histograms["task.load_weight.seconds"].count as usize,
            lw
        );
        // Tracing must not perturb the tokens.
        let clean = engine_with(256 << 20, true);
        let untraced = clean.run(&GenerateRequest::new(prompts(), gen_len).with_batches(2)).unwrap();
        assert_eq!(g.tokens, untraced.tokens);
    }

    #[test]
    fn kv_cache_charged_to_host() {
        let e = engine_with(256 << 20, true);
        let g = e.run(&GenerateRequest::new(prompts(), 4)).unwrap();
        // Host peak covers weights + KV lease.
        assert!(g.host_peak > e.store.host_bytes());
    }
}
