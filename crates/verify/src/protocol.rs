//! Protocol model checking under bounded interleavings.
//!
//! Two state machines are explored with the vendored loom checker
//! ([`loom::explore`]): the **paged-KV pool** grant/append/COW-fork/drop
//! protocol (the *real* [`PagedKvPool`], not a model — its internal
//! `parking_lot` lock is not loom-instrumented, so explicit
//! [`loom::thread::yield_now`] calls between protocol operations are the
//! interleaving points), and the **scheduler lifecycle**
//! admit/preempt/shed/cancel (re-stated over an instrumented
//! [`loom::sync::Mutex`], the same way `loom_pools.rs` re-states the
//! `MemPool` protocol).
//!
//! Checked on every interleaving:
//!
//! - **refcount conservation** — the pool's per-page refcount sum and
//!   page/byte accounting balance after every operation;
//! - **no double grant** — each sequence reads back exactly the token
//!   stream it wrote (a page granted to two writers would corrupt one);
//! - **zero leaks at quiescence** — when all sequences drop, pages in
//!   use, backing bytes, and the refcount sum all reach zero;
//! - **terminal-state totality** — every request ends `Completed`,
//!   `Shed`, or `Cancelled`; none is lost in a queue or slot.
//!
//! Beyond pass/fail, each harness records which *declared* protocol
//! transitions the bounded exploration actually drove; `LMA292` rejects
//! a run whose interleavings never reached a declared transition (an
//! unexercised transition carries unverified invariants).

use lm_engine::MemPool;
use lm_kvpool::{PageConfig, PagedKvPool};
use loom::{explore, Options};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex as StdMutex};

/// Outcome of one protocol exploration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProtocolReport {
    /// State machine identity (`"kvpool"`, `"scheduler"`).
    pub name: String,
    /// Interleavings (executions) the bounded DFS ran.
    pub interleavings: u64,
    /// `true` if the search hit its iteration cap before exhausting the
    /// bounded tree.
    pub truncated: bool,
    /// First invariant violation observed, if any.
    pub failure: Option<String>,
    /// Transitions the machine declares (the spec).
    pub declared: Vec<String>,
    /// Transitions at least one interleaving exercised.
    pub exercised: Vec<String>,
}

impl ProtocolReport {
    /// Full bounded tree explored, no failure.
    pub fn passed(&self) -> bool {
        self.failure.is_none() && !self.truncated
    }
}

/// Transition log shared across executions (union). Executions are
/// serialized by the checker, so a plain std mutex is only guarding
/// cross-execution accumulation, never modelled concurrency.
type Trace = Arc<StdMutex<BTreeSet<String>>>;

fn record(trace: &Trace, transition: &str) {
    trace
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(transition.to_string());
}

const PAGE_TOKENS: usize = 4;
const BYTES_PER_TOKEN: usize = 8;

/// Transitions of the paged-KV grant/append/fork/drop protocol.
pub fn kvpool_declared() -> Vec<String> {
    [
        "kvpool:admit/fresh",
        "kvpool:admit/shared-full",
        "kvpool:admit/shared-tail",
        "kvpool:append/in-place",
        "kvpool:append/new-page",
        "kvpool:append/cow-fork",
        "kvpool:append/fork-collapsed",
        "kvpool:drop/release",
    ]
    .map(String::from)
    .to_vec()
}

/// Transitions of the scheduler request-lifecycle protocol.
pub fn scheduler_declared() -> Vec<String> {
    [
        "sched:enqueue",
        "sched:admit",
        "sched:preempt",
        "sched:requeue",
        "sched:shed",
        "sched:cancel",
        "sched:complete",
    ]
    .map(String::from)
    .to_vec()
}

/// One sequence's worth of protocol operations: admit (classifying the
/// grant path), generate `gen` tokens (classifying each append from the
/// pool's counter deltas), verify readback, drop.
fn run_seq(pool: &Arc<PagedKvPool>, prompt: &[u32], gen: &[u32], trace: &Trace) {
    let Ok(mut seq) = pool.admit(prompt, gen.len()) else {
        panic!("admission must succeed: the pool is sized for all sequences");
    };
    let shared = seq.shared_tokens();
    if shared == 0 {
        record(trace, "kvpool:admit/fresh");
    }
    if shared >= PAGE_TOKENS {
        record(trace, "kvpool:admit/shared-full");
    }
    if shared % PAGE_TOKENS != 0 {
        record(trace, "kvpool:admit/shared-tail");
    }
    assert!(pool.accounting_balanced(), "byte/page accounting drifted at admit");
    loom::thread::yield_now();

    for &token in gen {
        let off = seq.len() % PAGE_TOKENS;
        let before = pool.stats();
        if let Err(e) = seq.append(token) {
            panic!("reserved append failed: {e}");
        }
        let after = pool.stats();
        if off == 0 {
            record(trace, "kvpool:append/new-page");
        } else if after.cow_forks > before.cow_forks {
            record(trace, "kvpool:append/cow-fork");
        } else if after.pages_freed > before.pages_freed {
            // `pending_tail_fork` resolved with the sharer already gone:
            // the provisioned fork page went straight back to the pool.
            record(trace, "kvpool:append/fork-collapsed");
        } else {
            record(trace, "kvpool:append/in-place");
        }
        assert!(
            pool.accounting_balanced(),
            "byte/page accounting drifted at append"
        );
        assert_eq!(
            after.shared_write_violations, 0,
            "in-place write landed on a shared page"
        );
        loom::thread::yield_now();
    }

    // No double grant: the stream read back through the page table must
    // be exactly what this sequence wrote, regardless of interleaving.
    let expected: Vec<u32> = prompt.iter().chain(gen.iter()).copied().collect();
    assert_eq!(seq.tokens(), expected, "page granted to two writers");

    drop(seq);
    record(trace, "kvpool:drop/release");
    loom::thread::yield_now();
}

/// Model-check the paged-KV pool protocol: three sequences sharing one
/// prompt prefix race admit/append/drop on the real allocator.
pub fn check_kvpool_protocol(opts: Options) -> ProtocolReport {
    let trace: Trace = Arc::new(StdMutex::new(BTreeSet::new()));
    let t = Arc::clone(&trace);
    let outcome = explore(opts, move || {
        let mem = MemPool::new(
            "verify.kvpool",
            16 * PAGE_TOKENS * BYTES_PER_TOKEN,
        );
        let pool = PagedKvPool::new(
            mem.clone(),
            PageConfig {
                page_tokens: PAGE_TOKENS,
                bytes_per_token: BYTES_PER_TOKEN,
            },
        );
        // 6-token prompt = one full page + a 2-token open tail, so a
        // later admit can share the full page (always) and the tail
        // (when it is still open), and the first divergent append either
        // COW-forks the tail or collapses the fork if the peer already
        // dropped.
        let prompt: Vec<u32> = vec![1, 2, 3, 4, 5, 6];
        let handles: Vec<_> = [
            vec![101, 102, 103],
            vec![201, 202],
            vec![301, 302],
        ]
        .into_iter()
        .map(|gen| {
            let pool = Arc::clone(&pool);
            let prompt = prompt.clone();
            let trace = Arc::clone(&t);
            loom::thread::spawn(move || run_seq(&pool, &prompt, &gen, &trace))
        })
        .collect();
        for h in handles {
            let Ok(()) = h.join() else {
                panic!("sequence thread panicked");
            };
        }
        // Quiescence: every grant returned, every byte released, every
        // refcount at zero.
        let c = pool.counters();
        assert_eq!(c.pages_in_use, 0, "pages leaked at quiescence");
        assert_eq!(c.refcount_sum, 0, "refcounts leaked at quiescence");
        assert_eq!(mem.used(), 0, "backing bytes leaked at quiescence");
        assert_eq!(
            pool.stats().shared_write_violations,
            0,
            "COW discipline violated"
        );
    });
    let exercised = trace
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect();
    ProtocolReport {
        name: "kvpool".to_string(),
        interleavings: outcome.executions as u64,
        truncated: outcome.truncated,
        failure: outcome.failure,
        declared: kvpool_declared(),
        exercised,
    }
}

/// Terminal request states — totality demands every request reach one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Term {
    Completed,
    Shed,
    Cancelled,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    id: usize,
    prio: u8,
    remaining: u32,
    sheddable: bool,
}

/// The scheduler lifecycle state, re-stated over loom's mutex so every
/// lock acquisition is an interleaving point (the real scheduler's loop
/// holds no lock — it is single-threaded per virtual step — so the model
/// checks the *protocol*: the transition rules between queued, running,
/// and terminal states under concurrent enqueue/cancel).
struct SchedState {
    queue: Vec<Req>,
    running: Vec<Req>,
    done: Vec<(usize, Term)>,
    cancels: Vec<usize>,
}

const SLOTS: usize = 2;
const SHED_QUEUE_LIMIT: usize = 2;
const TOTAL_REQS: usize = 5;

fn assert_conserved(st: &SchedState) {
    assert!(st.running.len() <= SLOTS, "more running requests than slots");
    let mut seen = BTreeSet::new();
    for id in st
        .queue
        .iter()
        .map(|r| r.id)
        .chain(st.running.iter().map(|r| r.id))
        .chain(st.done.iter().map(|&(id, _)| id))
    {
        assert!(id < TOTAL_REQS, "unknown request id {id}");
        assert!(seen.insert(id), "request {id} present in two states");
    }
}

/// One scheduler pump: process cancellations, shed under queue pressure,
/// preempt for priority, admit into free slots, then advance every
/// running request one decode step.
fn pump(st: &mut SchedState, trace: &Trace) {
    // Cancellation reaches both queued and running requests; a request
    // already terminal is a no-op (the race the model explores).
    let cancels = std::mem::take(&mut st.cancels);
    for id in cancels {
        if let Some(pos) = st.queue.iter().position(|r| r.id == id) {
            st.queue.remove(pos);
            st.done.push((id, Term::Cancelled));
            record(trace, "sched:cancel");
        } else if let Some(pos) = st.running.iter().position(|r| r.id == id) {
            st.running.remove(pos);
            st.done.push((id, Term::Cancelled));
            record(trace, "sched:cancel");
        }
    }
    // Shed sheddable work while the queue exceeds its pressure limit.
    while st.queue.len() > SHED_QUEUE_LIMIT {
        let Some(pos) = st.queue.iter().position(|r| r.sheddable) else {
            break;
        };
        let r = st.queue.remove(pos);
        st.done.push((r.id, Term::Shed));
        record(trace, "sched:shed");
    }
    // Preempt: a strictly higher-priority waiter evicts the lowest-
    // priority running request back into the queue.
    if st.running.len() == SLOTS {
        let best_wait = st.queue.iter().map(|r| r.prio).max();
        let worst_run = st.running.iter().map(|r| r.prio).min();
        if let (Some(bw), Some(wr)) = (best_wait, worst_run) {
            if bw > wr {
                let pos = st
                    .running
                    .iter()
                    .position(|r| r.prio == wr)
                    .unwrap_or_default();
                let r = st.running.remove(pos);
                st.queue.push(r);
                record(trace, "sched:preempt");
                record(trace, "sched:requeue");
            }
        }
    }
    // Admit highest-priority waiters into free slots (stable on ties).
    while st.running.len() < SLOTS && !st.queue.is_empty() {
        let best = st.queue.iter().map(|r| r.prio).max().unwrap_or_default();
        let pos = st
            .queue
            .iter()
            .position(|r| r.prio == best)
            .unwrap_or_default();
        let r = st.queue.remove(pos);
        st.running.push(r);
        record(trace, "sched:admit");
    }
    // Step: every running request advances; finished ones complete.
    let mut i = 0;
    while i < st.running.len() {
        st.running[i].remaining -= 1;
        if st.running[i].remaining == 0 {
            let r = st.running.remove(i);
            st.done.push((r.id, Term::Completed));
            record(trace, "sched:complete");
        } else {
            i += 1;
        }
    }
    assert_conserved(st);
}

/// Model-check the scheduler admit/preempt/shed/cancel lifecycle: a
/// pump loop races a client enqueueing a high-priority request and a
/// sheddable request, and a canceller racing a request that may be
/// queued, running, or already complete.
pub fn check_scheduler_protocol(opts: Options) -> ProtocolReport {
    let trace: Trace = Arc::new(StdMutex::new(BTreeSet::new()));
    let t = Arc::clone(&trace);
    let outcome = explore(opts, move || {
        let req = |id, prio, remaining, sheddable| Req {
            id,
            prio,
            remaining,
            sheddable,
        };
        let state = loom::sync::Arc::new(loom::sync::Mutex::new(SchedState {
            queue: vec![req(0, 1, 2, false), req(1, 1, 2, false), req(2, 1, 1, false)],
            running: Vec::new(),
            done: Vec::new(),
            cancels: Vec::new(),
        }));

        let client = {
            let state = loom::sync::Arc::clone(&state);
            let trace = Arc::clone(&t);
            loom::thread::spawn(move || {
                // A high-priority arrival (preemption trigger) ...
                {
                    let mut st = state.lock();
                    st.queue.push(req(3, 2, 1, false));
                    record(&trace, "sched:enqueue");
                    assert_conserved(&st);
                }
                // ... a sheddable arrival (queue-pressure trigger) ...
                {
                    let mut st = state.lock();
                    st.queue.push(req(4, 0, 3, true));
                    record(&trace, "sched:enqueue");
                    assert_conserved(&st);
                }
                // ... and a cancellation racing request 1's lifecycle.
                state.lock().cancels.push(1);
            })
        };

        let pumper = {
            let state = loom::sync::Arc::clone(&state);
            let trace = Arc::clone(&t);
            loom::thread::spawn(move || {
                // Enough pumps to drain every request in any interleaving:
                // 5 requests, max 3 steps each, 2 slots — 9 pumps covers
                // the worst serialization with slack.
                for _ in 0..9 {
                    pump(&mut state.lock(), &trace);
                }
            })
        };

        let Ok(()) = client.join() else {
            panic!("client thread panicked");
        };
        let Ok(()) = pumper.join() else {
            panic!("pump thread panicked");
        };

        // The pump loop may have drained before the client's last
        // arrival; with both threads joined the backlog is final, so a
        // bounded quiescent drain models the scheduler outliving its
        // clients (and adds no interleaving branches — one thread).
        for _ in 0..9 {
            pump(&mut state.lock(), &t);
        }

        // Terminal-state totality: nothing is left queued or running,
        // and every request reached exactly one terminal state.
        let st = state.lock();
        assert!(st.queue.is_empty(), "requests stranded in queue: {:?}", st.queue);
        assert!(st.running.is_empty(), "requests stranded running");
        assert_eq!(st.done.len(), TOTAL_REQS, "lost request: {:?}", st.done);
        assert_conserved(&st);
    });
    let exercised = trace
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter()
        .cloned()
        .collect();
    ProtocolReport {
        name: "scheduler".to_string(),
        interleavings: outcome.executions as u64,
        truncated: outcome.truncated,
        failure: outcome.failure,
        declared: scheduler_declared(),
        exercised,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kvpool_protocol_holds_and_exercises_every_declared_transition() {
        let report = check_kvpool_protocol(Options::default());
        assert!(report.passed(), "{:?}", report.failure);
        assert!(report.interleavings > 1, "exploration degenerate");
        for t in &report.declared {
            assert!(
                report.exercised.contains(t),
                "declared transition never exercised: {t} (got {:?})",
                report.exercised
            );
        }
        for t in &report.exercised {
            assert!(
                report.declared.contains(t),
                "undeclared transition exercised: {t}"
            );
        }
    }

    #[test]
    fn scheduler_protocol_holds_and_exercises_every_declared_transition() {
        let report = check_scheduler_protocol(Options::default());
        assert!(report.passed(), "{:?}", report.failure);
        assert!(report.interleavings > 1, "exploration degenerate");
        for t in &report.declared {
            assert!(
                report.exercised.contains(t),
                "declared transition never exercised: {t} (got {:?})",
                report.exercised
            );
        }
    }

    #[test]
    fn exploration_counts_are_deterministic() {
        let a = check_scheduler_protocol(Options::default());
        let b = check_scheduler_protocol(Options::default());
        assert_eq!(a.interleavings, b.interleavings);
        assert_eq!(a.exercised, b.exercised);
    }
}
