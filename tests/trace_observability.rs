//! Acceptance tests for the unified observability layer (`lm-trace`):
//!
//! - A traced `Engine::generate` emits exactly one task span per
//!   (token, layer, task) and the Perfetto export round-trips through the
//!   JSON parser with the right event shapes.
//! - Drift golden: replaying the analytic model against the simulator's
//!   own traced timeline yields observed/predicted ratios of 1.0 for all
//!   six paper decode tasks.
//! - Tracing disabled is the default and must stay (near) zero-cost: the
//!   disabled handle changes neither tokens nor wall-clock beyond noise.
//! - Fault events are stamped on the tracer's clock, so instants and
//!   spans land on one timeline.

#![allow(clippy::unwrap_used)]
use lm_engine::{Engine, EngineOptions, GenerateRequest};
use lm_fault::{FaultConfig, FaultInjector};
use lm_models::{presets, Workload};
use lm_sim::policy::AttentionPlacement;
use lm_sim::{predicted_task_totals, simulate_traced, BaseCostModel, Policy};
use lm_trace::{drift_report, PerfettoTrace, TaskKind, Tracer};
use std::time::Instant;

fn prompts() -> Vec<Vec<u32>> {
    vec![vec![1, 2, 3, 4], vec![9, 8, 7, 6]]
}

/// One load_weight span and one compute span per (token, layer), and the
/// Perfetto document round-trips serde_json with complete events carrying
/// step/layer args.
#[test]
fn traced_generate_spans_cover_every_token_layer_and_roundtrip_perfetto() {
    let cfg = presets::tiny_test();
    let tracer = Tracer::new();
    let engine = Engine::new(
        &cfg,
        42,
        EngineOptions {
            tracer: tracer.clone(),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    let gen_len = 3usize;
    let g = engine.run(&GenerateRequest::new(prompts().to_vec(), gen_len)).unwrap();
    let report = tracer.snapshot();

    let l = cfg.num_layers as usize;
    let lw: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.kind == TaskKind::LoadWeight)
        .collect();
    let cg: Vec<_> = report
        .spans
        .iter()
        .filter(|s| s.kind == TaskKind::ComputeGpu)
        .collect();
    assert_eq!(lw.len(), gen_len * l, "one load_weight per (token, layer)");
    assert_eq!(cg.len(), gen_len * l, "one compute per (token, layer)");
    // Every (step, layer) pair appears exactly once per task.
    for step in 0..gen_len as u64 {
        for layer in 0..cfg.num_layers {
            for (name, spans) in [("load_weight", &lw), ("compute_gpu", &cg)] {
                let n = spans
                    .iter()
                    .filter(|s| s.step == step && s.layer == layer)
                    .count();
                assert_eq!(n, 1, "{name} span for step {step} layer {layer}");
            }
        }
    }
    // Spans are well-formed intervals on one monotonic clock.
    assert!(report.spans.iter().all(|s| s.end >= s.start && s.start >= 0.0));

    // Perfetto round-trip: parse the exported JSON back and check shape.
    let mut doc = PerfettoTrace::new("test-engine");
    doc.add_report(&report);
    let text = doc.to_json_string();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    let events = back["traceEvents"].as_array().unwrap();
    assert_eq!(events.len(), doc.event_count());
    let complete: Vec<_> = events
        .iter()
        .filter(|e| e["ph"].as_str() == Some("X"))
        .collect();
    // Task spans + prefill/decode scopes all become complete events.
    assert_eq!(complete.len(), report.spans.len() + report.scopes.len());
    assert!(complete.iter().any(|e| {
        e["name"].as_str() == Some("load_weight") && e["args"]["layer"].as_u64().is_some()
    }));
    // Tracing must not perturb generation.
    let clean = Engine::new(&cfg, 42, EngineOptions::default()).unwrap();
    assert_eq!(g.tokens, clean.run(&GenerateRequest::new(prompts().to_vec(), gen_len)).unwrap().tokens);
}

/// Drift golden: the simulator *is* the analytic model executed against
/// FIFO resources, so replaying the model over its own timeline must give
/// ratio 1.0 for every paper task — all six present under GPU attention.
#[test]
fn drift_golden_sim_ratios_are_unity_for_all_six_tasks() {
    let w = Workload::new(64, 4, 16, 2);
    let mut policy = Policy::flexgen_default();
    policy.attention = AttentionPlacement::Gpu;
    let m = BaseCostModel::new(
        &lm_hardware::presets::single_gpu_a100(),
        &presets::opt_30b(),
        &w,
        policy,
    );
    let model = presets::opt_30b();
    let steps = w.gen_len - 1;
    let (_, spans) = simulate_traced(&m, &w, model.num_layers, steps);
    let predicted = predicted_task_totals(&m, &w, model.num_layers, steps);
    let report = drift_report(&predicted, &spans);

    assert_eq!(report.tasks.len(), 6, "one row per paper decode task");
    for name in TaskKind::PAPER_TASKS {
        let row = report.task(name).unwrap_or_else(|| panic!("missing {name}"));
        assert!(row.predicted_s > 0.0, "{name} predicted nothing");
        let ratio = row.ratio.expect("observed and predicted both nonzero");
        assert!(
            (ratio - 1.0).abs() < 1e-6,
            "{name}: ratio {ratio} (predicted {} observed {})",
            row.predicted_s,
            row.observed_s
        );
    }
    assert!(report.ok_within(1e-6));
    assert!(report.max_ratio_error < 1e-6);
}

/// The default (disabled) tracer is a `None` handle: token output is
/// identical and wall-clock is not slower than a fully traced run beyond
/// generous noise. min-of-N defeats scheduler jitter.
#[test]
fn disabled_tracer_is_zero_cost_on_the_generate_path() {
    let cfg = presets::tiny_test();
    let gen_len = 4usize;
    let time_min = |options_for: &dyn Fn() -> EngineOptions| {
        (0..5)
            .map(|_| {
                let e = Engine::new(&cfg, 42, options_for()).unwrap();
                let t0 = Instant::now();
                let g = e.run(&GenerateRequest::new(prompts().to_vec(), gen_len)).unwrap();
                assert_eq!(g.tokens.len(), 2);
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let disabled = time_min(&EngineOptions::default);
    let traced = time_min(&|| EngineOptions {
        tracer: Tracer::new(),
        ..EngineOptions::default()
    });
    // Disabled must never be meaningfully slower than enabled tracing;
    // 1.5x headroom keeps the test robust on noisy CI hosts.
    assert!(
        disabled <= traced * 1.5 + 1e-3,
        "disabled tracer ({disabled:.6}s) slower than traced run ({traced:.6}s)"
    );
    // And the handle really is off: no spans accumulate anywhere.
    let off = Tracer::disabled();
    assert!(!off.is_enabled());
    {
        let _s = off.task_span(TaskKind::LoadWeight, 0, 0, None);
        let _c = off.scope("noop");
    }
    assert!(off.snapshot().spans.is_empty());
}

/// Fault events recorded by an engine-owned injector carry timestamps on
/// the tracer's clock, so they align with the span timeline.
#[test]
fn fault_events_are_stamped_on_the_tracer_clock() {
    let cfg = presets::tiny_test();
    let tracer = Tracer::new();
    let fault = FaultInjector::new(FaultConfig {
        stall_rate: 0.5,
        stall_ms: 1,
        ..FaultConfig::quiescent(11)
    });
    let engine = Engine::new(
        &cfg,
        42,
        EngineOptions {
            tracer: tracer.clone(),
            fault: fault.clone(),
            ..EngineOptions::default()
        },
    )
    .unwrap();
    engine.run(&GenerateRequest::new(prompts().to_vec(), 3)).unwrap();
    let events = fault.events();
    assert!(!events.is_empty(), "stall profile fired no faults");
    let report = tracer.snapshot();
    let span_end_us = report
        .spans
        .iter()
        .map(|s| (s.end * 1e6) as u64)
        .max()
        .unwrap_or(0);
    let mut last = 0u64;
    for e in &events {
        let t = e.t_us.expect("engine wires the tracer clock into faults");
        assert!(t >= last, "fault timestamps are monotonic");
        last = t;
        // Faults happen while work happens: on the same clock as spans
        // (small slack for the post-decode bookkeeping window).
        assert!(
            t <= span_end_us + 1_000_000,
            "fault at {t}us far beyond last span end {span_end_us}us"
        );
    }
}
