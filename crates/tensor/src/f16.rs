//! IEEE 754 binary16 (half precision) — the paper's uncompressed baseline
//! precision — implemented as bit-level conversion plus a compact storage
//! type, with no external dependencies.
//!
//! Round-to-nearest-even conversion, correct handling of subnormals,
//! infinities and NaN; `F16Tensor` stores tensors at 2 bytes/element for
//! at-rest use (weights, KV cache) and materialises back to f32 for
//! compute — exactly how the offloading runtimes treat fp16 tensors on a
//! CPU without native half arithmetic.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// Convert one f32 to its binary16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN: preserve NaN-ness with a set mantissa bit.
        return sign | 0x7C00 | if mant != 0 { 0x0200 } else { 0 };
    }
    // Re-bias from 127 to 15.
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7C00; // overflow -> infinity
    }
    if unbiased >= -14 {
        // Normal half. Round mantissa from 23 to 10 bits, ties-to-even.
        let mant16 = mant >> 13;
        let rem = mant & 0x1FFF;
        let mut out = sign | (((unbiased + 15) as u16) << 10) | mant16 as u16;
        if rem > 0x1000 || (rem == 0x1000 && (mant16 & 1) == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct
        }
        return out;
    }
    if unbiased >= -24 {
        // Subnormal half: implicit leading 1 becomes explicit.
        let full = mant | 0x0080_0000;
        let shift = (-unbiased - 14 + 13) as u32;
        let mant16 = (full >> shift) as u16;
        let rem_mask = (1u32 << shift) - 1;
        let rem = full & rem_mask;
        let half = 1u32 << (shift - 1);
        let mut out = sign | mant16;
        if rem > half || (rem == half && (mant16 & 1) == 1) {
            out = out.wrapping_add(1);
        }
        return out;
    }
    sign // underflow -> signed zero
}

/// Convert a binary16 bit pattern to f32 (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x03FF) as u32;
    let bits = match (exp, mant) {
        (0, 0) => sign,
        (0, m) => {
            // Subnormal: value = m · 2^-24, exactly representable in f32.
            let mag = m as f32 * 2f32.powi(-24);
            return if sign != 0 { -mag } else { mag };
        }
        (0x1F, 0) => sign | 0x7F80_0000,
        (0x1F, m) => sign | 0x7F80_0000 | (m << 13),
        (e, m) => sign | ((e + 127 - 15) << 23) | (m << 13),
    };
    f32::from_bits(bits)
}

/// A tensor stored at half precision (2 bytes/element).
#[derive(Debug, Clone, PartialEq)]
pub struct F16Tensor {
    shape: Shape,
    data: Vec<u16>,
}

impl F16Tensor {
    /// Convert from f32 storage (rounding each element).
    pub fn from_f32(t: &Tensor) -> Self {
        F16Tensor {
            shape: t.shape().clone(),
            data: t.data().iter().map(|&x| f32_to_f16_bits(x)).collect(),
        }
    }

    /// Materialise back to f32 for compute.
    pub fn to_f32(&self) -> Tensor {
        Tensor::from_vec(
            self.shape.clone(),
            self.data.iter().map(|&h| f16_bits_to_f32(h)).collect(),
        )
    }

    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// At-rest bytes: exactly 2 per element.
    pub fn bytes(&self) -> usize {
        self.data.len() * 2
    }

    /// Worst-case relative rounding error of the format for normal values
    /// (half a ulp at 10 mantissa bits).
    pub const MAX_RELATIVE_ERROR: f32 = 1.0 / 2048.0;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_values_round_trip() {
        for x in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 1024.0] {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            assert_eq!(back, x, "{x}");
            // Sign of zero preserved.
            assert_eq!(back.is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // max finite half
        assert_eq!(f16_bits_to_f32(0x3C00), 1.0);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
    }

    #[test]
    fn specials() {
        assert!(f16_bits_to_f32(f32_to_f16_bits(f32::NAN)).is_nan());
        assert_eq!(f32_to_f16_bits(f32::INFINITY), 0x7C00);
        assert_eq!(f32_to_f16_bits(1e10), 0x7C00, "overflow saturates to inf");
        assert_eq!(f32_to_f16_bits(1e-10), 0, "deep underflow flushes to zero");
    }

    #[test]
    fn subnormal_halves() {
        // Smallest positive subnormal half = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        // Largest subnormal: (1023/1024)·2^-14.
        let big_sub = f16_bits_to_f32(0x03FF);
        assert!(big_sub < 2.0f32.powi(-14));
        assert_eq!(f32_to_f16_bits(big_sub), 0x03FF);
    }

    #[test]
    fn ties_round_to_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10:
        // rounds down to even mantissa (0x3C00).
        let halfway = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(halfway), 0x3C00);
        // 1 + 3·2^-11 is halfway between odd and even: rounds up to even.
        let halfway_up = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(halfway_up), 0x3C02);
    }

    #[test]
    fn tensor_storage_halves_bytes() {
        let t = Tensor::randn([32, 16], 1.0, 3);
        let h = F16Tensor::from_f32(&t);
        assert_eq!(h.bytes(), t.numel() * 2);
        let back = h.to_f32();
        let max = t.data().iter().fold(0.0f32, |m, x| m.max(x.abs()));
        assert!(t.max_abs_diff(&back) <= max * F16Tensor::MAX_RELATIVE_ERROR * 2.0);
    }

    proptest! {
        #[test]
        fn prop_round_trip_error_bounded(x in -60000.0f32..60000.0) {
            let back = f16_bits_to_f32(f32_to_f16_bits(x));
            let tol = x.abs().max(2.0f32.powi(-14)) * F16Tensor::MAX_RELATIVE_ERROR;
            prop_assert!((back - x).abs() <= tol, "{} -> {}", x, back);
        }

        #[test]
        fn prop_half_values_are_fixed_points(bits in 0u16..0x7C00) {
            // Every finite half value converts to f32 and back unchanged.
            let x = f16_bits_to_f32(bits);
            prop_assert_eq!(f32_to_f16_bits(x), bits);
        }

        #[test]
        fn prop_monotone_on_positives(a in 0.0f32..60000.0, b in 0.0f32..60000.0) {
            // Rounding preserves order (weakly).
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(f32_to_f16_bits(lo) <= f32_to_f16_bits(hi));
        }
    }
}
