//! `repro serve` — the continuous-batching serving experiment: the same
//! seeded OPT-30B traffic trace is served four ways (continuous batching
//! over the paged KV pool, continuous batching over the legacy
//! contiguous slab, one-call-per-request, naive static batching) on the
//! analytic backend's virtual clock, and continuous batching must
//! dominate both baselines. TTFT and end-to-end latency percentiles come
//! from each run's own `lm-trace` histogram snapshot.
//!
//! `--shared-prefix` adds the cross-request prefix-sharing study: the
//! same arrival process and generation lengths are served once with a
//! common system-prompt prefix and once with unique control prefixes;
//! the paged pool maps the shared pages copy-on-write, skips their
//! prefill, and must deliver super-linear effective throughput relative
//! to the unshared control (with zero admission rejections).

use lm_serve::{
    synth_shared_prefix_traffic, synth_traffic, AnalyticBackend, KvMode, ServeConfig, ServeMode,
    ServeOutcome, ServePlan, ServeSession,
};
use lm_trace::Tracer;
use serde::{Deserialize, Serialize};

pub const DEFAULT_RPS: f64 = 4.0;
pub const DEFAULT_REQUESTS: usize = 32;
pub const DEFAULT_SEED: u64 = 7;

/// Shared system-prompt length for the `--shared-prefix` study: twenty
/// whole 16-token pages, so every request past the first maps 320 prompt
/// tokens straight out of the prefix index. The length is chosen to make
/// the study memory-bound: at offload scale prefill is weight-stream
/// dominated (skipping prefix *compute* saves almost no wall time), so
/// the sharing win is page residency — unshared requests need ~22 pages
/// each and the pool caps concurrency below the planned slot count,
/// while sharers keep only ~2-3 private pages and all run at once.
pub const DEFAULT_PREFIX_LEN: usize = 320;

/// The dominance bar the experiment (and the verify gate) enforces:
/// continuous batching must deliver at least this multiple of the
/// sequential baseline's throughput, and strictly beat static batching.
pub const MIN_SPEEDUP_VS_SEQUENTIAL: f64 = 1.3;

/// Latency percentiles of one serving mode, seconds (from the
/// `serve.ttft_s` / `serve.latency_s` trace histograms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyStats {
    pub count: u64,
    pub p50_s: f64,
    pub p95_s: f64,
    pub p99_s: f64,
    pub max_s: f64,
}

impl LatencyStats {
    fn empty() -> Self {
        LatencyStats {
            count: 0,
            p50_s: 0.0,
            p95_s: 0.0,
            p99_s: 0.0,
            max_s: 0.0,
        }
    }
}

/// One serving mode's results over the shared traffic trace.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModeRow {
    pub mode: String,
    /// KV residency strategy this row ran under: `paged`, `slab`, or
    /// `-` for the baselines that serve one batch shape at a time.
    pub kv_mode: String,
    pub completed: usize,
    pub rejected: usize,
    pub sim_seconds: f64,
    pub tokens_per_s: f64,
    pub generated_tokens: u64,
    /// KV tokens charged beyond what the request actually used — the
    /// padded-slab envelope. Structurally zero in paged mode, which is
    /// the point of the paged-vs-slab columns.
    pub padding_tokens: u64,
    pub kv_peak_bytes: u64,
    /// High-water mark of live KV pages (paged mode only).
    pub kv_pages_peak: u64,
    /// Page mappings served from the prefix index instead of fresh
    /// allocation + prefill.
    pub shared_prefix_hits: u64,
    /// Prompt tokens covered by those shared mappings.
    pub shared_tokens: u64,
    /// Copy-on-write forks taken on first divergent write.
    pub cow_forks: u64,
    /// Deadline misses — *reported* by every mode, enforced by none
    /// here: the continuous scheduler counts deadline-reason rejections,
    /// the baselines count requests whose service started past their
    /// deadline, so the modes stay comparable.
    pub deadline_misses: u64,
    pub ttft: LatencyStats,
    pub latency: LatencyStats,
}

/// The `--shared-prefix` study: identical arrival process and decode
/// work, three residency strategies. `shared_paged` must beat
/// `unshared_paged` on effective throughput — the prefill skipped by
/// prefix sharing is the only difference between them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SharedPrefixReport {
    pub seed: u64,
    pub rps: f64,
    pub requests: usize,
    pub prefix_len: usize,
    /// `shared_paged`, `unshared_paged` (control), `shared_slab`.
    pub modes: Vec<ModeRow>,
    /// shared_paged tok/s over unshared_paged tok/s.
    pub effective_speedup: f64,
    /// Admission rejections across the paged runs (gate: zero).
    pub paged_rejections: usize,
    /// The verify.sh gate: sharing actually engaged (hits > 0), beat
    /// the unshared control, and rejected nothing.
    pub superlinear_ok: bool,
}

/// Everything `repro serve` writes to `results/serve.json`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ServeReport {
    pub seed: u64,
    pub rps: f64,
    pub requests: usize,
    /// The `LMA25x`/`LMA28x`-linted admission plan every mode shares.
    pub plan: ServePlan,
    pub modes: Vec<ModeRow>,
    pub speedup_vs_sequential: f64,
    pub speedup_vs_static: f64,
    /// Continuous ≥ 1.3× sequential and > static — the verify.sh gate.
    pub dominance_ok: bool,
    /// Page-aware admission gate: the paged scheduler rejects nothing
    /// at the default seed.
    pub paged_zero_rejections: bool,
    /// Filled by `repro serve --shared-prefix`, `null` otherwise.
    pub shared_prefix: Option<SharedPrefixReport>,
}

fn histogram(tracer: &Tracer, name: &str) -> LatencyStats {
    tracer
        .snapshot()
        .metrics
        .histograms
        .get(name)
        .map(|h| LatencyStats {
            count: h.count,
            p50_s: h.p50,
            p95_s: h.p95,
            p99_s: h.p99,
            max_s: h.max,
        })
        .unwrap_or_else(LatencyStats::empty)
}

fn mode_row(mode: &str, kv_mode: &str, tracer: &Tracer, out: &ServeOutcome) -> ModeRow {
    ModeRow {
        mode: mode.to_string(),
        kv_mode: kv_mode.to_string(),
        completed: out.responses.len(),
        rejected: out.rejections.len(),
        sim_seconds: out.sim_seconds,
        tokens_per_s: out.tokens_per_s(),
        generated_tokens: out.generated_tokens,
        padding_tokens: out.padding_tokens,
        kv_peak_bytes: out.kv_peak_bytes as u64,
        kv_pages_peak: out.kv_pages_peak,
        shared_prefix_hits: out.shared_prefix_hits,
        shared_tokens: out.shared_tokens,
        cow_forks: out.cow_forks,
        deadline_misses: out.deadline_misses,
        ttft: histogram(tracer, "serve.ttft_s"),
        latency: histogram(tracer, "serve.latency_s"),
    }
}

fn continuous_row(
    backend: &AnalyticBackend,
    kv_mode: KvMode,
    label: &str,
    traffic: Vec<lm_serve::Request>,
) -> (ServePlan, ModeRow) {
    let tracer = Tracer::new();
    let cfg = ServeConfig {
        tracer: tracer.clone(),
        kv_mode,
        ..ServeConfig::default()
    };
    let (plan, out) = ServeSession::new(backend)
        .config(cfg)
        .run(traffic)
        .unwrap_or_else(|e| panic!("continuous serving ({label}) failed: {e}"))
        .into_continuous();
    let kv = match kv_mode {
        KvMode::Paged => "paged",
        KvMode::Slab => "slab",
    };
    (plan, mode_row(label, kv, &tracer, &out))
}

/// Serve `n` seeded requests at `rps` through all four schedulers.
pub fn run(seed: u64, rps: f64, n: usize) -> ServeReport {
    let backend = AnalyticBackend::opt_30b();
    let traffic = synth_traffic(seed, rps, n, lm_serve::ServeBackend::model(&backend));

    let (plan, paged) =
        continuous_row(&backend, KvMode::Paged, "continuous_paged", traffic.clone());
    let (_, slab) = continuous_row(&backend, KvMode::Slab, "continuous_slab", traffic.clone());

    let seq_tracer = Tracer::new();
    let seq_cfg = ServeConfig {
        tracer: seq_tracer.clone(),
        ..ServeConfig::default()
    };
    let seq = ServeSession::new(&backend)
        .config(seq_cfg)
        .mode(ServeMode::Sequential)
        .run(traffic.clone())
        .unwrap_or_else(|e| panic!("sequential baseline failed: {e}"))
        .outcome;

    let stat_tracer = Tracer::new();
    let stat_cfg = ServeConfig {
        tracer: stat_tracer.clone(),
        ..ServeConfig::default()
    };
    let stat = ServeSession::new(&backend)
        .config(stat_cfg)
        .mode(ServeMode::Static { batch: plan.slots })
        .run(traffic)
        .unwrap_or_else(|e| panic!("static baseline failed: {e}"))
        .outcome;

    let speedup_vs_sequential = if seq.tokens_per_s() > 0.0 {
        paged.tokens_per_s / seq.tokens_per_s()
    } else {
        0.0
    };
    let speedup_vs_static = if stat.tokens_per_s() > 0.0 {
        paged.tokens_per_s / stat.tokens_per_s()
    } else {
        0.0
    };
    let dominance_ok = speedup_vs_sequential >= MIN_SPEEDUP_VS_SEQUENTIAL
        && paged.tokens_per_s > stat.tokens_per_s();
    let paged_zero_rejections = paged.rejected == 0;

    ServeReport {
        seed,
        rps,
        requests: n,
        plan,
        modes: vec![
            paged,
            slab,
            mode_row("sequential", "-", &seq_tracer, &seq),
            mode_row("static", "-", &stat_tracer, &stat),
        ],
        speedup_vs_sequential,
        speedup_vs_static,
        dominance_ok,
        paged_zero_rejections,
        shared_prefix: None,
    }
}

/// The `--shared-prefix` study: `n` requests sharing one `prefix_len`-
/// token system prompt vs the same trace with unique control prefixes,
/// plus the slab strategy on the shared trace to show what the padded
/// envelope pays for the identical workload.
pub fn run_shared_prefix(seed: u64, rps: f64, n: usize, prefix_len: usize) -> SharedPrefixReport {
    let backend = AnalyticBackend::opt_30b();
    let (shared, control) = synth_shared_prefix_traffic(
        seed,
        rps,
        n,
        lm_serve::ServeBackend::model(&backend),
        prefix_len,
    );

    let (_, shared_paged) =
        continuous_row(&backend, KvMode::Paged, "shared_paged", shared.clone());
    let (_, unshared_paged) =
        continuous_row(&backend, KvMode::Paged, "unshared_paged", control);
    let (_, shared_slab) = continuous_row(&backend, KvMode::Slab, "shared_slab", shared);

    let effective_speedup = if unshared_paged.tokens_per_s > 0.0 {
        shared_paged.tokens_per_s / unshared_paged.tokens_per_s
    } else {
        0.0
    };
    let paged_rejections = shared_paged.rejected + unshared_paged.rejected;
    let superlinear_ok = effective_speedup > 1.0
        && shared_paged.shared_prefix_hits > 0
        && paged_rejections == 0;

    SharedPrefixReport {
        seed,
        rps,
        requests: n,
        prefix_len,
        modes: vec![shared_paged, unshared_paged, shared_slab],
        effective_speedup,
        paged_rejections,
        superlinear_ok,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_experiment_shows_dominance() {
        let r = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(
            r.dominance_ok,
            "continuous must dominate: vs seq {:.2}x, vs static {:.2}x",
            r.speedup_vs_sequential, r.speedup_vs_static
        );
        assert_eq!(r.modes.len(), 4);
        let cont = &r.modes[0];
        assert_eq!(cont.kv_mode, "paged");
        assert!(cont.completed > 0);
        assert_eq!(
            cont.ttft.count as usize, cont.completed,
            "every completed request records a TTFT sample"
        );
        assert!(cont.ttft.p50_s <= cont.ttft.p99_s);
        assert!(cont.latency.p50_s >= cont.ttft.p50_s);
    }

    #[test]
    fn paged_admission_rejects_nothing_at_default_seed() {
        let r = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        assert!(
            r.paged_zero_rejections,
            "paged mode rejected {} requests",
            r.modes[0].rejected
        );
        assert!(r.modes[0].kv_pages_peak > 0, "paged run tracks page peak");
    }

    #[test]
    fn paged_mode_charges_no_padding_and_slab_does() {
        let r = run(DEFAULT_SEED, DEFAULT_RPS, DEFAULT_REQUESTS);
        let paged = &r.modes[0];
        let slab = &r.modes[1];
        assert_eq!(slab.kv_mode, "slab");
        assert_eq!(paged.padding_tokens, 0, "pages track the exact context");
        assert!(
            slab.padding_tokens > 0,
            "the padded slab envelope must be visible in the report"
        );
        assert!(
            paged.tokens_per_s >= slab.tokens_per_s,
            "exact-context prefill can't be slower than the padded envelope: \
             paged {:.1} vs slab {:.1}",
            paged.tokens_per_s,
            slab.tokens_per_s
        );
    }

    #[test]
    fn shared_prefix_study_is_superlinear_at_default_seed() {
        let r = run_shared_prefix(DEFAULT_SEED, DEFAULT_RPS, 16, DEFAULT_PREFIX_LEN);
        assert!(
            r.superlinear_ok,
            "sharing must beat the unshared control: {:.3}x, {} hits, {} rejections",
            r.effective_speedup,
            r.modes[0].shared_prefix_hits,
            r.paged_rejections
        );
        assert_eq!(r.modes.len(), 3);
        assert!(r.modes[0].shared_tokens > 0);
        assert_eq!(
            r.modes[1].shared_prefix_hits, 0,
            "unique control prefixes must not share"
        );
        assert_eq!(
            r.modes[0].generated_tokens, r.modes[1].generated_tokens,
            "shared and control traces carry identical decode work"
        );
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run(DEFAULT_SEED, DEFAULT_RPS, 16);
        let b = run(DEFAULT_SEED, DEFAULT_RPS, 16);
        assert_eq!(
            a.modes[0].tokens_per_s.to_bits(),
            b.modes[0].tokens_per_s.to_bits()
        );
        assert_eq!(a.modes[0].sim_seconds.to_bits(), b.modes[0].sim_seconds.to_bits());
        assert_eq!(a.modes[0].generated_tokens, b.modes[0].generated_tokens);
        let sa = run_shared_prefix(DEFAULT_SEED, DEFAULT_RPS, 12, DEFAULT_PREFIX_LEN);
        let sb = run_shared_prefix(DEFAULT_SEED, DEFAULT_RPS, 12, DEFAULT_PREFIX_LEN);
        assert_eq!(
            sa.effective_speedup.to_bits(),
            sb.effective_speedup.to_bits()
        );
    }
}
