//! What-if sensitivity analysis: the payoff of having *analytical*
//! performance models (§3.2 "How to use the models") is that deployment
//! questions — "what if the link were faster?", "what if the GPU had more
//! memory?", "when does attention offloading start winning?" — are
//! answered by evaluation, not experiment.
//!
//! Each sweep re-runs the full pipeline (policy search under the modified
//! platform, then ground-truth scoring) so the curves include the policy
//! *changes* a hardware change induces, not just the cost change of a
//! frozen policy.
//!
//! A caveat the sweeps make visible: the search optimises the *analytic*
//! Eq. 1/2 model, while points are scored by the event-driven simulator.
//! Where the two diverge — chiefly CPU-attention-heavy policies, whose
//! per-batch CPU→GPU dependency chains the analytic max() model cannot
//! see — a hardware improvement can flip the search onto a policy that
//! simulates *worse* (e.g. the `cpu_flops` axis dipping at 2×). This is
//! the same analytic-vs-asynchronous-execution gap the paper criticises
//! in FlexGen's LP (§2.2), observable here in our own models.

use crate::policy_search::lm_offload_search;
use crate::provider::{quant_aware_provider, ThreadFactors};
use crate::quant_model::QuantCostParams;
use lm_hardware::Platform;
use lm_models::ModelConfig;
use lm_sim::simulate;
use serde::{Deserialize, Serialize};

/// The hardware axis a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Axis {
    /// Multiply both link directions' bandwidth.
    LinkBandwidth,
    /// Multiply GPU memory capacity.
    GpuMemory,
    /// Multiply sustained CPU FLOP/s.
    CpuFlops,
    /// Multiply GPU matmul FLOP/s.
    GpuFlops,
}

impl Axis {
    pub const ALL: [Axis; 4] = [
        Axis::LinkBandwidth,
        Axis::GpuMemory,
        Axis::CpuFlops,
        Axis::GpuFlops,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Axis::LinkBandwidth => "link_bandwidth",
            Axis::GpuMemory => "gpu_memory",
            Axis::CpuFlops => "cpu_flops",
            Axis::GpuFlops => "gpu_flops",
        }
    }

    /// A copy of `platform` with this axis scaled by `factor`.
    pub fn scaled(self, platform: &Platform, factor: f64) -> Platform {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut p = platform.clone();
        match self {
            Axis::LinkBandwidth => {
                p.link.h2d_bw *= factor;
                p.link.d2h_bw *= factor;
            }
            Axis::GpuMemory => {
                p.gpu.mem_capacity = (p.gpu.mem_capacity as f64 * factor) as u64;
            }
            Axis::CpuFlops => p.cpu.flops *= factor,
            Axis::GpuFlops => {
                p.gpu.flops *= factor;
                p.gpu.elementwise_flops *= factor;
            }
        }
        p
    }
}

/// One sweep point: the scale factor, the simulated throughput of the
/// re-searched deployment, and what the policy became.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfPoint {
    pub factor: f64,
    pub throughput: f64,
    pub wg_pct: u32,
    pub weight_bits: u32,
    pub kv_bits: u32,
    pub attention_on_cpu: bool,
    pub block_size: u64,
}

/// A full sensitivity curve along one axis.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WhatIfCurve {
    pub axis: String,
    pub model: String,
    pub points: Vec<WhatIfPoint>,
}

impl WhatIfCurve {
    /// Relative throughput gain from the first to the last point.
    pub fn end_to_end_gain(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) if a.throughput > 0.0 => b.throughput / a.throughput,
            _ => 1.0,
        }
    }

    /// Whether the policy changed anywhere along the sweep — the signal
    /// that the models are steering decisions, not just rescaling costs.
    pub fn policy_changes(&self) -> bool {
        self.points.windows(2).any(|w| {
            w[0].wg_pct != w[1].wg_pct
                || w[0].weight_bits != w[1].weight_bits
                || w[0].kv_bits != w[1].kv_bits
                || w[0].attention_on_cpu != w[1].attention_on_cpu
        })
    }
}

/// Sweep one axis over the given multiplicative factors, re-searching and
/// re-simulating the LM-Offload deployment at every point.
pub fn sweep(
    axis: Axis,
    platform: &Platform,
    model: &ModelConfig,
    prompt_len: u64,
    gen_len: u64,
    factors: &[f64],
) -> WhatIfCurve {
    assert!(!factors.is_empty(), "need at least one factor");
    let params = QuantCostParams::lm_offload_kernels();
    let points = factors
        .iter()
        .filter_map(|&factor| {
            let p = axis.scaled(platform, factor);
            let d = lm_offload_search(
                &p,
                model,
                prompt_len,
                gen_len,
                params,
                ThreadFactors::Controlled,
            )?;
            let provider = quant_aware_provider(
                &p,
                model,
                &d.workload,
                d.policy,
                params,
                ThreadFactors::Controlled,
            );
            let sim = simulate(&provider, &d.workload, model.num_layers);
            Some(WhatIfPoint {
                factor,
                throughput: sim.throughput,
                wg_pct: (d.policy.wg * 100.0).round() as u32,
                weight_bits: d.policy.weights_dtype.bits(),
                kv_bits: d.policy.kv_dtype.bits(),
                attention_on_cpu: d.policy.attention == lm_sim::AttentionPlacement::Cpu,
                block_size: d.workload.block_size(),
            })
        })
        .collect();
    WhatIfCurve {
        axis: axis.name().to_string(),
        model: model.name.clone(),
        points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lm_hardware::presets;
    use lm_models::presets as models;

    const FACTORS: [f64; 3] = [0.5, 1.0, 2.0];

    #[test]
    fn axes_scale_the_right_fields() {
        let p = presets::single_gpu_a100();
        let faster = Axis::LinkBandwidth.scaled(&p, 2.0);
        assert_eq!(faster.link.h2d_bw, p.link.h2d_bw * 2.0);
        assert_eq!(faster.gpu.mem_capacity, p.gpu.mem_capacity);
        let bigger = Axis::GpuMemory.scaled(&p, 2.0);
        assert_eq!(bigger.gpu.mem_capacity, p.gpu.mem_capacity * 2);
        assert_eq!(bigger.link.h2d_bw, p.link.h2d_bw);
        let brainier = Axis::GpuFlops.scaled(&p, 3.0);
        assert_eq!(brainier.gpu.flops, p.gpu.flops * 3.0);
    }

    #[test]
    fn link_bandwidth_sweep_is_monotone_for_streaming_models() {
        // OPT-66B streams its KV cache: more link bandwidth can never
        // reduce the best achievable throughput.
        let p = presets::single_gpu_a100();
        let c = sweep(Axis::LinkBandwidth, &p, &models::opt_66b(), 64, 16, &FACTORS);
        assert_eq!(c.points.len(), 3);
        for w in c.points.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput * 0.999,
                "throughput fell: {} -> {}",
                w[0].throughput,
                w[1].throughput
            );
        }
        assert!(c.end_to_end_gain() > 1.2, "gain {}", c.end_to_end_gain());
    }

    #[test]
    fn gpu_memory_sweep_changes_policy_when_it_binds() {
        // Shrinking GPU memory to half forces weights off the GPU for the
        // 66B model (int4 66B ≈ 30 GiB > half of 40 GiB): the sweep must
        // show a policy change, not just a cost change.
        let p = presets::single_gpu_a100();
        let c = sweep(Axis::GpuMemory, &p, &models::opt_66b(), 64, 16, &FACTORS);
        assert!(c.policy_changes(), "{c:?}");
        // And more memory can only help.
        let first = c.points.first().unwrap().throughput;
        let last = c.points.last().unwrap().throughput;
        assert!(last >= first * 0.999);
    }

    #[test]
    #[should_panic(expected = "scale factor must be positive")]
    fn zero_factor_rejected() {
        let p = presets::single_gpu_a100();
        Axis::CpuFlops.scaled(&p, 0.0);
    }

    #[test]
    fn curves_serialise() {
        let p = presets::single_gpu_a100();
        let c = sweep(Axis::GpuFlops, &p, &models::opt_30b(), 64, 8, &[1.0]);
        let json = serde_json::to_string(&c).unwrap();
        assert!(json.contains("gpu_flops"));
    }
}
